//! The catalog: all named objects of one database — tables, sequences,
//! stored procedures — plus the index-name → table mapping.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::ast::{CreateProcedureStmt, SelectStmt};
use crate::error::{SqlError, SqlResult};
use crate::fault::FaultInjector;
use crate::storage::{MvccShared, Table};
use crate::sync::{Mutex, MutexGuard, TableLock, TableReadGuard, TableWriteGuard};

/// A table's concurrency envelope: the row-data lock plus a *statement*
/// mutex that serializes write statements on the table. Under MVCC a
/// write statement holds the statement mutex for its whole duration
/// (collect → apply → WAL) but the row-data write lock only for the
/// brief apply phase, so snapshot readers are never blocked for longer
/// than an in-memory apply.
#[derive(Debug)]
struct TableSlot {
    stmt: Mutex<()>,
    lock: TableLock<Table>,
}

impl TableSlot {
    fn new(table: Table) -> TableSlot {
        TableSlot {
            stmt: Mutex::new(()),
            lock: TableLock::new(table),
        }
    }
}

/// A monotonically advancing sequence generator.
///
/// The counter is atomic so that `NEXTVAL` can advance from the
/// read-locked (shared) query path: many concurrent readers still draw
/// unique values. Unlike the sequence objects of commercial engines,
/// a *failed statement's* (or rolled-back transaction's) draws are given
/// back when no later draw intervened — see [`draw_mark`]: the engine's
/// deterministic-retry story requires a retried statement to redraw the
/// same value. Draws consumed by committed statements are never
/// re-issued (they ride the WAL commit record).
#[derive(Debug)]
pub struct Sequence {
    pub name: String,
    next: AtomicI64,
    pub increment: i64,
}

thread_local! {
    /// Journal of `NEXTVAL` draws made by the statement currently
    /// executing on this thread: `(sequence name, drawn value)` in draw
    /// order. Statements run start-to-finish on one thread, so the
    /// journal needs no cross-thread view; the statement entry points
    /// take a mark on entry and settle the suffix on exit.
    static DRAW_JOURNAL: std::cell::RefCell<Vec<(String, i64)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Position of this thread's draw journal — take before running a
/// statement, pass to [`drain_draws`] after.
pub fn draw_mark() -> usize {
    DRAW_JOURNAL.with(|j| j.borrow().len())
}

/// Remove and return every draw journaled since `mark`, in draw order.
pub fn drain_draws(mark: usize) -> Vec<(String, i64)> {
    DRAW_JOURNAL.with(|j| {
        let mut j = j.borrow_mut();
        if mark >= j.len() {
            return Vec::new();
        }
        j.split_off(mark)
    })
}

impl Sequence {
    /// Create a sequence starting at `start`.
    pub fn new(name: impl Into<String>, start: i64, increment: i64) -> Sequence {
        Sequence {
            name: name.into(),
            next: AtomicI64::new(start),
            increment,
        }
    }

    /// Return the next value and advance, journaling the draw for
    /// statement-failure restoration.
    pub fn next_value(&self) -> i64 {
        // fetch_add wraps on overflow, matching the previous wrapping_add.
        let drawn = self.next.fetch_add(self.increment, Ordering::Relaxed);
        DRAW_JOURNAL.with(|j| j.borrow_mut().push((self.name.clone(), drawn)));
        drawn
    }

    /// Give back a draw: rewind the cursor to `drawn` if — and only if —
    /// no later draw intervened (compare-and-swap against
    /// `drawn + increment`). Under concurrent draws from a shared
    /// sequence the CAS loses and the value stays consumed, which is the
    /// only safe answer there.
    pub fn undo_draw(&self, drawn: i64) -> bool {
        self.next
            .compare_exchange(
                drawn.wrapping_add(self.increment),
                drawn,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Peek at the value the next call will return.
    pub fn peek(&self) -> i64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Force the counter to a specific value (recovery only): committed
    /// `NEXTVAL` draws are replayed from commit records so a recovered
    /// sequence never re-issues a value a committed transaction consumed.
    pub fn set_current(&self, value: i64) {
        self.next.store(value, Ordering::Relaxed);
    }
}

/// A named stored query (`CREATE VIEW`).
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    pub name: String,
    pub query: SelectStmt,
}

/// A stored procedure: named formal parameters and a statement body.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<crate::ast::Statement>,
}

impl From<CreateProcedureStmt> for Procedure {
    fn from(s: CreateProcedureStmt) -> Procedure {
        Procedure {
            name: s.name,
            params: s.params,
            body: s.body,
        }
    }
}

/// All named objects of one database. Object names are case-insensitive;
/// the original spelling is preserved inside the object.
///
/// Concurrency shape (see DESIGN.md §10): the database facade wraps the
/// whole catalog in a *catalog-shape* reader-writer lock that guards the
/// object maps themselves; each table's row data additionally sits
/// behind its own [`TableLock`], so statements holding the shape lock in
/// *shared* mode can still write disjoint tables in parallel. Lock order
/// is always shape → table; [`Catalog::table_mut`] therefore takes
/// `&self` and hands out a per-table write guard.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableSlot>,
    /// MVCC bookkeeping shared with every table (GC watermark + version
    /// counters). The owning database installs its own instance via
    /// [`Catalog::attach_mvcc`]; a standalone catalog gets a private one.
    mvcc: Arc<MvccShared>,
    sequences: HashMap<String, Sequence>,
    procedures: HashMap<String, Procedure>,
    /// index name (lowered) → table name (lowered)
    index_owner: HashMap<String, String>,
    views: HashMap<String, View>,
    /// How many scans were answered through an index fast path (telemetry
    /// for tests and benchmarks; atomic so the shared-lock read path can
    /// bump it).
    index_scans: AtomicU64,
    /// How many scans fell back to a full table walk.
    full_scans: AtomicU64,
    /// How many scans were answered through an index *range* walk.
    range_scans: AtomicU64,
    /// How many statements compiled (bound) a plan.
    plan_binds: AtomicU64,
    /// How many rows were evaluated through bound (ordinal) expressions.
    bound_evals: AtomicU64,
    /// How many ORDER BY + LIMIT statements used the bounded top-K heap
    /// instead of a full materialize-then-sort.
    topk_sorts: AtomicU64,
    /// How many expression-over-batch passes the vectorized executor ran
    /// (one per expression per batch of rows, not one per row).
    batch_evals: AtomicU64,
    /// How many input rows flowed through the batch executor.
    batched_rows: AtomicU64,
    /// How many statements ran grouped aggregation through the one-pass
    /// hash aggregator instead of the interpreter's grouping loop.
    hash_aggs: AtomicU64,
    /// How many rows full table scans have walked (for rows/sec
    /// reporting; `full_scans` counts scans, this counts their rows).
    full_scan_rows: AtomicU64,
    /// How many compiled join steps executed as a vectorized hash join.
    hash_joins: AtomicU64,
    /// How many compiled join steps executed as an index nested-loop
    /// probe through the visibility-aware index entry API.
    index_nl_joins: AtomicU64,
    /// How many rows were inserted into hash-join build tables.
    join_build_rows: AtomicU64,
    /// How many rows probed hash-join tables or index nested loops.
    join_probe_rows: AtomicU64,
    /// How many WHERE/ON conjuncts were pushed into join-side scans.
    pushed_predicates: AtomicU64,
    /// Schema epoch: bumped on every change that can invalidate a compiled
    /// plan (table/index/view/sequence/procedure creation or removal,
    /// including undo-log rollback, which funnels through the same
    /// methods). Plain `u64`: every bump site already holds `&mut self`.
    epoch: u64,
    /// Fault injector installed by [`crate::Database::set_fault_plan`].
    /// Held here (in addition to the database facade) so the executor's
    /// row-apply loops — which only see the catalog — can reach it.
    fault: Option<Arc<FaultInjector>>,
}

thread_local! {
    /// View-expansion nesting depth (guards against recursive views).
    /// Thread-local rather than a catalog field: expansion is a per-query
    /// (hence per-thread) property, and concurrent readers must not see
    /// each other's nesting.
    static VIEW_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Current schema epoch. Compiled plans are keyed by this value: a
    /// plan bound at epoch `e` is valid exactly while `epoch() == e`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the schema epoch, invalidating every compiled plan.
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Force the schema epoch (recovery only): a recovered catalog takes
    /// an epoch strictly above everything the log ever saw, so any plan
    /// bound before the crash re-binds on its next use.
    pub(crate) fn force_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    // ------------------------------------------------------------- tables

    /// Register a table. Fails if the name is taken.
    pub fn add_table(&mut self, mut table: Table) -> SqlResult<()> {
        let k = key(&table.schema.name);
        if self.tables.contains_key(&k) {
            return Err(SqlError::AlreadyExists(format!(
                "table '{}'",
                table.schema.name
            )));
        }
        table.attach_mvcc(Arc::clone(&self.mvcc));
        self.tables.insert(k, TableSlot::new(table));
        self.bump_epoch();
        Ok(())
    }

    /// Install the owning database's shared MVCC state (GC watermark +
    /// version counters), re-attaching every existing table. Called at
    /// database construction and again after recovery swaps in a
    /// replayed catalog.
    pub(crate) fn attach_mvcc(&mut self, shared: Arc<MvccShared>) {
        self.mvcc = Arc::clone(&shared);
        for slot in self.tables.values_mut() {
            slot.lock.get_mut().attach_mvcc(Arc::clone(&shared));
        }
    }

    /// The shared MVCC state currently attached to this catalog's tables.
    pub(crate) fn mvcc(&self) -> &Arc<MvccShared> {
        &self.mvcc
    }

    /// Drop row versions superseded before the `floor` watermark in every
    /// table, taking each table's write lock briefly. Returns versions
    /// dropped. Safe under the shared shape lock; the caller must not
    /// hold any table guard.
    pub fn gc_tables(&self, floor: u64) -> u64 {
        let mut dropped = 0;
        for slot in self.tables.values() {
            dropped += slot.lock.write().gc_versions(floor);
        }
        dropped
    }

    /// Look up a table: returns a shared per-table guard. Reader
    /// preference makes re-acquiring a table this thread already reads
    /// safe (self-joins, subqueries over the scanned table).
    pub fn table(&self, name: &str) -> SqlResult<TableReadGuard<'_, Table>> {
        self.tables
            .get(&key(name))
            .map(|s| s.lock.read())
            .ok_or_else(|| SqlError::NotFound(format!("table '{name}'")))
    }

    /// Acquire the table's *statement* mutex: serializes write statements
    /// against each other for their full duration without excluding
    /// readers. Lock order: statement mutex before any row-data guard on
    /// the same table.
    pub fn table_stmt(&self, name: &str) -> SqlResult<MutexGuard<'_, ()>> {
        self.tables
            .get(&key(name))
            .map(|s| s.stmt.lock())
            .ok_or_else(|| SqlError::NotFound(format!("table '{name}'")))
    }

    /// Look up a table for writing: returns the exclusive per-table
    /// guard. Takes `&self` — exclusion is per table, not per catalog —
    /// so DML holding the catalog-shape lock in shared mode can write.
    /// A thread must never request this guard while holding any guard on
    /// the same table (self-deadlock); the executor's two-phase scans
    /// drop their read guards before applying.
    pub fn table_mut(&self, name: &str) -> SqlResult<TableWriteGuard<'_, Table>> {
        self.tables
            .get(&key(name))
            .map(|s| s.lock.write())
            .ok_or_else(|| SqlError::NotFound(format!("table '{name}'")))
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&key(name))
    }

    /// Remove a table, returning it (for undo). Also unregisters its indexes.
    pub fn remove_table(&mut self, name: &str) -> SqlResult<Table> {
        let t = self
            .tables
            .remove(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("table '{name}'")))?
            .lock
            .into_inner();
        self.index_owner.retain(|_, owner| owner != &key(name));
        self.bump_epoch();
        Ok(t)
    }

    /// All table names, sorted (stable output for introspection).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .values()
            .map(|s| s.lock.read().schema.name.clone())
            .collect();
        names.sort();
        names
    }

    // ------------------------------------------------------------- faults

    /// Install (or clear) the fault injector. Called by the database
    /// facade under the exclusive catalog lock.
    pub(crate) fn set_fault_injector(&mut self, fault: Option<Arc<FaultInjector>>) {
        self.fault = fault;
    }

    /// Row hook for DML apply loops: delivers armed torn-statement
    /// faults. No-op (and branch-predictable) when no injector is set.
    #[inline]
    pub fn fault_row_applied(&self) -> SqlResult<()> {
        match &self.fault {
            Some(f) => f.on_row_applied(),
            None => Ok(()),
        }
    }

    /// Bind hook: delivers armed after-bind faults.
    #[inline]
    pub fn fault_bind_complete(&self) -> SqlResult<()> {
        match &self.fault {
            Some(f) => f.on_bind_complete(),
            None => Ok(()),
        }
    }

    /// Record that a statement used an index fast path.
    pub fn note_index_scan(&self) {
        self.index_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of index fast-path scans so far.
    pub fn index_scans(&self) -> u64 {
        self.index_scans.load(Ordering::Relaxed)
    }

    /// Record that a statement walked a whole base table.
    pub fn note_full_scan(&self) {
        self.full_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of full table scans so far.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.load(Ordering::Relaxed)
    }

    /// Record that a statement walked an index key range.
    pub fn note_range_scan(&self) {
        self.range_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of index range scans so far.
    pub fn range_scans(&self) -> u64 {
        self.range_scans.load(Ordering::Relaxed)
    }

    /// Record that a statement compiled (bound) a plan.
    pub fn note_plan_bind(&self) {
        self.plan_binds.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of plan binds so far.
    pub fn plan_binds(&self) -> u64 {
        self.plan_binds.load(Ordering::Relaxed)
    }

    /// Record `n` rows evaluated through bound expressions. Callers batch
    /// one add per statement rather than one per row.
    pub fn note_bound_evals(&self, n: u64) {
        self.bound_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of bound row evaluations so far.
    pub fn bound_evals(&self) -> u64 {
        self.bound_evals.load(Ordering::Relaxed)
    }

    /// Record that a statement used the bounded top-K heap.
    pub fn note_topk_sort(&self) {
        self.topk_sorts.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of top-K sorts so far.
    pub fn topk_sorts(&self) -> u64 {
        self.topk_sorts.load(Ordering::Relaxed)
    }

    /// Record `n` expression-over-batch passes. Callers batch one add per
    /// statement rather than one per pass.
    pub fn note_batch_evals(&self, n: u64) {
        self.batch_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of expression-over-batch passes so far.
    pub fn batch_evals(&self) -> u64 {
        self.batch_evals.load(Ordering::Relaxed)
    }

    /// Record `n` input rows processed by the batch executor.
    pub fn note_batched_rows(&self, n: u64) {
        self.batched_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of rows that flowed through the batch executor so far.
    pub fn batched_rows(&self) -> u64 {
        self.batched_rows.load(Ordering::Relaxed)
    }

    /// Record that a statement ran through the one-pass hash aggregator.
    pub fn note_hash_agg(&self) {
        self.hash_aggs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of hash-aggregated statements so far.
    pub fn hash_aggs(&self) -> u64 {
        self.hash_aggs.load(Ordering::Relaxed)
    }

    /// Record `n` rows walked by a full table scan. A batched scan counts
    /// its rows once here and the scan itself once in `full_scans`.
    pub fn note_full_scan_rows(&self, n: u64) {
        self.full_scan_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of rows walked by full table scans so far.
    pub fn full_scan_rows(&self) -> u64 {
        self.full_scan_rows.load(Ordering::Relaxed)
    }

    /// Record that a compiled join step ran as a vectorized hash join.
    pub fn note_hash_join(&self) {
        self.hash_joins.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of hash-join steps executed so far.
    pub fn hash_joins(&self) -> u64 {
        self.hash_joins.load(Ordering::Relaxed)
    }

    /// Record that a compiled join step ran as an index nested loop.
    pub fn note_index_nl_join(&self) {
        self.index_nl_joins.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of index nested-loop join steps executed so far.
    pub fn index_nl_joins(&self) -> u64 {
        self.index_nl_joins.load(Ordering::Relaxed)
    }

    /// Record `n` rows inserted into a hash-join build table.
    pub fn note_join_build_rows(&self, n: u64) {
        self.join_build_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of hash-join build rows so far.
    pub fn join_build_rows(&self) -> u64 {
        self.join_build_rows.load(Ordering::Relaxed)
    }

    /// Record `n` rows that probed a hash table or index nested loop.
    pub fn note_join_probe_rows(&self, n: u64) {
        self.join_probe_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of join probe rows so far.
    pub fn join_probe_rows(&self) -> u64 {
        self.join_probe_rows.load(Ordering::Relaxed)
    }

    /// Record `n` conjuncts pushed into join-side scans for one execution.
    pub fn note_pushed_predicates(&self, n: u64) {
        self.pushed_predicates.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of pushed-down join-side conjuncts so far.
    pub fn pushed_predicates(&self) -> u64 {
        self.pushed_predicates.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------- indexes

    /// Record that `index` belongs to `table` (both original spellings).
    pub fn register_index(&mut self, index: &str, table: &str) -> SqlResult<()> {
        if self.index_owner.contains_key(&key(index)) {
            return Err(SqlError::AlreadyExists(format!("index '{index}'")));
        }
        self.index_owner.insert(key(index), key(table));
        self.bump_epoch();
        Ok(())
    }

    /// Which table owns `index`?
    pub fn index_table(&self, index: &str) -> Option<&str> {
        self.index_owner.get(&key(index)).map(|s| s.as_str())
    }

    /// Forget an index registration.
    pub fn unregister_index(&mut self, index: &str) {
        self.index_owner.remove(&key(index));
        self.bump_epoch();
    }

    // ------------------------------------------------------------- views

    /// Register a view.
    pub fn add_view(&mut self, view: View) -> SqlResult<()> {
        let k = key(&view.name);
        if self.views.contains_key(&k) {
            return Err(SqlError::AlreadyExists(format!("view '{}'", view.name)));
        }
        self.views.insert(k, view);
        self.bump_epoch();
        Ok(())
    }

    /// Look up a view.
    pub fn view(&self, name: &str) -> SqlResult<&View> {
        self.views
            .get(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("view '{name}'")))
    }

    /// Does a view exist?
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&key(name))
    }

    /// Remove a view (for DROP / undo).
    pub fn remove_view(&mut self, name: &str) -> SqlResult<View> {
        let v = self
            .views
            .remove(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("view '{name}'")))?;
        self.bump_epoch();
        Ok(v)
    }

    /// Sorted view names.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.values().map(|v| v.name.clone()).collect();
        names.sort();
        names
    }

    /// Enter a view expansion; the guard decrements on drop. Errors once
    /// nesting exceeds a sanity bound (recursive view definitions).
    pub fn enter_view(&self) -> SqlResult<ViewDepthGuard> {
        let d = VIEW_DEPTH.get();
        if d >= 16 {
            return Err(SqlError::Runtime(
                "view expansion too deep (recursive view definition?)".into(),
            ));
        }
        VIEW_DEPTH.set(d + 1);
        Ok(ViewDepthGuard { _private: () })
    }

    // ------------------------------------------------------------- sequences

    /// Register a sequence.
    pub fn add_sequence(&mut self, seq: Sequence) -> SqlResult<()> {
        let k = key(&seq.name);
        if self.sequences.contains_key(&k) {
            return Err(SqlError::AlreadyExists(format!("sequence '{}'", seq.name)));
        }
        self.sequences.insert(k, seq);
        self.bump_epoch();
        Ok(())
    }

    /// Look up a sequence.
    pub fn sequence(&self, name: &str) -> SqlResult<&Sequence> {
        self.sequences
            .get(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("sequence '{name}'")))
    }

    /// Remove a sequence (for DROP / undo).
    pub fn remove_sequence(&mut self, name: &str) -> SqlResult<Sequence> {
        let s = self
            .sequences
            .remove(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("sequence '{name}'")))?;
        self.bump_epoch();
        Ok(s)
    }

    /// Does a sequence exist?
    pub fn has_sequence(&self, name: &str) -> bool {
        self.sequences.contains_key(&key(name))
    }

    /// Give back a failed statement's `NEXTVAL` draws, latest first.
    /// Needs only shared access — the cursors are atomic and the
    /// give-back is CAS-guarded per draw.
    pub fn undo_draws(&self, draws: &[(String, i64)]) {
        for (name, drawn) in draws.iter().rev() {
            if let Ok(seq) = self.sequence(name) {
                let _ = seq.undo_draw(*drawn);
            }
        }
    }

    /// Snapshot of every sequence as `(name, current, increment)`,
    /// sorted by name. Commit records and checkpoints carry this so
    /// committed `NEXTVAL` draws survive a crash.
    pub fn sequence_states(&self) -> Vec<(String, i64, i64)> {
        let mut states: Vec<(String, i64, i64)> = self
            .sequences
            .values()
            .map(|s| (s.name.clone(), s.peek(), s.increment))
            .collect();
        states.sort();
        states
    }

    // ------------------------------------------------------------- procedures

    /// Register a stored procedure.
    pub fn add_procedure(&mut self, proc: Procedure) -> SqlResult<()> {
        let k = key(&proc.name);
        if self.procedures.contains_key(&k) {
            return Err(SqlError::AlreadyExists(format!(
                "procedure '{}'",
                proc.name
            )));
        }
        self.procedures.insert(k, proc);
        self.bump_epoch();
        Ok(())
    }

    /// Look up a procedure.
    pub fn procedure(&self, name: &str) -> SqlResult<&Procedure> {
        self.procedures
            .get(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("procedure '{name}'")))
    }

    /// Remove a procedure (for DROP / undo).
    pub fn remove_procedure(&mut self, name: &str) -> SqlResult<Procedure> {
        let p = self
            .procedures
            .remove(&key(name))
            .ok_or_else(|| SqlError::NotFound(format!("procedure '{name}'")))?;
        self.bump_epoch();
        Ok(p)
    }

    /// Does a procedure exist?
    pub fn has_procedure(&self, name: &str) -> bool {
        self.procedures.contains_key(&key(name))
    }
}

/// RAII guard for view-expansion depth.
pub struct ViewDepthGuard {
    _private: (),
}

impl Drop for ViewDepthGuard {
    fn drop(&mut self) {
        let d = VIEW_DEPTH.get();
        VIEW_DEPTH.set(d.saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::types::DataType;

    fn table(name: &str) -> Table {
        Table::new(TableSchema::new(name, vec![Column::new("a", DataType::Int)], false).unwrap())
    }

    #[test]
    fn table_names_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(table("Orders")).unwrap();
        assert!(c.has_table("orders"));
        assert!(c.table("ORDERS").is_ok());
        assert!(c.add_table(table("ORDERS")).is_err());
        assert_eq!(c.table_names(), vec!["Orders"]);
    }

    #[test]
    fn remove_table_unregisters_indexes() {
        let mut c = Catalog::new();
        c.add_table(table("t")).unwrap();
        c.register_index("i1", "t").unwrap();
        assert_eq!(c.index_table("I1"), Some("t"));
        c.remove_table("t").unwrap();
        assert_eq!(c.index_table("i1"), None);
    }

    #[test]
    fn sequence_advances_and_peeks() {
        let s = Sequence::new("s", 10, 5);
        assert_eq!(s.peek(), 10);
        assert_eq!(s.next_value(), 10);
        assert_eq!(s.next_value(), 15);
        assert_eq!(s.peek(), 20);
    }

    #[test]
    fn sequence_negative_increment() {
        let s = Sequence::new("s", 0, -2);
        assert_eq!(s.next_value(), 0);
        assert_eq!(s.next_value(), -2);
    }

    #[test]
    fn catalog_sequences_and_procedures() {
        let mut c = Catalog::new();
        c.add_sequence(Sequence::new("OrderIds", 1, 1)).unwrap();
        assert!(c.has_sequence("orderids"));
        assert!(c.add_sequence(Sequence::new("orderIDS", 1, 1)).is_err());
        c.remove_sequence("ORDERIDS").unwrap();
        assert!(!c.has_sequence("orderids"));

        let p = Procedure {
            name: "P".into(),
            params: vec![],
            body: vec![],
        };
        c.add_procedure(p.clone()).unwrap();
        assert!(c.procedure("p").is_ok());
        assert!(c.add_procedure(p).is_err());
        c.remove_procedure("p").unwrap();
        assert!(!c.has_procedure("p"));
    }

    #[test]
    fn missing_objects_report_not_found() {
        let c = Catalog::new();
        assert_eq!(c.table("x").unwrap_err().class(), "not_found");
        assert_eq!(c.sequence("x").unwrap_err().class(), "not_found");
        assert_eq!(c.procedure("x").unwrap_err().class(), "not_found");
    }
}
