//! Table schemas: column definitions and name resolution.

use crate::error::{SqlError, SqlResult};
use crate::types::{DataType, Value};

/// A column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    /// Default value, already constant-folded at DDL time.
    pub default: Option<Value>,
}

impl Column {
    /// A plain nullable column with no constraints.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
        }
    }
}

/// Schema of a stored table (or of a derived result set).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Temporary tables belong to the creating connection and vanish with it.
    pub temporary: bool,
}

impl TableSchema {
    /// Build a schema; fails on duplicate column names.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        temporary: bool,
    ) -> SqlResult<TableSchema> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(SqlError::Semantic(format!(
                    "duplicate column '{}' in table '{name}'",
                    c.name
                )));
            }
        }
        if columns.is_empty() {
            return Err(SqlError::Semantic(format!(
                "table '{name}' must have at least one column"
            )));
        }
        Ok(TableSchema {
            name,
            columns,
            temporary,
        })
    }

    /// Index of a column by case-insensitive name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Resolve a column or fail with a helpful error.
    pub fn resolve(&self, name: &str) -> SqlResult<usize> {
        self.col_index(name)
            .ok_or_else(|| SqlError::NotFound(format!("column '{name}' in table '{}'", self.name)))
    }

    /// Positions of primary-key columns, in declaration order.
    pub fn primary_key_cols(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Render back to a `CREATE TABLE` statement (used by the WF DataSet
    /// when it snapshots a table shape, and by tests).
    pub fn to_ddl(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| {
                let mut s = format!("{} {}", c.name, c.ty.sql_name());
                if c.primary_key {
                    s.push_str(" PRIMARY KEY");
                }
                if c.not_null && !c.primary_key {
                    s.push_str(" NOT NULL");
                }
                if c.unique && !c.primary_key {
                    s.push_str(" UNIQUE");
                }
                if let Some(d) = &c.default {
                    s.push_str(&format!(" DEFAULT {}", d.to_sql_literal()));
                }
                s
            })
            .collect();
        format!(
            "CREATE {}TABLE {} ({})",
            if self.temporary { "TEMPORARY " } else { "" },
            self.name,
            cols.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                {
                    let mut c = Column::new("OrderId", DataType::Int);
                    c.primary_key = true;
                    c
                },
                Column::new("ItemId", DataType::Text),
                {
                    let mut c = Column::new("Quantity", DataType::Int);
                    c.default = Some(Value::Int(0));
                    c
                },
            ],
            false,
        )
        .unwrap()
    }

    #[test]
    fn col_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.col_index("itemid"), Some(1));
        assert_eq!(s.col_index("ITEMID"), Some(1));
        assert_eq!(s.col_index("nope"), None);
        assert!(s.resolve("nope").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("A", DataType::Int),
            ],
            false,
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_tables_rejected() {
        assert!(TableSchema::new("t", vec![], false).is_err());
    }

    #[test]
    fn pk_cols() {
        assert_eq!(schema().primary_key_cols(), vec![0]);
    }

    #[test]
    fn ddl_round_trip_via_parser() {
        let ddl = schema().to_ddl();
        let stmt = crate::parser::parse_statement(&ddl).unwrap();
        match stmt {
            crate::ast::Statement::CreateTable(c) => {
                assert_eq!(c.columns.len(), 3);
                assert!(c.columns[0].primary_key);
            }
            other => panic!("{other:?}"),
        }
    }
}
