//! Deterministic fault injection for the engine.
//!
//! A [`FaultInjector`] sits between the connection layer and the
//! executor and perturbs statement execution according to a
//! [`FaultPlan`]: transient infrastructure errors ("connection reset",
//! "deadlock victim", "serialization failure"), torn statements that
//! die after N applied rows (exercising statement-atomicity rollback),
//! mid-statement panics (exercising lock-poison recovery), and slow
//! queries. Everything is deterministic: randomness comes from an
//! in-tree SplitMix64 PRNG seeded by the plan, and "time" is a virtual
//! tick counter — no wall-clock anywhere, so a fault schedule replays
//! identically on any host.
//!
//! Faults address statements by a monotone *statement index*: the
//! injector counts every gated statement (transaction control is never
//! gated — injecting into COMMIT/ROLLBACK would corrupt the very
//! atomicity semantics the layer exists to test). A scripted fault is
//! consumed when it fires, so a retry of the same statement draws the
//! next index and succeeds unless the plan scheduled another fault
//! there — which is exactly how "fails k times, then succeeds"
//! schedules are written.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::error::{SqlError, SqlResult};
use crate::sync::Mutex;

/// The error every statement surfaces once the injector is frozen by a
/// crash fault. Deliberately **not** transient: a retry loop must stop —
/// the "process" is dead, and only recovery from the log brings it back.
pub fn crashed_error() -> SqlError {
    SqlError::Crashed("process killed by fault injection".into())
}

/// SplitMix64: tiny, seedable, statistically solid for fault schedules.
/// Kept in-tree (the kernel has no dependencies, and the bench crate's
/// copy sits on the wrong side of the dependency arrow).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// The three transient failure shapes commercial engines report. All are
/// safe to retry: the failed statement rolled back before surfacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// The server closed the connection mid-flight.
    ConnectionReset,
    /// This statement lost a deadlock and was chosen as the victim.
    DeadlockVictim,
    /// Optimistic concurrency check failed at serialization point.
    SerializationFailure,
}

impl TransientKind {
    /// Human-readable message, mirroring real server error text.
    pub fn message(self) -> &'static str {
        match self {
            TransientKind::ConnectionReset => "connection reset",
            TransientKind::DeadlockVictim => "deadlock victim",
            TransientKind::SerializationFailure => "serialization failure",
        }
    }

    /// The corresponding retryable error.
    pub fn error(self) -> SqlError {
        SqlError::Transient(self.message().into())
    }

    /// Pick a kind from an arbitrary draw (round-robin over the three).
    pub fn from_index(i: u64) -> TransientKind {
        match i % 3 {
            0 => TransientKind::ConnectionReset,
            1 => TransientKind::DeadlockVictim,
            _ => TransientKind::SerializationFailure,
        }
    }
}

/// Where, relative to the write-ahead log protocol, a scripted crash
/// kills the process. The point determines what the log contains when
/// recovery later reads it — which is the whole observable difference
/// between the variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die before the statement's records reach the log: recovery sees
    /// nothing of the statement, as if it never ran.
    BeforeLog,
    /// Die after the records are durably appended but "before" the
    /// in-memory apply is acknowledged: recovery replays the statement.
    AfterLog,
    /// Die mid-append, leaving a torn record at the log tail: recovery
    /// must detect the tear and truncate at the first corrupt record.
    MidApply,
    /// Die while a checkpoint is being written (scheduled via
    /// [`FaultPlan::crash_at_checkpoint`], not by statement index): the
    /// partial snapshot lands after the intact old log, and recovery
    /// must fall back to the previous consistent state.
    DuringCheckpoint,
}

/// Where, relative to the two-phase-commit `Prepare` record, a scripted
/// crash kills a participant. Scheduled by prepare index (0-based,
/// counted per prepare attempt on this injector) via
/// [`FaultPlan::crash_at_prepare`], mirroring checkpoint crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepareCrash {
    /// Die before the `Prepare` record reaches the log: recovery sees an
    /// ordinary loser transaction and undoes it; the coordinator's
    /// prepare call fails, so it presumes abort.
    Before,
    /// The `Prepare` record lands durably, then the process dies before
    /// acknowledging the vote. The coordinator sees a dead participant
    /// and presumes abort — recovery finds the in-doubt transaction and
    /// must resolve it to *abort* against the decision log.
    AfterWrite,
    /// Die mid-append, leaving a torn `Prepare` frame at the log tail:
    /// recovery truncates at the tear and treats the transaction as a
    /// loser (a torn vote is no vote).
    Torn,
    /// The `Prepare` lands and the vote is acknowledged (`Ok`), then the
    /// process dies before the coordinator's phase-2 notify arrives.
    /// This is the classic in-doubt window: recovery must consult the
    /// decision log, which may say *commit*.
    AfterAck,
}

/// One injectable *disk* fault, fired at the page-store I/O boundary by
/// the pager. Scheduled by page-read or page-write index (0-based,
/// counted per I/O attempt on this injector) via
/// [`FaultPlan::fault_at_page_read`] / [`FaultPlan::fault_at_page_write`],
/// and consumed when it fires, like statement-scripted faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// The process dies mid-write: only a prefix of the page reaches the
    /// store, then the injector freezes. Recovery must detect the torn
    /// page by checksum and fall back to the previous checkpoint epoch.
    TornWrite,
    /// A *silent* short write: a prefix lands, the call reports success,
    /// and the process lives on. The corruption is latent until a later
    /// read fails the page checksum and triggers repair.
    PartialWrite,
    /// One bit of the transferred page flips (position drawn from the
    /// seeded PRNG). On a read this models media/cable corruption on the
    /// way in; on a write the corrupted bytes land at rest.
    ReadBitFlip,
    /// The I/O fails outright with a retryable error (`EIO`/`ENOSPC`
    /// class). Nothing is transferred; the caller surfaces a transient
    /// [`SqlError`] its retry layer can absorb.
    IoError,
    /// The I/O succeeds but advances the virtual clock by `ticks` first.
    SlowIo { ticks: u64 },
}

/// A page fault taken from the schedule, plus one PRNG draw for faults
/// that need a deterministic parameter (the bit position of
/// [`PageFault::ReadBitFlip`]).
#[derive(Debug, Clone, Copy)]
pub struct FiredPageFault {
    pub fault: PageFault,
    /// Seeded draw; interpretation is up to the fault kind.
    pub draw: u64,
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the statement up front, before it touches any row.
    Transient(TransientKind),
    /// Fail after plan binding but before execution — the plan-cache
    /// invalidation regression hook.
    AfterBind(TransientKind),
    /// Let the statement apply `rows` rows, then kill it. The engine
    /// must roll the applied prefix back (statement atomicity) before
    /// the error surfaces.
    TornAfterRows { rows: u64, kind: TransientKind },
    /// Like `TornAfterRows`, but panic instead of returning an error —
    /// exercises panic containment and lock-poison recovery.
    PanicAfterRows { rows: u64 },
    /// Succeed, but advance the virtual clock by `ticks` first.
    SlowQuery { ticks: u64 },
    /// Kill the process at the given WAL protocol point. `BeforeLog`
    /// fires at the statement gate (any statement); `AfterLog` and
    /// `MidApply` are armed here and consumed by the WAL append path,
    /// so they only bite statements that actually log (DML/DDL) — on a
    /// read they die unfired, like an unreached row fault.
    Crash(CrashPoint),
}

/// A deterministic fault schedule: scripted faults pinned to statement
/// indices, plus optional seeded random rates for soak/bench runs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    scripted: Vec<(u64, Fault)>,
    /// Checkpoint indices (0-based, counted per checkpoint attempt) at
    /// which a [`CrashPoint::DuringCheckpoint`] crash fires.
    checkpoint_crashes: Vec<u64>,
    /// Prepare indices (0-based, counted per 2PC prepare attempt) at
    /// which a [`PrepareCrash`] fires.
    prepare_crashes: Vec<(u64, PrepareCrash)>,
    /// Page-read indices (0-based, counted per page-store read) at which
    /// a [`PageFault`] fires.
    page_read_faults: Vec<(u64, PageFault)>,
    /// Page-write indices (0-based, counted per page-store write) at
    /// which a [`PageFault`] fires.
    page_write_faults: Vec<(u64, PageFault)>,
    transient_rate: f64,
    slow_rate: f64,
    slow_ticks: u64,
}

impl FaultPlan {
    /// Empty plan with a PRNG seed (only used once random rates are set).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Schedule `fault` for the statement with the given injector index.
    /// Scripted faults are consumed when they fire; scheduling faults at
    /// `i, i+1, … i+k` makes a retried statement fail `k+1` times.
    pub fn fault_at(mut self, statement_index: u64, fault: Fault) -> FaultPlan {
        self.scripted.push((statement_index, fault));
        self
    }

    /// Fail this fraction of unscripted statements with a transient
    /// error (kind drawn from the seeded PRNG).
    pub fn transient_rate(mut self, rate: f64) -> FaultPlan {
        self.transient_rate = rate;
        self
    }

    /// Slow down this fraction of unscripted statements by `ticks`
    /// virtual ticks each.
    pub fn slow_queries(mut self, rate: f64, ticks: u64) -> FaultPlan {
        self.slow_rate = rate;
        self.slow_ticks = ticks;
        self
    }

    /// Crash the process while the `checkpoint_index`-th checkpoint (per
    /// this injector, 0-based) is being written. Consumed when it fires,
    /// like statement-scripted faults.
    pub fn crash_at_checkpoint(mut self, checkpoint_index: u64) -> FaultPlan {
        self.checkpoint_crashes.push(checkpoint_index);
        self
    }

    /// Crash the process around the `prepare_index`-th 2PC prepare (per
    /// this injector, 0-based); `kind` picks the protocol point. Consumed
    /// when it fires, like statement-scripted faults.
    pub fn crash_at_prepare(mut self, prepare_index: u64, kind: PrepareCrash) -> FaultPlan {
        self.prepare_crashes.push((prepare_index, kind));
        self
    }

    /// Schedule `fault` for the `read_index`-th page-store read (per
    /// this injector, 0-based). Consumed when it fires.
    pub fn fault_at_page_read(mut self, read_index: u64, fault: PageFault) -> FaultPlan {
        self.page_read_faults.push((read_index, fault));
        self
    }

    /// Schedule `fault` for the `write_index`-th page-store write (per
    /// this injector, 0-based). Consumed when it fires.
    pub fn fault_at_page_write(mut self, write_index: u64, fault: PageFault) -> FaultPlan {
        self.page_write_faults.push((write_index, fault));
        self
    }
}

/// A row-level fault armed by the statement gate, consumed by the
/// executor's apply loop.
#[derive(Debug, Clone, Copy)]
enum ArmedRowFault {
    Error { remaining: u64, kind: TransientKind },
    Panic { remaining: u64 },
}

#[derive(Debug)]
struct InjectorState {
    rng: SplitMix64,
    /// Scripted faults not yet fired, keyed by statement index.
    scripted: HashMap<u64, Fault>,
    /// Checkpoint crashes not yet fired, keyed by checkpoint index.
    checkpoint_crashes: HashSet<u64>,
    /// Prepare crashes not yet fired, keyed by prepare index.
    prepare_crashes: HashMap<u64, PrepareCrash>,
    /// Page faults not yet fired, keyed by page-read index.
    page_read_faults: HashMap<u64, PageFault>,
    /// Page faults not yet fired, keyed by page-write index.
    page_write_faults: HashMap<u64, PageFault>,
    /// Row fault armed for the statement currently executing.
    row_fault: Option<ArmedRowFault>,
    /// After-bind fault armed for the statement currently executing.
    after_bind: Option<TransientKind>,
    /// Crash point armed for the statement currently executing, consumed
    /// by the WAL append path.
    armed_crash: Option<CrashPoint>,
}

/// The injector installed on a [`crate::Database`]. Thread-safe; the
/// statement gate serializes index assignment so a schedule means the
/// same thing regardless of how calls interleave.
#[derive(Debug)]
pub struct FaultInjector {
    transient_rate: f64,
    slow_rate: f64,
    slow_ticks: u64,
    /// True when the plan can never fire (no scripted faults, zero
    /// rates): the gate reduces to a lock-free index increment, keeping
    /// the cost of an installed-but-idle plan within measurement noise.
    passive: bool,
    /// Next statement index to be assigned by the gate.
    next_index: AtomicU64,
    /// Next checkpoint index to be assigned by the checkpoint hook.
    next_checkpoint: AtomicU64,
    /// Next prepare index to be assigned by the prepare hook.
    next_prepare: AtomicU64,
    /// Next page-read index to be assigned by the pager's read hook.
    next_page_read: AtomicU64,
    /// Next page-write index to be assigned by the pager's write hook.
    next_page_write: AtomicU64,
    state: Mutex<InjectorState>,
    /// Faults actually delivered (transients, torn rows, panics, slow ticks).
    injected: AtomicU64,
    /// Virtual clock, advanced by slow-query faults (and by the retry
    /// layer above, which shares the same notion of time).
    ticks: AtomicU64,
    /// Set once a crash fault fires. A frozen injector models a dead
    /// process: every subsequent gated statement fails with
    /// [`crashed_error`] and the WAL layer refuses further appends. Only
    /// [`crate::Database::recover`] (a fresh database) escapes.
    frozen: AtomicBool,
}

impl FaultInjector {
    /// Build an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            transient_rate: plan.transient_rate,
            slow_rate: plan.slow_rate,
            slow_ticks: plan.slow_ticks,
            passive: plan.scripted.is_empty()
                && plan.checkpoint_crashes.is_empty()
                && plan.prepare_crashes.is_empty()
                && plan.page_read_faults.is_empty()
                && plan.page_write_faults.is_empty()
                && plan.transient_rate <= 0.0
                && plan.slow_rate <= 0.0,
            next_index: AtomicU64::new(0),
            next_checkpoint: AtomicU64::new(0),
            next_prepare: AtomicU64::new(0),
            next_page_read: AtomicU64::new(0),
            next_page_write: AtomicU64::new(0),
            state: Mutex::new(InjectorState {
                rng: SplitMix64::new(plan.seed),
                scripted: plan.scripted.into_iter().collect(),
                checkpoint_crashes: plan.checkpoint_crashes.into_iter().collect(),
                prepare_crashes: plan.prepare_crashes.into_iter().collect(),
                page_read_faults: plan.page_read_faults.into_iter().collect(),
                page_write_faults: plan.page_write_faults.into_iter().collect(),
                row_fault: None,
                after_bind: None,
                armed_crash: None,
            }),
            injected: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            frozen: AtomicBool::new(false),
        }
    }

    /// Has a crash fault fired? A frozen injector means the "process"
    /// hosting this database is dead; only the log survives.
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }

    /// Mark the crash as delivered: freeze the injector and count the
    /// fault. Called by the WAL layer after it has staged whatever bytes
    /// the crash point lets reach the log.
    pub fn deliver_crash(&self) {
        self.frozen.store(true, Ordering::Relaxed);
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Consume the crash point armed for the current statement, if any.
    /// The caller (the WAL append path) decides how many bytes reach the
    /// log, then calls [`FaultInjector::deliver_crash`].
    pub fn take_armed_crash(&self) -> Option<CrashPoint> {
        if self.passive {
            return None;
        }
        self.state.lock().armed_crash.take()
    }

    /// Checkpoint hook: called once per checkpoint attempt. Returns true
    /// when this checkpoint is scheduled to crash mid-write (consumed on
    /// fire, like scripted statement faults).
    pub fn on_checkpoint(&self) -> bool {
        let index = self.next_checkpoint.fetch_add(1, Ordering::Relaxed);
        if self.passive {
            return false;
        }
        self.state.lock().checkpoint_crashes.remove(&index)
    }

    /// Prepare hook: called once per 2PC prepare attempt. Returns the
    /// crash kind scheduled for this prepare, if any (consumed on fire);
    /// the prepare path decides how many bytes reach the log and whether
    /// the vote is acknowledged, then calls
    /// [`FaultInjector::deliver_crash`].
    pub fn on_prepare(&self) -> Option<PrepareCrash> {
        let index = self.next_prepare.fetch_add(1, Ordering::Relaxed);
        if self.passive {
            return None;
        }
        self.state.lock().prepare_crashes.remove(&index)
    }

    /// Page-read hook: called once per page-store read attempt. Returns
    /// the fault scheduled for this read, if any (consumed on fire),
    /// with a fresh PRNG draw for parameterized faults.
    pub fn on_page_read(&self) -> Option<FiredPageFault> {
        let index = self.next_page_read.fetch_add(1, Ordering::Relaxed);
        if self.passive {
            return None;
        }
        let mut st = self.state.lock();
        let fault = st.page_read_faults.remove(&index)?;
        let draw = st.rng.next_u64();
        Some(FiredPageFault { fault, draw })
    }

    /// Page-write hook: called once per page-store write attempt.
    /// Returns the fault scheduled for this write, if any (consumed on
    /// fire), with a fresh PRNG draw for parameterized faults.
    pub fn on_page_write(&self) -> Option<FiredPageFault> {
        let index = self.next_page_write.fetch_add(1, Ordering::Relaxed);
        if self.passive {
            return None;
        }
        let mut st = self.state.lock();
        let fault = st.page_write_faults.remove(&index)?;
        let draw = st.rng.next_u64();
        Some(FiredPageFault { fault, draw })
    }

    /// Count one delivered non-crash fault (used by the pager for page
    /// faults that do not freeze the process).
    pub fn note_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Faults delivered so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Current virtual-clock reading.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advance the virtual clock (used by retry backoff as well as
    /// slow-query faults, so one timeline covers both layers).
    pub fn advance_ticks(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Statement gate: called once per non-transaction-control statement
    /// before execution. Immediate transient faults return `Err` here;
    /// torn/panic/after-bind faults are armed for the hooks below; slow
    /// queries advance the virtual clock and let the statement proceed.
    pub fn on_statement(&self) -> SqlResult<()> {
        let index = self.next_index.fetch_add(1, Ordering::Relaxed);
        if self.passive {
            // Nothing can ever fire and nothing was ever armed.
            return Ok(());
        }
        if self.frozen() {
            return Err(crashed_error());
        }
        let mut st = self.state.lock();
        // A fault armed for a previous statement that never reached its
        // trigger point (e.g. torn-row fault on a statement that matched
        // fewer rows) dies here rather than leaking onto this statement.
        // An armed *crash* is different: it models the whole process
        // dying, not a per-statement hiccup, so it stays pending until
        // some statement's append delivers it — with concurrent
        // connections, another statement's gate must not wipe a crash a
        // peer thread armed but has not yet carried to the WAL layer.
        st.row_fault = None;
        st.after_bind = None;

        let fault = match st.scripted.remove(&index) {
            Some(f) => Some(f),
            None if self.transient_rate > 0.0 || self.slow_rate > 0.0 => {
                let draw = st.rng.next_f64();
                if draw < self.transient_rate {
                    let kind = TransientKind::from_index(st.rng.next_u64());
                    Some(Fault::Transient(kind))
                } else if draw < self.transient_rate + self.slow_rate {
                    Some(Fault::SlowQuery {
                        ticks: self.slow_ticks,
                    })
                } else {
                    None
                }
            }
            None => None,
        };

        match fault {
            None => Ok(()),
            Some(Fault::Transient(kind)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(kind.error())
            }
            Some(Fault::AfterBind(kind)) => {
                st.after_bind = Some(kind);
                Ok(())
            }
            Some(Fault::TornAfterRows { rows, kind }) => {
                st.row_fault = Some(ArmedRowFault::Error {
                    remaining: rows,
                    kind,
                });
                Ok(())
            }
            Some(Fault::PanicAfterRows { rows }) => {
                st.row_fault = Some(ArmedRowFault::Panic { remaining: rows });
                Ok(())
            }
            Some(Fault::SlowQuery { ticks }) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.ticks.fetch_add(ticks, Ordering::Relaxed);
                Ok(())
            }
            // BeforeLog (and a DuringCheckpoint misfiled onto a statement
            // index) kills right here: nothing of the statement reaches
            // the log, whatever kind of statement it is.
            Some(Fault::Crash(CrashPoint::BeforeLog | CrashPoint::DuringCheckpoint)) => {
                drop(st);
                self.deliver_crash();
                Err(crashed_error())
            }
            Some(Fault::Crash(point)) => {
                st.armed_crash = Some(point);
                Ok(())
            }
        }
    }

    /// Bind hook: called after a compiled plan is (re)bound, before any
    /// row is touched. Delivers an armed [`Fault::AfterBind`].
    pub fn on_bind_complete(&self) -> SqlResult<()> {
        if self.passive {
            return Ok(());
        }
        let kind = self.state.lock().after_bind.take();
        match kind {
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(kind.error())
            }
            None => Ok(()),
        }
    }

    /// Row hook: called by DML apply loops after each applied row.
    /// Delivers armed torn-statement faults once their row budget is
    /// exhausted — by returning an error (the caller's undo machinery
    /// must wipe the applied prefix) or by panicking.
    pub fn on_row_applied(&self) -> SqlResult<()> {
        if self.passive {
            return Ok(());
        }
        let mut st = self.state.lock();
        match &mut st.row_fault {
            None => Ok(()),
            Some(ArmedRowFault::Error { remaining, kind }) => {
                if *remaining > 1 {
                    *remaining -= 1;
                    return Ok(());
                }
                let kind = *kind;
                st.row_fault = None;
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(kind.error())
            }
            Some(ArmedRowFault::Panic { remaining }) => {
                if *remaining > 1 {
                    *remaining -= 1;
                    return Ok(());
                }
                st.row_fault = None;
                drop(st);
                self.injected.fetch_add(1, Ordering::Relaxed);
                panic!("fault injection: forced panic mid-statement");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len());
        let f = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn scripted_fault_fires_once_then_clears() {
        let inj = FaultInjector::new(
            FaultPlan::new(1).fault_at(1, Fault::Transient(TransientKind::DeadlockVictim)),
        );
        assert!(inj.on_statement().is_ok()); // index 0
        let err = inj.on_statement().unwrap_err(); // index 1
        assert_eq!(err.class(), "transient");
        assert!(err.to_string().contains("deadlock victim"));
        assert!(inj.on_statement().is_ok()); // index 2: consumed
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn torn_fault_fires_on_nth_row() {
        let inj = FaultInjector::new(FaultPlan::new(1).fault_at(
            0,
            Fault::TornAfterRows {
                rows: 2,
                kind: TransientKind::SerializationFailure,
            },
        ));
        inj.on_statement().unwrap();
        assert!(inj.on_row_applied().is_ok()); // row 1
        assert!(inj.on_row_applied().is_err()); // row 2 → boom
        assert!(inj.on_row_applied().is_ok()); // disarmed
    }

    #[test]
    fn unfired_row_fault_does_not_leak_to_next_statement() {
        let inj = FaultInjector::new(FaultPlan::new(1).fault_at(
            0,
            Fault::TornAfterRows {
                rows: 5,
                kind: TransientKind::ConnectionReset,
            },
        ));
        inj.on_statement().unwrap();
        assert!(inj.on_row_applied().is_ok()); // only one row applied
        inj.on_statement().unwrap(); // next statement disarms
        for _ in 0..10 {
            assert!(inj.on_row_applied().is_ok());
        }
    }

    #[test]
    fn slow_queries_advance_virtual_clock_only() {
        let inj =
            FaultInjector::new(FaultPlan::new(1).fault_at(0, Fault::SlowQuery { ticks: 250 }));
        assert!(inj.on_statement().is_ok());
        assert_eq!(inj.ticks(), 250);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn page_faults_fire_once_at_their_io_index() {
        let inj = FaultInjector::new(
            FaultPlan::new(5)
                .fault_at_page_read(1, PageFault::ReadBitFlip)
                .fault_at_page_write(0, PageFault::IoError),
        );
        // Write index 0 faults; write index 1 is clean.
        assert!(matches!(
            inj.on_page_write().map(|f| f.fault),
            Some(PageFault::IoError)
        ));
        assert!(inj.on_page_write().is_none());
        // Read index 0 is clean; read index 1 faults, then clears.
        assert!(inj.on_page_read().is_none());
        let fired = inj.on_page_read().expect("scheduled read fault");
        assert_eq!(fired.fault, PageFault::ReadBitFlip);
        assert!(inj.on_page_read().is_none());
    }

    #[test]
    fn page_fault_draws_are_deterministic_per_seed() {
        let draw = |seed: u64| {
            let inj = FaultInjector::new(
                FaultPlan::new(seed).fault_at_page_read(0, PageFault::ReadBitFlip),
            );
            inj.on_page_read().unwrap().draw
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn random_rate_is_reproducible_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultPlan::new(seed).transient_rate(0.3));
            (0..64).map(|_| inj.on_statement().is_err()).collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
        let failures = run(99).iter().filter(|b| **b).count();
        assert!(failures > 5 && failures < 40, "rate wildly off: {failures}");
    }
}
