//! SQL token model produced by the [`crate::lexer`].

use std::fmt;

/// A lexical token. Keywords are folded into [`Token::Keyword`] with an
/// upper-cased spelling; identifiers keep their original case but compare
/// case-insensitively at the catalog layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// SQL keyword, upper-cased (`SELECT`, `FROM`, …).
    Keyword(String),
    /// Identifier (table, column, alias, function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, with `''` unescaped.
    Str(String),
    /// `?` host-parameter placeholder.
    Param,
    /// `:name` named parameter (stored-procedure formal parameter reference).
    NamedParam(String),
    /// Punctuation / operators.
    Symbol(Sym),
    /// End of input (always the final token).
    Eof,
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Semicolon => ";",
            Sym::Dot => ".",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::NotEq => "<>",
            Sym::Lt => "<",
            Sym::LtEq => "<=",
            Sym::Gt => ">",
            Sym::GtEq => ">=",
            Sym::Concat => "||",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param => write!(f, "?"),
            Token::NamedParam(n) => write!(f, ":{n}"),
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// The reserved words the lexer recognizes as keywords. Everything else is
/// an identifier. Function names (`SUM`, `UPPER`, …) are deliberately *not*
/// keywords so they can also be used as identifiers.
pub const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "AS",
    "DISTINCT",
    "ALL",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "LIKE",
    "BETWEEN",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "OUTER",
    "CROSS",
    "ON",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "DROP",
    "TABLE",
    "INDEX",
    "SEQUENCE",
    "PROCEDURE",
    "CALL",
    "PRIMARY",
    "KEY",
    "UNIQUE",
    "DEFAULT",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRANSACTION",
    "TRUE",
    "FALSE",
    "EXISTS",
    "IF",
    "START",
    "WITH",
    "INCREMENT",
    "UNION",
    "TEMPORARY",
    "TEMP",
    "RETURNS",
    "VIEW",
];

/// Is `word` (already upper-cased) a reserved keyword?
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert!(is_keyword("SELECT"));
        assert!(!is_keyword("SUM"));
        assert!(!is_keyword("FOO"));
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Symbol(Sym::NotEq).to_string(), "<>");
        assert_eq!(Token::Str("a'b".into()).to_string(), "'a'b'");
        assert_eq!(Token::Param.to_string(), "?");
    }
}
