//! Undo-log based transactions.
//!
//! Every mutating statement records compensation entries into an
//! [`UndoLog`]. Rolling back applies the entries in reverse. Two logs are
//! in play per statement: a *statement log* that guarantees statement
//! atomicity even in auto-commit mode (a failed multi-row `INSERT` leaves
//! nothing behind), and — inside an explicit transaction — the
//! *transaction log* the statement log is folded into on success.
//!
//! Concurrency note: statements run under MVCC snapshots (see
//! `storage.rs`): an open transaction's writes are versions stamped with
//! its [`TxnStamp`] and stay invisible to other connections until COMMIT
//! publishes the commit timestamp. A *stamped* log therefore rolls row
//! ops back surgically — `undo_insert`/`undo_update`/`undo_delete`
//! remove exactly the version this transaction pushed, leaving versions
//! other transactions stacked above or below untouched. A stampless log
//! (WAL recovery, direct `Table` tests) falls back to flat physical
//! undo, byte-identical to the single-version engine.

use crate::catalog::{Catalog, Procedure, Sequence, View};
use crate::storage::{Index, Row, RowId, Table, TxnStamp};

/// One compensation entry.
///
/// `DropTable` dominates the size; undo logs are short-lived and rare on
/// the DDL path, so boxing is not worth the indirection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum UndoOp {
    /// A row was inserted → undo deletes it.
    Insert { table: String, row_id: RowId },
    /// A row was deleted → undo restores it.
    Delete {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A row was updated → undo restores the old image.
    Update {
        table: String,
        row_id: RowId,
        old: Row,
    },
    /// A table was created → undo drops it.
    CreateTable { name: String },
    /// A table was dropped → undo restores it wholesale.
    DropTable { table: Table },
    /// An index was created → undo drops it.
    CreateIndex { table: String, index: String },
    /// An index was dropped → undo re-attaches it.
    DropIndex { table: String, index: Index },
    /// A sequence was created → undo removes it.
    CreateSequence { name: String },
    /// A `NEXTVAL` draw by a statement that later joined this log → undo
    /// gives the value back (CAS-guarded: skipped if a later draw
    /// intervened), so a rolled-back transaction's retry redraws it.
    SequenceDraw { name: String, drawn: i64 },
    /// A sequence was dropped → undo restores it (current value included).
    DropSequence { seq: Sequence },
    /// A procedure was created → undo removes it.
    CreateProcedure { name: String },
    /// A procedure was dropped → undo restores it.
    DropProcedure { proc: Procedure },
    /// A view was created → undo removes it.
    CreateView { name: String },
    /// A view was dropped → undo restores it.
    DropView { view: View },
}

/// An ordered list of compensation entries.
#[derive(Debug, Default)]
pub struct UndoLog {
    ops: Vec<UndoOp>,
    /// The version stamp this log's row writes carry. When set, rollback
    /// removes exactly the stamped versions; when `None` (recovery,
    /// direct-table tests), rollback applies flat physical compensation.
    stamp: Option<TxnStamp>,
}

impl UndoLog {
    /// Empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Empty log whose row writes are stamped with `stamp`.
    pub fn with_stamp(stamp: TxnStamp) -> UndoLog {
        UndoLog {
            ops: Vec::new(),
            stamp: Some(stamp),
        }
    }

    /// This log's version stamp, if any.
    pub fn stamp(&self) -> Option<&TxnStamp> {
        self.stamp.as_ref()
    }

    /// Record one entry.
    pub fn record(&mut self, op: UndoOp) {
        self.ops.push(op);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Any entries recorded?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded entries in apply order — the WAL derives its redo
    /// records from a successful statement's scratch log.
    pub fn ops(&self) -> &[UndoOp] {
        &self.ops
    }

    /// Fold `other` into this log (statement commit inside a transaction).
    pub fn absorb(&mut self, other: UndoLog) {
        self.ops.extend(other.ops);
    }

    /// Roll back a statement log whose entries are all row operations on
    /// the caller's held table — the fast path's rollback, which must not
    /// re-enter the catalog's table map while its guard is held. Non-row
    /// entries cannot occur on that path (DDL never takes it).
    pub fn rollback_on_table(self, table: &mut Table) {
        let stamp = self.stamp;
        for op in self.ops.into_iter().rev() {
            match op {
                UndoOp::Insert { row_id, .. } => match &stamp {
                    Some(s) => table.undo_insert(row_id, s),
                    None => {
                        let _ = table.delete(row_id);
                    }
                },
                UndoOp::Delete { row_id, row, .. } => match &stamp {
                    Some(s) => table.undo_delete(row_id, s),
                    None => table.restore(row_id, row),
                },
                UndoOp::Update { row_id, old, .. } => match &stamp {
                    Some(s) => table.undo_update(row_id, s),
                    None => table.raw_replace(row_id, old),
                },
                _ => debug_assert!(false, "fast-path undo log holds only row ops"),
            }
        }
    }

    /// Apply all entries in reverse, restoring the pre-log state.
    ///
    /// Undo application is infallible by construction: every entry restores
    /// state that was valid when recorded, and reverse order re-establishes
    /// the intermediate states exactly. Failures (which would indicate
    /// corruption) are ignored rather than panicking.
    pub fn rollback(self, catalog: &mut Catalog) {
        let stamp = self.stamp;
        for op in self.ops.into_iter().rev() {
            match op {
                UndoOp::Insert { table, row_id } => {
                    if let Ok(mut t) = catalog.table_mut(&table) {
                        match &stamp {
                            Some(s) => t.undo_insert(row_id, s),
                            None => {
                                let _ = t.delete(row_id);
                            }
                        }
                    }
                }
                UndoOp::Delete { table, row_id, row } => {
                    if let Ok(mut t) = catalog.table_mut(&table) {
                        match &stamp {
                            Some(s) => t.undo_delete(row_id, s),
                            None => t.restore(row_id, row),
                        }
                    }
                }
                UndoOp::Update { table, row_id, old } => {
                    if let Ok(mut t) = catalog.table_mut(&table) {
                        match &stamp {
                            Some(s) => t.undo_update(row_id, s),
                            None => t.raw_replace(row_id, old),
                        }
                    }
                }
                UndoOp::CreateTable { name } => {
                    let _ = catalog.remove_table(&name);
                }
                UndoOp::DropTable { table } => {
                    let name = table.schema.name.clone();
                    let index_names = table.index_names();
                    if catalog.add_table(table).is_ok() {
                        for idx in index_names {
                            // pk/unique backing indexes were never registered;
                            // re-registering is idempotent-by-ignore here.
                            let _ = catalog.register_index(&idx, &name);
                        }
                    }
                }
                UndoOp::CreateIndex { table, index } => {
                    catalog.unregister_index(&index);
                    if let Ok(mut t) = catalog.table_mut(&table) {
                        let _ = t.drop_index(&index);
                    }
                }
                UndoOp::DropIndex { table, index } => {
                    let _ = catalog.register_index(&index.name, &table);
                    if let Ok(mut t) = catalog.table_mut(&table) {
                        t.restore_index(index);
                    }
                }
                UndoOp::CreateSequence { name } => {
                    let _ = catalog.remove_sequence(&name);
                }
                UndoOp::SequenceDraw { name, drawn } => {
                    if let Ok(seq) = catalog.sequence(&name) {
                        let _ = seq.undo_draw(drawn);
                    }
                }
                UndoOp::DropSequence { seq } => {
                    let _ = catalog.add_sequence(seq);
                }
                UndoOp::CreateProcedure { name } => {
                    let _ = catalog.remove_procedure(&name);
                }
                UndoOp::DropProcedure { proc } => {
                    let _ = catalog.add_procedure(proc);
                }
                UndoOp::CreateView { name } => {
                    let _ = catalog.remove_view(&name);
                }
                UndoOp::DropView { view } => {
                    let _ = catalog.add_view(view);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::types::{DataType, Value};

    fn catalog_with_table() -> Catalog {
        let mut c = Catalog::new();
        let schema = TableSchema::new(
            "t",
            vec![
                {
                    let mut col = Column::new("id", DataType::Int);
                    col.primary_key = true;
                    col
                },
                Column::new("v", DataType::Text),
            ],
            false,
        )
        .unwrap();
        c.add_table(Table::new(schema)).unwrap();
        c
    }

    #[test]
    fn rollback_insert() {
        let mut c = catalog_with_table();
        let mut log = UndoLog::new();
        let id = c
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::text("a")])
            .unwrap();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row_id: id,
        });
        log.rollback(&mut c);
        assert_eq!(c.table("t").unwrap().len(), 0);
    }

    #[test]
    fn rollback_delete_restores_row() {
        let mut c = catalog_with_table();
        let id = c
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::text("a")])
            .unwrap();
        let mut log = UndoLog::new();
        let row = c.table_mut("t").unwrap().delete(id).unwrap();
        log.record(UndoOp::Delete {
            table: "t".into(),
            row_id: id,
            row,
        });
        log.rollback(&mut c);
        let t = c.table("t").unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::text("a"));
    }

    #[test]
    fn rollback_update_restores_old_image() {
        let mut c = catalog_with_table();
        let id = c
            .table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(1), Value::text("old")])
            .unwrap();
        let mut log = UndoLog::new();
        let old = c
            .table_mut("t")
            .unwrap()
            .update(id, vec![Value::Int(1), Value::text("new")])
            .unwrap();
        log.record(UndoOp::Update {
            table: "t".into(),
            row_id: id,
            old,
        });
        log.rollback(&mut c);
        assert_eq!(
            c.table("t").unwrap().get(id).unwrap()[1],
            Value::text("old")
        );
    }

    #[test]
    fn rollback_reverses_in_order() {
        // insert then update then delete of the same row rolls back cleanly.
        let mut c = catalog_with_table();
        let mut log = UndoLog::new();
        let mut t = c.table_mut("t").unwrap();
        let id = t.insert(vec![Value::Int(9), Value::text("x")]).unwrap();
        log.record(UndoOp::Insert {
            table: "t".into(),
            row_id: id,
        });
        let old = t.update(id, vec![Value::Int(9), Value::text("y")]).unwrap();
        log.record(UndoOp::Update {
            table: "t".into(),
            row_id: id,
            old,
        });
        let row = t.delete(id).unwrap();
        log.record(UndoOp::Delete {
            table: "t".into(),
            row_id: id,
            row,
        });
        drop(t);
        log.rollback(&mut c);
        assert_eq!(c.table("t").unwrap().len(), 0);
    }

    #[test]
    fn rollback_ddl() {
        let mut c = Catalog::new();
        let mut log = UndoLog::new();
        let schema = TableSchema::new("n", vec![Column::new("a", DataType::Int)], false).unwrap();
        c.add_table(Table::new(schema)).unwrap();
        log.record(UndoOp::CreateTable { name: "n".into() });
        c.add_sequence(Sequence::new("s", 1, 1)).unwrap();
        log.record(UndoOp::CreateSequence { name: "s".into() });
        log.rollback(&mut c);
        assert!(!c.has_table("n"));
        assert!(!c.has_sequence("s"));
    }

    #[test]
    fn rollback_drop_table_restores_contents() {
        let mut c = catalog_with_table();
        c.table_mut("t")
            .unwrap()
            .insert(vec![Value::Int(5), Value::text("keep")])
            .unwrap();
        let mut log = UndoLog::new();
        let table = c.remove_table("t").unwrap();
        log.record(UndoOp::DropTable { table });
        log.rollback(&mut c);
        assert_eq!(c.table("t").unwrap().len(), 1);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = UndoLog::new();
        a.record(UndoOp::CreateTable { name: "x".into() });
        let mut b = UndoLog::new();
        b.record(UndoOp::CreateTable { name: "y".into() });
        a.absorb(b);
        assert_eq!(a.len(), 2);
    }
}
