//! Fixed-size checksummed pages with a slotted cell layout.
//!
//! Every on-disk page is exactly [`PAGE_SIZE`] bytes:
//!
//! ```text
//! ┌──────────────┬───────┬──────┬───────┬─────────┬───────┬─────────┐
//! │ checksum u64 │ magic │ kind │ slots │ page_no │ epoch │ page_lsn│
//! ├──────────────┴──┬────┴──────┴───────┴───┬─────┴───────┴─────────┤
//! │ slot dir (4B ea)│    free space         │ cells (grow downward) │
//! └─────────────────┴───────────────────────┴───────────────────────┘
//! ```
//!
//! The checksum is FNV-1a over everything after the checksum field, so a
//! single flipped bit anywhere in header or payload is detected. Each
//! slot is `(offset: u16, len: u16)`; cells are appended from the end of
//! the page downward, slots from the header upward — the classic slotted
//! page. The header also carries the *page LSN*: the WAL position the
//! page's contents are consistent with. The buffer pool refuses to write
//! back any dirty page whose LSN exceeds the WAL flush point
//! (write-ahead ordering), and recovery uses the mismatch between a
//! checksum-failing page and an intact previous-epoch image to repair
//! torn or bit-flipped pages from the log.
//!
//! Pages do not interpret their cells. The pager stores each table as a
//! byte stream (row count + encoded rows) chunked into cells: a row that
//! fits becomes one cell; oversized streams simply continue in the next
//! cell/page. Reassembly is concatenation in (page, slot) order, so the
//! page layer needs no fragment flags.

use crate::error::{SqlError, SqlResult};
use crate::wal::checksum;

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Byte offset where the checksummed region starts (the checksum field
/// itself is excluded from the digest).
const SUM_END: usize = 8;
/// Fixed header length; the slot directory starts here.
pub const HEADER_LEN: usize = 40;
/// Bytes of directory overhead per cell.
const SLOT_LEN: usize = 4;
/// Largest single cell a page can hold.
pub const MAX_CELL: usize = PAGE_SIZE - HEADER_LEN - SLOT_LEN;

const MAGIC: u32 = 0x4653_5047; // "FSPG" little-endian tag

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// One of the two ping-pong metadata slots (pages 0 and 1).
    Meta,
    /// A chunk of the serialized table directory.
    Directory,
    /// A chunk of one table's row stream.
    Data,
}

impl PageKind {
    fn to_byte(self) -> u8 {
        match self {
            PageKind::Meta => 1,
            PageKind::Directory => 2,
            PageKind::Data => 3,
        }
    }

    fn from_byte(b: u8) -> SqlResult<PageKind> {
        match b {
            1 => Ok(PageKind::Meta),
            2 => Ok(PageKind::Directory),
            3 => Ok(PageKind::Data),
            b => Err(corrupt(format!("bad page kind {b}"))),
        }
    }
}

/// The error every structural failure surfaces. Distinguishable by
/// message prefix so the recovery path can treat *any* parse failure of
/// a page as "this page is corrupt, try repair" — which is exactly the
/// right response whether the cause is a torn write, a flipped bit, or
/// garbage where a page was expected.
fn corrupt(detail: String) -> SqlError {
    SqlError::Runtime(format!("page: {detail}"))
}

/// Incrementally fills one page with cells, then seals it.
#[derive(Debug)]
pub struct PageBuilder {
    kind: PageKind,
    page_no: u64,
    /// `(offset, len)` per cell, in insertion order.
    slots: Vec<(u16, u16)>,
    /// Cell bytes already placed; `cell_floor` is the lowest used offset.
    buf: Vec<u8>,
    cell_floor: usize,
}

impl PageBuilder {
    /// Empty page of the given kind and number.
    pub fn new(kind: PageKind, page_no: u64) -> PageBuilder {
        PageBuilder {
            kind,
            page_no,
            slots: Vec::new(),
            buf: vec![0u8; PAGE_SIZE],
            cell_floor: PAGE_SIZE,
        }
    }

    /// Bytes still available for one more cell (slot overhead included).
    pub fn free(&self) -> usize {
        let used_front = HEADER_LEN + self.slots.len() * SLOT_LEN;
        (self.cell_floor - used_front).saturating_sub(SLOT_LEN)
    }

    /// Append one cell; `false` when it does not fit (callers start the
    /// next page and retry). Cells larger than [`MAX_CELL`] never fit.
    pub fn try_push(&mut self, cell: &[u8]) -> bool {
        if cell.len() > self.free() {
            return false;
        }
        let start = self.cell_floor - cell.len();
        self.buf[start..self.cell_floor].copy_from_slice(cell);
        self.slots.push((start as u16, cell.len() as u16));
        self.cell_floor = start;
        true
    }

    /// Number of cells pushed so far.
    pub fn cell_count(&self) -> usize {
        self.slots.len()
    }

    /// Seal the page: stamp epoch and page LSN, write the slot
    /// directory, and checksum the result. Always [`PAGE_SIZE`] bytes.
    pub fn finalize(mut self, epoch: u64, page_lsn: u64) -> Vec<u8> {
        self.buf[8..12].copy_from_slice(&MAGIC.to_le_bytes());
        self.buf[12] = self.kind.to_byte();
        self.buf[13] = 1; // format version
        self.buf[14..16].copy_from_slice(&(self.slots.len() as u16).to_le_bytes());
        self.buf[16..24].copy_from_slice(&self.page_no.to_le_bytes());
        self.buf[24..32].copy_from_slice(&epoch.to_le_bytes());
        self.buf[32..40].copy_from_slice(&page_lsn.to_le_bytes());
        for (i, (off, len)) in self.slots.iter().enumerate() {
            let at = HEADER_LEN + i * SLOT_LEN;
            self.buf[at..at + 2].copy_from_slice(&off.to_le_bytes());
            self.buf[at + 2..at + 4].copy_from_slice(&len.to_le_bytes());
        }
        let sum = checksum(&self.buf[SUM_END..]);
        self.buf[0..8].copy_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// A parsed, checksum-verified view over one page's bytes.
#[derive(Debug)]
pub struct PageView<'a> {
    buf: &'a [u8],
    kind: PageKind,
    slot_count: usize,
    page_no: u64,
    epoch: u64,
    page_lsn: u64,
}

impl<'a> PageView<'a> {
    /// Validate and open a page. Rejects — with a plain [`SqlError`] the
    /// repair path catches — short buffers, bad magic, checksum
    /// mismatches (torn writes, bit flips), and slot entries that point
    /// outside the cell area.
    pub fn parse(buf: &'a [u8]) -> SqlResult<PageView<'a>> {
        if buf.len() != PAGE_SIZE {
            return Err(corrupt(format!(
                "expected {PAGE_SIZE} bytes, got {}",
                buf.len()
            )));
        }
        let stored = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        if checksum(&buf[SUM_END..]) != stored {
            return Err(corrupt("checksum mismatch".into()));
        }
        if u32::from_le_bytes(buf[8..12].try_into().unwrap()) != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let kind = PageKind::from_byte(buf[12])?;
        let slot_count = u16::from_le_bytes(buf[14..16].try_into().unwrap()) as usize;
        let dir_end = HEADER_LEN + slot_count * SLOT_LEN;
        if dir_end > PAGE_SIZE {
            return Err(corrupt(format!(
                "slot directory overflows page ({slot_count} slots)"
            )));
        }
        let view = PageView {
            buf,
            kind,
            slot_count,
            page_no: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            epoch: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            page_lsn: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
        };
        // Validate every slot up front so `cell()` cannot panic.
        for i in 0..slot_count {
            let (off, len) = view.slot(i);
            if off < dir_end || off + len > PAGE_SIZE {
                return Err(corrupt(format!("slot {i} points outside the cell area")));
            }
        }
        Ok(view)
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let at = HEADER_LEN + i * SLOT_LEN;
        let off = u16::from_le_bytes(self.buf[at..at + 2].try_into().unwrap()) as usize;
        let len = u16::from_le_bytes(self.buf[at + 2..at + 4].try_into().unwrap()) as usize;
        (off, len)
    }

    /// The page kind.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// The page number stamped at write time (cross-checked by the pager
    /// against the number it asked for, catching misdirected writes).
    pub fn page_no(&self) -> u64 {
        self.page_no
    }

    /// The checkpoint epoch that wrote this page.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The WAL position this page's contents are consistent with.
    pub fn page_lsn(&self) -> u64 {
        self.page_lsn
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.slot_count
    }

    /// One cell's bytes (bounds pre-validated by [`PageView::parse`]).
    pub fn cell(&self, i: usize) -> &'a [u8] {
        let (off, len) = self.slot(i);
        &self.buf[off..off + len]
    }

    /// All cells concatenated in slot order — the stream-reassembly
    /// primitive used for table and directory payloads.
    pub fn concat_cells(&self, out: &mut Vec<u8>) {
        for i in 0..self.slot_count {
            out.extend_from_slice(self.cell(i));
        }
    }
}

/// Chunk an arbitrary byte stream into finalized pages of `kind`, using
/// page numbers yielded by `alloc`. Each row-sized piece of `stream` is
/// cut at cell granularity purely by capacity — reassembly is
/// concatenation. Returns `(page_no, bytes)` pairs in stream order.
pub fn pack_stream(
    kind: PageKind,
    stream: &[u8],
    epoch: u64,
    page_lsn: u64,
    mut alloc: impl FnMut() -> u64,
) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    loop {
        let page_no = alloc();
        let mut builder = PageBuilder::new(kind, page_no);
        // One maximal cell per page keeps slot overhead minimal for bulk
        // streams; short tails still cost a single small cell.
        let take = (stream.len() - pos).min(builder.free());
        let pushed = builder.try_push(&stream[pos..pos + take]);
        debug_assert!(pushed, "a free()-sized cell always fits");
        pos += take;
        out.push((page_no, builder.finalize(epoch, page_lsn)));
        if pos >= stream.len() {
            break;
        }
    }
    out
}

/// Reassemble a stream packed by [`pack_stream`]: parse each page,
/// verify its kind and stamped page number, and concatenate cells.
pub fn unpack_stream(kind: PageKind, pages: &[(u64, Vec<u8>)]) -> SqlResult<Vec<u8>> {
    let mut out = Vec::new();
    for (page_no, bytes) in pages {
        let view = PageView::parse(bytes)?;
        if view.kind() != kind {
            return Err(corrupt(format!(
                "expected {:?} page, found {:?}",
                kind,
                view.kind()
            )));
        }
        if view.page_no() != *page_no {
            return Err(corrupt(format!(
                "page stamped {} read from slot {page_no} (misdirected write)",
                view.page_no()
            )));
        }
        view.concat_cells(&mut out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotted_cells_roundtrip() {
        let mut b = PageBuilder::new(PageKind::Data, 7);
        assert!(b.try_push(b"hello"));
        assert!(b.try_push(b""));
        assert!(b.try_push(&[0xAB; 100]));
        let bytes = b.finalize(3, 42);
        assert_eq!(bytes.len(), PAGE_SIZE);
        let v = PageView::parse(&bytes).unwrap();
        assert_eq!(v.kind(), PageKind::Data);
        assert_eq!(v.page_no(), 7);
        assert_eq!(v.epoch(), 3);
        assert_eq!(v.page_lsn(), 42);
        assert_eq!(v.cell_count(), 3);
        assert_eq!(v.cell(0), b"hello");
        assert_eq!(v.cell(1), b"");
        assert_eq!(v.cell(2), &[0xAB; 100]);
    }

    #[test]
    fn full_page_refuses_overflow() {
        let mut b = PageBuilder::new(PageKind::Data, 0);
        let cell = vec![1u8; MAX_CELL];
        assert!(b.try_push(&cell));
        assert!(!b.try_push(b"x"), "a full page must refuse more cells");
        let bytes = b.finalize(1, 1);
        let v = PageView::parse(&bytes).unwrap();
        assert_eq!(v.cell_count(), 1);
        assert_eq!(v.cell(0).len(), MAX_CELL);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut b = PageBuilder::new(PageKind::Directory, 9);
        b.try_push(b"payload bytes");
        let bytes = b.finalize(2, 11);
        // Flip a bit in the header, the slot directory, and the cell.
        for &at in &[9usize, 13, 15, HEADER_LEN + 1, PAGE_SIZE - 4] {
            let mut copy = bytes.clone();
            copy[at] ^= 0x04;
            assert!(
                PageView::parse(&copy).is_err(),
                "flip at byte {at} must be rejected"
            );
        }
    }

    #[test]
    fn torn_prefix_is_rejected() {
        let mut b = PageBuilder::new(PageKind::Data, 1);
        b.try_push(&[7u8; 200]);
        let bytes = b.finalize(1, 5);
        assert!(PageView::parse(&bytes[..PAGE_SIZE / 2]).is_err());
        // A torn write over old content: prefix of new, tail of old.
        let mut old = PageBuilder::new(PageKind::Data, 1);
        old.try_push(&[9u8; 300]);
        let mut torn = old.finalize(0, 1);
        torn[..PAGE_SIZE / 2].copy_from_slice(&bytes[..PAGE_SIZE / 2]);
        assert!(PageView::parse(&torn).is_err(), "half-new half-old page");
    }

    #[test]
    fn stream_packing_roundtrips_across_pages() {
        let stream: Vec<u8> = (0..11_000u32).map(|i| (i % 251) as u8).collect();
        let mut next = 10u64;
        let pages = pack_stream(PageKind::Data, &stream, 4, 99, || {
            next += 1;
            next
        });
        assert!(pages.len() >= 3, "11k bytes must span several 4k pages");
        let back = unpack_stream(PageKind::Data, &pages).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn empty_stream_packs_to_one_page() {
        let pages = pack_stream(PageKind::Data, &[], 1, 1, || 5);
        assert_eq!(pages.len(), 1);
        assert_eq!(
            unpack_stream(PageKind::Data, &pages).unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn misdirected_write_is_caught_by_stamped_page_no() {
        let mut b = PageBuilder::new(PageKind::Data, 3);
        b.try_push(b"abc");
        let bytes = b.finalize(1, 1);
        let err = unpack_stream(PageKind::Data, &[(4, bytes)]).unwrap_err();
        assert!(err.to_string().contains("misdirected"));
    }
}
