//! `sqlkernel` — an embeddable, in-memory relational database engine.
//!
//! This crate is the data-management substrate of the *flowsql* workspace.
//! The workflow-product survey reproduced by this repository evaluates how
//! workflow languages embed SQL; to do that credibly we need a real SQL
//! engine underneath. `sqlkernel` provides:
//!
//! * a SQL lexer/parser covering queries (joins, grouping, ordering,
//!   subqueries in `FROM`), DML (`INSERT`/`UPDATE`/`DELETE`), DDL
//!   (`CREATE`/`DROP` for tables, indexes, sequences, and stored
//!   procedures), `CALL`, and transaction control;
//! * a tree-walking executor with hash joins, grouped aggregation,
//!   sorting, and secondary index maintenance;
//! * connection-scoped transactions backed by an undo log;
//! * prepared statements with `?` host parameters — the mechanism all
//!   three workflow stacks in the paper use to pass scalar process
//!   variables into SQL;
//! * stored procedures and sequences (needed by Oracle-style
//!   `sequence-next-val` and the Stored Procedure pattern);
//! * named temporary *result-set tables*, the server-side half of IBM
//!   BIS-style result-set references.
//!
//! # Quickstart
//!
//! ```
//! use sqlkernel::Database;
//!
//! let db = Database::new("orders_db");
//! let conn = db.connect();
//! conn.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)", &[]).unwrap();
//! conn.execute("INSERT INTO t VALUES (1, 'widget'), (2, 'gadget')", &[]).unwrap();
//! let rs = conn.query("SELECT name FROM t WHERE id = ?", &[1i64.into()]).unwrap();
//! assert_eq!(rs.rows[0][0], sqlkernel::Value::text("widget"));
//! ```

pub mod ast;
pub mod bound;
pub mod bufferpool;
pub mod catalog;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod lexer;
pub mod page;
pub mod pager;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod shard;
pub mod storage;
pub mod sync;
pub mod token;
pub mod txn;
pub mod types;
pub mod wal;

pub use bufferpool::BufferPool;
pub use db::{Connection, Database, DbStats, Prepared, QueryResult, StatementResult};
pub use error::{SqlError, SqlResult};
pub use fault::{
    crashed_error, CrashPoint, Fault, FaultInjector, FaultPlan, PageFault, PrepareCrash,
    SplitMix64, TransientKind,
};
pub use page::{PageKind, PAGE_SIZE};
pub use pager::{FilePageStore, MemPageStore, PageStore, PagedEngine, Pager};
pub use schema::{Column, TableSchema};
pub use shard::{shard_of, CrossShardTxn, ShardedDatabase};
pub use types::{DataType, Value};
pub use wal::{FileLogStore, InDoubtTxn, LogStore, MemLogStore};

/// The error type the database layer surfaces — an alias for
/// [`SqlError`], under the name the workflow stacks use when talking
/// about connection/registry failures rather than SQL ones.
pub type DbError = SqlError;
