//! Abstract syntax tree for the SQL dialect understood by `sqlkernel`.

use crate::types::{DataType, Value};

/// A complete SQL statement.
///
/// Statements are parsed once and moved around behind `Prepared` handles,
/// so the size spread across variants is acceptable.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
    CreateTable(CreateTableStmt),
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
        if_not_exists: bool,
    },
    DropIndex {
        name: String,
        if_exists: bool,
    },
    CreateSequence {
        name: String,
        start: i64,
        increment: i64,
        if_not_exists: bool,
    },
    DropSequence {
        name: String,
        if_exists: bool,
    },
    CreateProcedure(CreateProcedureStmt),
    DropProcedure {
        name: String,
        if_exists: bool,
    },
    /// `CREATE VIEW name AS SELECT …`.
    CreateView {
        name: String,
        if_not_exists: bool,
        query: Box<SelectStmt>,
    },
    DropView {
        name: String,
        if_exists: bool,
    },
    /// `CALL proc(arg, …)`.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    Begin,
    Commit,
    Rollback,
}

impl Statement {
    /// Does executing this statement produce a result grid?
    pub fn returns_rows(&self) -> bool {
        matches!(self, Statement::Select(_) | Statement::Call { .. })
    }

    /// Statement verb, for audit trails and error messages.
    pub fn verb(&self) -> &'static str {
        match self {
            Statement::Select(_) => "SELECT",
            Statement::Insert(_) => "INSERT",
            Statement::Update(_) => "UPDATE",
            Statement::Delete(_) => "DELETE",
            Statement::CreateTable(_) => "CREATE TABLE",
            Statement::DropTable { .. } => "DROP TABLE",
            Statement::CreateIndex { .. } => "CREATE INDEX",
            Statement::DropIndex { .. } => "DROP INDEX",
            Statement::CreateSequence { .. } => "CREATE SEQUENCE",
            Statement::DropSequence { .. } => "DROP SEQUENCE",
            Statement::CreateProcedure(_) => "CREATE PROCEDURE",
            Statement::DropProcedure { .. } => "DROP PROCEDURE",
            Statement::CreateView { .. } => "CREATE VIEW",
            Statement::DropView { .. } => "DROP VIEW",
            Statement::Call { .. } => "CALL",
            Statement::Begin => "BEGIN",
            Statement::Commit => "COMMIT",
            Statement::Rollback => "ROLLBACK",
        }
    }

    /// Is this a Data Definition Language statement? The BIS *Data Setup
    /// Pattern* probe uses this classification.
    pub fn is_ddl(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable(_)
                | Statement::DropTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::DropIndex { .. }
                | Statement::CreateSequence { .. }
                | Statement::DropSequence { .. }
                | Statement::CreateProcedure(_)
                | Statement::DropProcedure { .. }
                | Statement::CreateView { .. }
                | Statement::DropView { .. }
        )
    }

    /// Lowercased names of catalog objects (tables, views, sequences,
    /// procedures) this statement reads or writes, including those reached
    /// through subqueries, `UNION` arms, and `NEXTVAL('seq')` calls. The
    /// statement cache keys eviction on these names: when DDL touches an
    /// object, every cached plan that mentions it is dropped.
    pub fn referenced_objects(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_statement_objects(self, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Lowercased names of catalog objects this statement creates or
    /// drops. For index DDL the owning table is included too, so plans
    /// over that table are re-planned against the new access paths.
    pub fn ddl_targets(&self) -> Vec<String> {
        let mut out: Vec<String> = match self {
            Statement::CreateTable(c) => vec![c.name.clone()],
            Statement::DropTable { name, .. }
            | Statement::DropIndex { name, .. }
            | Statement::CreateSequence { name, .. }
            | Statement::DropSequence { name, .. }
            | Statement::DropProcedure { name, .. }
            | Statement::CreateView { name, .. }
            | Statement::DropView { name, .. } => vec![name.clone()],
            Statement::CreateIndex { name, table, .. } => {
                vec![name.clone(), table.clone()]
            }
            Statement::CreateProcedure(p) => {
                // Creating a procedure shadows nothing, but its body's DDL
                // targets matter when the procedure itself runs; the CALL
                // path asks for those separately. Here only the name.
                vec![p.name.clone()]
            }
            _ => Vec::new(),
        };
        for n in &mut out {
            n.make_ascii_lowercase();
        }
        out
    }
}

fn collect_statement_objects(stmt: &Statement, out: &mut Vec<String>) {
    match stmt {
        Statement::Select(s) => collect_select_objects(s, out),
        Statement::Insert(s) => {
            out.push(s.table.to_ascii_lowercase());
            match &s.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            collect_expr_objects(e, out);
                        }
                    }
                }
                InsertSource::Select(sel) => collect_select_objects(sel, out),
            }
        }
        Statement::Update(s) => {
            out.push(s.table.to_ascii_lowercase());
            for (_, e) in &s.assignments {
                collect_expr_objects(e, out);
            }
            if let Some(w) = &s.where_clause {
                collect_expr_objects(w, out);
            }
        }
        Statement::Delete(s) => {
            out.push(s.table.to_ascii_lowercase());
            if let Some(w) = &s.where_clause {
                collect_expr_objects(w, out);
            }
        }
        Statement::Call { name, args } => {
            out.push(name.to_ascii_lowercase());
            for a in args {
                collect_expr_objects(a, out);
            }
        }
        Statement::CreateView { query, .. } => collect_select_objects(query, out),
        Statement::CreateProcedure(p) => {
            for s in &p.body {
                collect_statement_objects(s, out);
            }
        }
        // DDL and transaction control reference only their own targets.
        other => out.extend(other.ddl_targets()),
    }
}

fn collect_select_objects(stmt: &SelectStmt, out: &mut Vec<String>) {
    if let Some(from) = &stmt.from {
        collect_table_ref_objects(&from.base, out);
        for join in &from.joins {
            collect_table_ref_objects(&join.table, out);
            if let Some(on) = &join.on {
                collect_expr_objects(on, out);
            }
        }
    }
    for item in &stmt.projections {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr_objects(expr, out);
        }
    }
    if let Some(w) = &stmt.where_clause {
        collect_expr_objects(w, out);
    }
    for g in &stmt.group_by {
        collect_expr_objects(g, out);
    }
    if let Some(h) = &stmt.having {
        collect_expr_objects(h, out);
    }
    for arm in &stmt.unions {
        collect_select_objects(&arm.select, out);
    }
    for o in &stmt.order_by {
        collect_expr_objects(&o.expr, out);
    }
    if let Some(l) = &stmt.limit {
        collect_expr_objects(l, out);
    }
    if let Some(o) = &stmt.offset {
        collect_expr_objects(o, out);
    }
}

fn collect_table_ref_objects(tref: &TableRef, out: &mut Vec<String>) {
    match &tref.source {
        TableSource::Named(n) => out.push(n.to_ascii_lowercase()),
        TableSource::Subquery(sub) => collect_select_objects(sub, out),
    }
}

fn collect_expr_objects(e: &Expr, out: &mut Vec<String>) {
    // `Expr::walk` deliberately does not descend into subqueries, so
    // handle those variants here and recurse into their SELECT bodies.
    e.walk(&mut |node| match node {
        Expr::InSubquery { subquery, .. }
        | Expr::Exists { subquery, .. }
        | Expr::ScalarSubquery(subquery) => collect_select_objects(subquery, out),
        Expr::Function { name, args, .. } if name.eq_ignore_ascii_case("NEXTVAL") => {
            if let Some(Expr::Literal(Value::Text(seq))) = args.first() {
                out.push(seq.to_ascii_lowercase());
            }
        }
        _ => {}
    });
}

/// `SELECT` statement (also used as subquery).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// `UNION [ALL]` arms applied left to right; `ORDER BY`/`LIMIT`
    /// below then apply to the combined result.
    pub unions: Vec<UnionArm>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

/// One `UNION [ALL] <select-core>` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionArm {
    /// `UNION ALL` keeps duplicates; plain `UNION` dedupes the
    /// accumulated result.
    pub all: bool,
    pub select: Box<SelectStmt>,
}

/// One projection in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// `FROM base [JOIN …]*`
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub source: TableSource,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in the row namespace.
    pub fn binding_name(&self) -> Option<&str> {
        match (&self.alias, &self.source) {
            (Some(a), _) => Some(a),
            (None, TableSource::Named(n)) => Some(n),
            (None, TableSource::Subquery(_)) => None,
        }
    }
}

/// What a [`TableRef`] points at.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named catalog table.
    Named(String),
    /// A derived table: `(SELECT …) alias`.
    Subquery(Box<SelectStmt>),
}

/// One `JOIN` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    /// `ON` predicate; `None` only for `CROSS JOIN`.
    pub on: Option<Expr>,
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    /// Explicit column list, if given.
    pub columns: Option<Vec<String>>,
    pub source: InsertSource,
}

/// The row source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)`
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …`
    Select(Box<SelectStmt>),
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    pub default: Option<Expr>,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    pub name: String,
    pub if_not_exists: bool,
    /// Temporary tables are dropped when their owning connection closes;
    /// BIS result-set tables build on this.
    pub temporary: bool,
    pub columns: Vec<ColumnDef>,
}

/// `CREATE PROCEDURE name(p1, …) AS BEGIN stmt; … END`.
///
/// Procedure bodies reference their formal parameters as `:name`. The last
/// `SELECT`/`CALL` in the body, if any, becomes the procedure's result set —
/// this is what the paper's *Stored Procedure Pattern* consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateProcedureStmt {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Statement>,
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Column reference, optionally qualified: `t.a` or `a`.
    Column { table: Option<String>, name: String },
    /// `?` host parameter, numbered left-to-right from 0.
    Param(usize),
    /// `:name` named parameter (procedure bodies).
    NamedParam(String),
    /// Unary operator.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Binary operator.
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (e1, e2, …)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)` — uncorrelated.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)` — uncorrelated.
    Exists {
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `(SELECT single_value)` — uncorrelated scalar subquery.
    ScalarSubquery(Box<SelectStmt>),
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    /// Function call — scalar (`UPPER`, `ABS`, …) or aggregate
    /// (`SUM`, `COUNT`, …; aggregates are recognized by name during
    /// execution). `COUNT(*)` is encoded as `Function { name: "COUNT",
    /// args: [], .. }` with `star: true`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
}

impl Expr {
    /// Convenience: column reference without table qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Convenience: literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Literal(_)
            | Expr::Column { .. }
            | Expr::Param(_)
            | Expr::NamedParam(_)
            | Expr::Exists { .. }
            | Expr::ScalarSubquery(_) => {}
        }
    }

    /// Does evaluating this expression run a subquery? Subqueries
    /// re-enter the catalog's table map, so the fast single-table DML
    /// path (which evaluates while holding a table guard) must refuse
    /// statements containing one.
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)
            ) {
                found = true;
            }
        });
        found
    }

    /// Does this expression (not descending into subqueries) contain an
    /// aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if crate::expr::is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinOp {
    /// Human-readable operator spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_classification() {
        let s = Statement::Begin;
        assert!(!s.returns_rows());
        assert!(!s.is_ddl());
        let c = Statement::DropTable {
            name: "t".into(),
            if_exists: true,
        };
        assert!(c.is_ddl());
        assert_eq!(c.verb(), "DROP TABLE");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinOp::Add,
            right: Box::new(Expr::Function {
                name: "ABS".into(),
                args: vec![Expr::lit(-3i64)],
                distinct: false,
                star: false,
            }),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function {
            name: "SUM".into(),
            args: vec![Expr::col("q")],
            distinct: false,
            star: false,
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("q").contains_aggregate());
    }
}
