//! Page stores, the fault-injected pager, and the paged heap-file
//! engine behind [`crate::Database::open_paged`].
//!
//! ## Layering
//!
//! ```text
//! PagedEngine        epochs, directory, checkpoint, torn-page repair
//!   └─ BufferPool    clock eviction, pinning, steal/no-force writeback
//!        └─ Pager    seeded disk faults (PageFault) applied per I/O
//!             └─ PageStore   MemPageStore / FilePageStore
//! ```
//!
//! ## On-disk layout (ping-pong metadata)
//!
//! Pages 0 and 1 are the two metadata slots. A checkpoint writes a
//! complete new *page epoch* — data pages for dirty tables, then
//! directory pages, then one metadata page into the slot the previous
//! epoch did **not** use (`epoch % 2`) — each stage synced before the
//! next. The metadata write is the atomic flip: a crash anywhere before
//! it leaves the old slot's epoch fully intact, and a torn metadata
//! write corrupts only the slot being written, so open always finds a
//! checksum-valid epoch to fall back to.
//!
//! New pages are allocated outside the live-page sets of the **two**
//! newest epochs, and the WAL keeps every record after the *previous*
//! anchor. That two-window retention is what makes torn-page repair
//! possible: a checksum-failing page in the current epoch is rebuilt
//! from the previous epoch's image of its table plus the committed WAL
//! ops between the two anchors — instead of failing the whole database.
//!
//! ## WAL ordering
//!
//! Checkpoints are quiesced (no open or prepared transactions), so the
//! anchor LSN is a clean point: every transaction on or before it is
//! terminated. Dirty pages are stamped with the anchor LSN and the
//! buffer pool refuses to write any page whose LSN is past the WAL's
//! flush point — write-ahead, enforced rather than assumed.

use std::collections::HashSet;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::bufferpool::BufferPool;
use crate::catalog::{Catalog, Sequence};
use crate::error::{SqlError, SqlResult};
use crate::fault::{crashed_error, FaultInjector, PageFault};
use crate::page::{pack_stream, PageBuilder, PageKind, PageView, PAGE_SIZE};
use crate::schema::TableSchema;
use crate::storage::{Row, RowId};
use crate::sync::Mutex;
use crate::wal::{self, IndexDef, Reader, ScannedLog, TableImage, WalOp, WalRecord};

// ---------------------------------------------------------------- stores

/// Where page bytes live. `write_page` accepts a *prefix* of a page
/// (≤ [`PAGE_SIZE`] bytes, written at the page's start, leaving whatever
/// was beyond it untouched) — that is the physical primitive torn and
/// partial writes are modelled with. Reads always return a full page;
/// space never written reads as zeros, exactly like a sparse file.
pub trait PageStore: std::fmt::Debug + Send + Sync {
    /// Read page `page_no` ([`PAGE_SIZE`] bytes).
    fn read_page(&self, page_no: u64) -> SqlResult<Vec<u8>>;
    /// Write `bytes` (≤ [`PAGE_SIZE`]) at the start of page `page_no`.
    fn write_page(&self, page_no: u64, bytes: &[u8]) -> SqlResult<()>;
    /// Make every prior write durable.
    fn sync(&self) -> SqlResult<()>;
    /// Number of (possibly partial) pages the store currently holds.
    fn page_count(&self) -> SqlResult<u64>;
}

fn page_io_err(e: std::io::Error) -> SqlError {
    // Same policy as the WAL's store: disk trouble (ENOSPC, EIO) is
    // environmental and retryable, not a logic bug.
    SqlError::Transient(format!("page io: {e}"))
}

fn oversized(len: usize) -> SqlError {
    SqlError::Runtime(format!(
        "page store: write of {len} bytes exceeds page size"
    ))
}

/// In-memory page store. Clones share the same buffer (mirroring
/// [`crate::MemLogStore`]), so a test can keep a handle to the "disk"
/// across simulated process crashes — and reach past the pager to plant
/// at-rest corruption.
#[derive(Debug, Clone, Default)]
pub struct MemPageStore {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemPageStore {
    /// Fresh, empty store.
    pub fn new() -> MemPageStore {
        MemPageStore::default()
    }

    /// Total bytes written so far (partial tail pages included).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Is the store untouched?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flip one bit of a stored page in place — at-rest corruption, as a
    /// decaying disk would produce it. No-op if the byte was never
    /// written.
    pub fn flip_bit(&self, page_no: u64, bit: usize) {
        let mut buf = self.buf.lock();
        let at = page_no as usize * PAGE_SIZE + bit / 8;
        if let Some(byte) = buf.get_mut(at) {
            *byte ^= 1 << (bit % 8);
        }
    }
}

impl PageStore for MemPageStore {
    fn read_page(&self, page_no: u64) -> SqlResult<Vec<u8>> {
        let buf = self.buf.lock();
        let start = page_no as usize * PAGE_SIZE;
        let mut out = vec![0u8; PAGE_SIZE];
        if start < buf.len() {
            let n = (buf.len() - start).min(PAGE_SIZE);
            out[..n].copy_from_slice(&buf[start..start + n]);
        }
        Ok(out)
    }

    fn write_page(&self, page_no: u64, bytes: &[u8]) -> SqlResult<()> {
        if bytes.len() > PAGE_SIZE {
            return Err(oversized(bytes.len()));
        }
        let mut buf = self.buf.lock();
        let start = page_no as usize * PAGE_SIZE;
        if buf.len() < start + bytes.len() {
            buf.resize(start + bytes.len(), 0);
        }
        buf[start..start + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> SqlResult<()> {
        Ok(())
    }

    fn page_count(&self) -> SqlResult<u64> {
        Ok(self.len().div_ceil(PAGE_SIZE) as u64)
    }
}

/// File-backed page store. Plain positioned I/O through a fresh handle
/// per call (portable; the engine's access pattern is checkpoint-batched
/// so handle reuse would buy nothing), `sync_data` on [`PageStore::sync`].
#[derive(Debug)]
pub struct FilePageStore {
    path: std::path::PathBuf,
}

impl FilePageStore {
    /// Store backed by the given path (created on first write).
    pub fn new(path: impl Into<std::path::PathBuf>) -> FilePageStore {
        FilePageStore { path: path.into() }
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl PageStore for FilePageStore {
    fn read_page(&self, page_no: u64) -> SqlResult<Vec<u8>> {
        let mut out = vec![0u8; PAGE_SIZE];
        let mut f = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(page_io_err(e)),
        };
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
            .map_err(page_io_err)?;
        let mut filled = 0usize;
        while filled < PAGE_SIZE {
            match f.read(&mut out[filled..]).map_err(page_io_err)? {
                0 => break, // EOF: the rest stays zeroed
                n => filled += n,
            }
        }
        Ok(out)
    }

    fn write_page(&self, page_no: u64, bytes: &[u8]) -> SqlResult<()> {
        if bytes.len() > PAGE_SIZE {
            return Err(oversized(bytes.len()));
        }
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)
            .map_err(page_io_err)?;
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
            .map_err(page_io_err)?;
        f.write_all(bytes).map_err(page_io_err)
    }

    fn sync(&self) -> SqlResult<()> {
        match std::fs::File::open(&self.path) {
            Ok(f) => f.sync_data().map_err(page_io_err),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(page_io_err(e)),
        }
    }

    fn page_count(&self) -> SqlResult<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len().div_ceil(PAGE_SIZE as u64)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(page_io_err(e)),
        }
    }
}

// ----------------------------------------------------------------- pager

/// The fault-application layer between the buffer pool and a
/// [`PageStore`]. Every read and write consults the installed
/// [`FaultInjector`] (if any) and applies whichever scripted
/// [`PageFault`] is due at this I/O index — the page-level analogue of
/// the statement-level fault gate in `db.rs`.
#[derive(Debug)]
pub struct Pager {
    store: Arc<dyn PageStore>,
    injector: Mutex<Option<Arc<FaultInjector>>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl Pager {
    /// Pager over `store`, with no faults installed.
    pub fn new(store: Arc<dyn PageStore>) -> Pager {
        Pager {
            store,
            injector: Mutex::new(None),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> Arc<dyn PageStore> {
        Arc::clone(&self.store)
    }

    /// Install (or clear) the fault injector page I/O runs through.
    pub fn set_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.lock() = injector;
    }

    /// Page reads issued (faulted ones included).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Page writes issued (faulted ones included).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Read one page, applying any scripted read fault due at this index.
    pub fn read_page(&self, page_no: u64) -> SqlResult<Vec<u8>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let injector = self.injector.lock().clone();
        if let Some(inj) = &injector {
            if inj.frozen() {
                return Err(crashed_error());
            }
            if let Some(fired) = inj.on_page_read() {
                match fired.fault {
                    PageFault::IoError => {
                        inj.note_injected();
                        return Err(SqlError::Transient(format!(
                            "page io: injected read error on page {page_no}"
                        )));
                    }
                    PageFault::SlowIo { ticks } => {
                        inj.advance_ticks(ticks);
                        inj.note_injected();
                    }
                    PageFault::ReadBitFlip => {
                        inj.note_injected();
                        let mut bytes = self.store.read_page(page_no)?;
                        let bit = fired.draw as usize % (bytes.len() * 8).max(1);
                        bytes[bit / 8] ^= 1 << (bit % 8);
                        return Ok(bytes);
                    }
                    // Write-side faults scheduled on the read index are
                    // consumed without effect.
                    PageFault::TornWrite | PageFault::PartialWrite => {}
                }
            }
        }
        self.store.read_page(page_no)
    }

    /// Write one page, applying any scripted write fault due at this
    /// index.
    pub fn write_page(&self, page_no: u64, bytes: &[u8]) -> SqlResult<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let injector = self.injector.lock().clone();
        if let Some(inj) = &injector {
            if inj.frozen() {
                return Err(crashed_error());
            }
            if let Some(fired) = inj.on_page_write() {
                match fired.fault {
                    PageFault::TornWrite => {
                        // Half the page lands, then the process dies.
                        let cut = (bytes.len() / 2).max(1).min(bytes.len());
                        let _ = self.store.write_page(page_no, &bytes[..cut]);
                        inj.deliver_crash();
                        return Err(crashed_error());
                    }
                    PageFault::PartialWrite => {
                        // Half the page lands and the write *reports
                        // success* — latent corruption the checksum must
                        // catch at next read.
                        inj.note_injected();
                        let cut = (bytes.len() / 2).max(1).min(bytes.len());
                        return self.store.write_page(page_no, &bytes[..cut]);
                    }
                    PageFault::ReadBitFlip => {
                        // On the write side: one bit decays at rest.
                        inj.note_injected();
                        let mut corrupted = bytes.to_vec();
                        let bit = fired.draw as usize % (corrupted.len() * 8).max(1);
                        corrupted[bit / 8] ^= 1 << (bit % 8);
                        return self.store.write_page(page_no, &corrupted);
                    }
                    PageFault::IoError => {
                        inj.note_injected();
                        return Err(SqlError::Transient(format!(
                            "page io: injected write error on page {page_no}"
                        )));
                    }
                    PageFault::SlowIo { ticks } => {
                        inj.advance_ticks(ticks);
                        inj.note_injected();
                    }
                }
            }
        }
        self.store.write_page(page_no, bytes)
    }

    /// Sync the store (refused once the injector has delivered a crash).
    pub fn sync(&self) -> SqlResult<()> {
        if let Some(inj) = self.injector.lock().as_ref() {
            if inj.frozen() {
                return Err(crashed_error());
            }
        }
        self.store.sync()
    }
}

// ---------------------------------------------------------------- codecs

fn corrupt(detail: impl Into<String>) -> SqlError {
    SqlError::Runtime(format!("paged: {}", detail.into()))
}

/// Serialize a table's rows into the byte stream its data pages carry.
fn encode_rows(rows: &[(RowId, Row)]) -> Vec<u8> {
    let mut buf = Vec::new();
    wal::put_u32(&mut buf, rows.len() as u32);
    for (id, row) in rows {
        wal::put_u64(&mut buf, *id);
        wal::put_row(&mut buf, row);
    }
    buf
}

fn decode_rows(bytes: &[u8]) -> SqlResult<Vec<(RowId, Row)>> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u64()?;
        rows.push((id, r.row()?));
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after row stream"));
    }
    Ok(rows)
}

/// One table's entry in an epoch's directory: everything needed to
/// rebuild its [`TableImage`] except the row bytes, plus the pages that
/// hold them.
#[derive(Debug, Clone)]
struct TableEntry {
    schema: TableSchema,
    next_row_id: RowId,
    indexes: Vec<IndexDef>,
    /// Exact byte length of the packed row stream.
    stream_len: u64,
    /// Data pages, in stream order.
    pages: Vec<u64>,
}

fn encode_dir(entries: &[TableEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    wal::put_u32(&mut buf, entries.len() as u32);
    for e in entries {
        wal::put_schema(&mut buf, &e.schema);
        wal::put_u64(&mut buf, e.next_row_id);
        wal::put_u32(&mut buf, e.indexes.len() as u32);
        for def in &e.indexes {
            wal::put_index_def(&mut buf, def);
        }
        wal::put_u64(&mut buf, e.stream_len);
        wal::put_u32(&mut buf, e.pages.len() as u32);
        for &p in &e.pages {
            wal::put_u64(&mut buf, p);
        }
    }
    buf
}

fn decode_dir(bytes: &[u8]) -> SqlResult<Vec<TableEntry>> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let schema = r.schema()?;
        let next_row_id = r.u64()?;
        let n_idx = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(n_idx);
        for _ in 0..n_idx {
            indexes.push(r.index_def()?);
        }
        let stream_len = r.u64()?;
        let n_pages = r.u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(r.u64()?);
        }
        entries.push(TableEntry {
            schema,
            next_row_id,
            indexes,
            stream_len,
            pages,
        });
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after directory"));
    }
    Ok(entries)
}

/// One epoch's metadata cell: where its directory lives and which WAL
/// position (`anchor_lsn`) its page images are consistent with.
#[derive(Debug, Clone)]
struct Meta {
    page_epoch: u64,
    catalog_epoch: u64,
    anchor_lsn: u64,
    /// `(name, current, increment)` per sequence, sorted by name.
    sequences: Vec<(String, i64, i64)>,
    dir_stream_len: u64,
    dir_pages: Vec<u64>,
}

fn encode_meta_page(meta: &Meta, slot: u64) -> SqlResult<Vec<u8>> {
    let mut cell = Vec::new();
    wal::put_u64(&mut cell, meta.page_epoch);
    wal::put_u64(&mut cell, meta.catalog_epoch);
    wal::put_u64(&mut cell, meta.anchor_lsn);
    wal::put_sequences(&mut cell, &meta.sequences);
    wal::put_u64(&mut cell, meta.dir_stream_len);
    wal::put_u32(&mut cell, meta.dir_pages.len() as u32);
    for &p in &meta.dir_pages {
        wal::put_u64(&mut cell, p);
    }
    let mut builder = PageBuilder::new(PageKind::Meta, slot);
    if !builder.try_push(&cell) {
        return Err(corrupt("checkpoint metadata exceeds one page"));
    }
    Ok(builder.finalize(meta.page_epoch, meta.anchor_lsn))
}

fn decode_meta_page(bytes: &[u8], slot: u64) -> SqlResult<Meta> {
    let view = PageView::parse(bytes)?;
    if view.kind() != PageKind::Meta {
        return Err(corrupt(format!("slot {slot} is not a metadata page")));
    }
    if view.page_no() != slot {
        return Err(corrupt(format!(
            "metadata page stamped {} read from slot {slot}",
            view.page_no()
        )));
    }
    if view.cell_count() != 1 {
        return Err(corrupt("metadata page must hold exactly one cell"));
    }
    let mut r = Reader::new(view.cell(0));
    let page_epoch = r.u64()?;
    let catalog_epoch = r.u64()?;
    let anchor_lsn = r.u64()?;
    let sequences = r.sequences()?;
    let dir_stream_len = r.u64()?;
    let n = r.u32()? as usize;
    let mut dir_pages = Vec::with_capacity(n);
    for _ in 0..n {
        dir_pages.push(r.u64()?);
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after metadata cell"));
    }
    Ok(Meta {
        page_epoch,
        catalog_epoch,
        anchor_lsn,
        sequences,
        dir_stream_len,
        dir_pages,
    })
}

// ---------------------------------------------------------------- engine

/// The table touched by a redo op, if any (sequence ops touch none).
fn op_table(op: &WalOp) -> Option<&str> {
    match op {
        WalOp::Insert { table, .. }
        | WalOp::Update { table, .. }
        | WalOp::Delete { table, .. }
        | WalOp::CreateIndex { table, .. }
        | WalOp::DropIndex { table, .. } => Some(table),
        WalOp::CreateTable { schema } => Some(&schema.name),
        WalOp::DropTable { image } => Some(&image.schema.name),
        WalOp::CreateSequence { .. } | WalOp::DropSequence { .. } => None,
    }
}

/// Lowercased names of tables touched by ops after `after_lsn` — the
/// dirty set an incremental checkpoint must rewrite. Derived from the
/// WAL tail instead of hot-path instrumentation: every mutation is
/// logged anyway, so the log *is* the dirty tracking.
pub fn dirty_tables(scanned: &ScannedLog, after_lsn: u64) -> HashSet<String> {
    let mut out = HashSet::new();
    for (lsn, rec) in &scanned.records {
        if *lsn <= after_lsn {
            continue;
        }
        if let WalRecord::Op { op, .. } = rec {
            if let Some(t) = op_table(op) {
                out.insert(t.to_lowercase());
            }
        }
    }
    out
}

/// Page-number allocator for one checkpoint: monotone from 2, skipping
/// every page the two newest epochs still reference.
struct PageAlloc {
    forbidden: HashSet<u64>,
    next: u64,
}

impl PageAlloc {
    fn next_page(&mut self) -> u64 {
        while self.forbidden.contains(&self.next) {
            self.next += 1;
        }
        let n = self.next;
        self.next += 1;
        n
    }
}

#[derive(Debug, Clone)]
struct Epoch {
    meta: Meta,
    dir: Vec<TableEntry>,
}

#[derive(Debug, Default)]
struct EngineState {
    /// Newest durable epoch (`None` = fresh store, nothing checkpointed).
    cur: Option<Epoch>,
    /// The epoch before it — the repair fallback.
    prev: Option<Epoch>,
    /// Lowercased names of tables rebuilt by repair since the last
    /// checkpoint: force-dirty, so the next checkpoint rewrites their
    /// extents from the healthy in-memory image.
    repaired: HashSet<String>,
}

/// The paged storage engine: owns the buffer pool and the epoch state,
/// loads the base catalog at open (repairing corrupt pages), and writes
/// incremental checkpoints.
#[derive(Debug)]
pub struct PagedEngine {
    pool: BufferPool,
    state: Mutex<EngineState>,
    pages_repaired: AtomicU64,
}

/// What [`PagedEngine::load_base`] recovered from the page store: the
/// catalog image at the newest intact anchor, ready for
/// [`wal::replay_onto`] to roll the WAL tail forward over.
#[derive(Debug)]
pub struct BaseLoad {
    pub catalog: Catalog,
    /// Catalog epoch at the anchor (floor for the replayed epoch).
    pub catalog_epoch: u64,
    /// WAL position the images are consistent with; replay starts here.
    pub anchor_lsn: u64,
}

impl PagedEngine {
    /// Open a page store: read both metadata slots, adopt the newest
    /// checksum-valid epoch, and keep the one before it for repair. A
    /// corrupt *directory* in the newest epoch rolls the whole store
    /// back one epoch (the WAL tail re-derives everything since); both
    /// slots corrupt on a non-empty store is fatal.
    pub fn open(store: Arc<dyn PageStore>, pool_pages: usize) -> SqlResult<PagedEngine> {
        let fresh = store.page_count()? == 0;
        let engine = PagedEngine {
            pool: BufferPool::new(Pager::new(store), pool_pages),
            state: Mutex::new(EngineState::default()),
            pages_repaired: AtomicU64::new(0),
        };
        let mut metas = Vec::new();
        for slot in 0..2u64 {
            if let Ok(bytes) = engine.pool.get(slot) {
                if let Ok(meta) = decode_meta_page(&bytes, slot) {
                    metas.push(meta);
                }
            }
        }
        if metas.is_empty() {
            if fresh {
                return Ok(engine);
            }
            return Err(corrupt(
                "both metadata slots corrupt — no consistent epoch to open",
            ));
        }
        metas.sort_by_key(|m| m.page_epoch);
        let cur_meta = metas.pop().expect("non-empty");
        let prev = metas.pop().and_then(|m| {
            // Best-effort: a broken previous epoch only disables repair.
            engine.load_dir(&m).ok().map(|dir| Epoch { meta: m, dir })
        });
        {
            let mut st = engine.state.lock();
            match engine.load_dir(&cur_meta) {
                Ok(dir) => {
                    st.cur = Some(Epoch {
                        meta: cur_meta,
                        dir,
                    });
                    st.prev = prev;
                }
                Err(e) => {
                    // The newest epoch's directory is unreadable: fall
                    // back to the previous epoch wholesale. Its tables
                    // are all marked repaired so the next checkpoint
                    // rewrites every extent.
                    let Some(p) = prev else {
                        return Err(corrupt(format!(
                            "epoch {} directory corrupt and no previous epoch survives: {e}",
                            cur_meta.page_epoch
                        )));
                    };
                    let bad = cur_meta
                        .dir_pages
                        .iter()
                        .filter(|&&no| !engine.page_ok(PageKind::Directory, no))
                        .count()
                        .max(1);
                    engine
                        .pages_repaired
                        .fetch_add(bad as u64, Ordering::Relaxed);
                    st.repaired = p.dir.iter().map(|t| t.schema.name.to_lowercase()).collect();
                    st.cur = Some(p);
                    st.prev = None;
                }
            }
        }
        Ok(engine)
    }

    /// The buffer pool (stats and flush-LSN live there).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Install (or clear) the fault injector on the underlying pager.
    pub fn set_injector(&self, injector: Option<Arc<FaultInjector>>) {
        self.pool.pager().set_injector(injector);
    }

    /// Pages detected corrupt and rebuilt (directory rollbacks included).
    pub fn pages_repaired(&self) -> u64 {
        self.pages_repaired.load(Ordering::Relaxed)
    }

    /// Anchor LSN of the current epoch (0 if nothing checkpointed yet).
    pub fn anchor(&self) -> u64 {
        self.state
            .lock()
            .cur
            .as_ref()
            .map_or(0, |e| e.meta.anchor_lsn)
    }

    /// Page epoch of the current checkpoint (0 = fresh store).
    pub fn page_epoch(&self) -> u64 {
        self.state
            .lock()
            .cur
            .as_ref()
            .map_or(0, |e| e.meta.page_epoch)
    }

    /// WAL position log truncation must preserve records *after*: the
    /// previous epoch's anchor, so the repair window stays on the log.
    pub fn retain_after(&self) -> u64 {
        self.state
            .lock()
            .prev
            .as_ref()
            .map_or(0, |e| e.meta.anchor_lsn)
    }

    fn page_ok(&self, kind: PageKind, page_no: u64) -> bool {
        self.pool.get(page_no).is_ok_and(|bytes| {
            PageView::parse(&bytes).is_ok_and(|v| v.kind() == kind && v.page_no() == page_no)
        })
    }

    /// Read and reassemble one packed stream, verifying every page.
    fn read_stream(&self, kind: PageKind, pages: &[u64], stream_len: u64) -> SqlResult<Vec<u8>> {
        let mut out = Vec::with_capacity(stream_len as usize);
        for &no in pages {
            let bytes = self.pool.get(no)?;
            let view = PageView::parse(&bytes)?;
            if view.kind() != kind {
                return Err(corrupt(format!(
                    "page {no}: expected {kind:?}, found {:?}",
                    view.kind()
                )));
            }
            if view.page_no() != no {
                return Err(corrupt(format!(
                    "page stamped {} read from slot {no} (misdirected write)",
                    view.page_no()
                )));
            }
            view.concat_cells(&mut out);
        }
        if out.len() as u64 != stream_len {
            return Err(corrupt(format!(
                "stream reassembled to {} bytes, directory says {stream_len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn load_dir(&self, meta: &Meta) -> SqlResult<Vec<TableEntry>> {
        let stream = self.read_stream(PageKind::Directory, &meta.dir_pages, meta.dir_stream_len)?;
        decode_dir(&stream)
    }

    fn table_image(&self, entry: &TableEntry) -> SqlResult<TableImage> {
        let stream = self.read_stream(PageKind::Data, &entry.pages, entry.stream_len)?;
        Ok(TableImage {
            schema: entry.schema.clone(),
            next_row_id: entry.next_row_id,
            rows: decode_rows(&stream)?,
            indexes: entry.indexes.clone(),
        })
    }

    /// Rebuild one corrupt table: previous epoch's image + the committed
    /// WAL ops between the two anchors, replayed on a scratch catalog.
    /// Every transaction in that window is terminated (checkpoints are
    /// quiesced), so "committed" is decidable from the log alone, and
    /// redo after-images are absolute — replaying only committed ops in
    /// LSN order reproduces the anchor state exactly.
    fn repair_table(
        &self,
        entry: &TableEntry,
        prev: Option<&Epoch>,
        cur_epoch: u64,
        cur_anchor: u64,
        scanned: &ScannedLog,
    ) -> SqlResult<TableImage> {
        let name = &entry.schema.name;
        let mut scratch = Catalog::new();
        let window_lo = match prev {
            Some(p) => {
                if let Some(pe) = p
                    .dir
                    .iter()
                    .find(|e| e.schema.name.eq_ignore_ascii_case(name))
                {
                    let image = self.table_image(pe).map_err(|e| {
                        corrupt(format!(
                            "repair failed: table '{name}' corrupt in epoch {cur_epoch} AND epoch {}: {e}",
                            p.meta.page_epoch
                        ))
                    })?;
                    wal::install_image(&mut scratch, &image);
                }
                p.meta.anchor_lsn
            }
            // Epoch 1 has no predecessor by construction: the whole
            // history is still on the WAL, so rebuild from empty.
            None if cur_epoch <= 1 => 0,
            None => {
                return Err(corrupt(format!(
                    "repair failed: table '{name}' corrupt in epoch {cur_epoch} and no previous epoch survives"
                )))
            }
        };
        let committed: HashSet<u64> = scanned
            .records
            .iter()
            .filter_map(|(lsn, r)| match r {
                WalRecord::Commit { txn, .. } if *lsn <= cur_anchor => Some(*txn),
                _ => None,
            })
            .collect();
        for (lsn, rec) in &scanned.records {
            if *lsn <= window_lo || *lsn > cur_anchor {
                continue;
            }
            if let WalRecord::Op { txn, op } = rec {
                if committed.contains(txn)
                    && op_table(op).is_some_and(|t| t.eq_ignore_ascii_case(name))
                {
                    wal::apply_redo(&mut scratch, op);
                }
            }
        }
        let table = scratch.table(name).map_err(|_| {
            corrupt(format!(
                "repair failed: WAL window reconstructs no table '{name}'"
            ))
        })?;
        Ok(wal::image_of(&scratch, &table))
    }

    /// Load the base catalog for recovery: install every table of the
    /// current epoch, rebuilding any whose pages fail verification from
    /// the previous epoch + the WAL window between the anchors.
    pub fn load_base(&self, scanned: &ScannedLog) -> SqlResult<BaseLoad> {
        let st = self.state.lock();
        let Some(cur) = st.cur.clone() else {
            return Ok(BaseLoad {
                catalog: Catalog::new(),
                catalog_epoch: 0,
                anchor_lsn: 0,
            });
        };
        let prev = st.prev.clone();
        drop(st);
        let mut catalog = Catalog::new();
        let mut repaired_now = Vec::new();
        for entry in &cur.dir {
            let image = match self.table_image(entry) {
                Ok(image) => image,
                Err(_) => {
                    let image = self.repair_table(
                        entry,
                        prev.as_ref(),
                        cur.meta.page_epoch,
                        cur.meta.anchor_lsn,
                        scanned,
                    )?;
                    let bad = entry
                        .pages
                        .iter()
                        .filter(|&&no| !self.page_ok(PageKind::Data, no))
                        .count()
                        .max(1);
                    self.pages_repaired.fetch_add(bad as u64, Ordering::Relaxed);
                    repaired_now.push(entry.schema.name.to_lowercase());
                    image
                }
            };
            wal::install_image(&mut catalog, &image);
        }
        for (name, current, increment) in &cur.meta.sequences {
            let _ = catalog.add_sequence(Sequence::new(name.clone(), *current, *increment));
        }
        self.state.lock().repaired.extend(repaired_now);
        Ok(BaseLoad {
            catalog,
            catalog_epoch: cur.meta.catalog_epoch,
            anchor_lsn: cur.meta.anchor_lsn,
        })
    }

    /// Write a checkpoint epoch: data pages for dirty tables (clean ones
    /// keep their extents), directory, then the metadata flip — each
    /// stage synced before the next. `partial` models a crash after the
    /// data-page stage: some new-epoch pages land, no flip, no state
    /// change; the abandoned pages are unreferenced garbage the next
    /// successful checkpoint may reuse.
    ///
    /// `anchor_lsn` must be the WAL's last LSN under checkpoint
    /// quiescence, already durable (appends sync) — it becomes both the
    /// page LSN of every written page and the pool's flush gate.
    pub fn checkpoint(
        &self,
        catalog: &Catalog,
        anchor_lsn: u64,
        dirty: &HashSet<String>,
        partial: bool,
    ) -> SqlResult<()> {
        let mut st = self.state.lock();
        let new_epoch = st.cur.as_ref().map_or(0, |e| e.meta.page_epoch) + 1;
        let mut forbidden: HashSet<u64> = [0u64, 1u64].into_iter().collect();
        for ep in st.cur.iter().chain(st.prev.iter()) {
            forbidden.extend(ep.meta.dir_pages.iter().copied());
            for e in &ep.dir {
                forbidden.extend(e.pages.iter().copied());
            }
        }
        let mut alloc = PageAlloc { forbidden, next: 2 };
        // The WAL through `anchor_lsn` is durable; open the gate first so
        // steal evictions during the put loop pass the write-ahead check.
        self.pool.set_flush_lsn(anchor_lsn);

        let mut names = catalog.table_names();
        names.sort(); // deterministic page layout
        let mut new_dir = Vec::with_capacity(names.len());
        let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
        for name in &names {
            let table = catalog.table(name)?;
            if table.schema.temporary {
                continue;
            }
            let lname = name.to_lowercase();
            if !dirty.contains(&lname) && !st.repaired.contains(&lname) {
                if let Some(e) = st.cur.as_ref().and_then(|c| {
                    c.dir
                        .iter()
                        .find(|e| e.schema.name.eq_ignore_ascii_case(name))
                }) {
                    new_dir.push(e.clone());
                    continue;
                }
            }
            let image = wal::image_of(catalog, &table);
            let stream = encode_rows(&image.rows);
            let pages = pack_stream(PageKind::Data, &stream, new_epoch, anchor_lsn, || {
                alloc.next_page()
            });
            new_dir.push(TableEntry {
                schema: image.schema,
                next_row_id: image.next_row_id,
                indexes: image.indexes,
                stream_len: stream.len() as u64,
                pages: pages.iter().map(|(no, _)| *no).collect(),
            });
            pending.extend(pages);
        }

        if partial {
            // Death mid-checkpoint: roughly half the new data pages
            // reach the store, nothing is flipped, nothing mutates.
            let cut = pending.len().div_ceil(2).min(pending.len());
            for (no, bytes) in pending.into_iter().take(cut) {
                self.pool.put(no, bytes, anchor_lsn)?;
            }
            return self.pool.flush_all();
        }

        for (no, bytes) in pending {
            self.pool.put(no, bytes, anchor_lsn)?;
        }
        self.pool.flush_all()?; // data pages durable

        let dir_stream = encode_dir(&new_dir);
        let dir_pages = pack_stream(
            PageKind::Directory,
            &dir_stream,
            new_epoch,
            anchor_lsn,
            || alloc.next_page(),
        );
        let meta = Meta {
            page_epoch: new_epoch,
            catalog_epoch: catalog.epoch(),
            anchor_lsn,
            sequences: catalog.sequence_states(),
            dir_stream_len: dir_stream.len() as u64,
            dir_pages: dir_pages.iter().map(|(no, _)| *no).collect(),
        };
        for (no, bytes) in dir_pages {
            self.pool.put(no, bytes, anchor_lsn)?;
        }
        self.pool.flush_all()?; // directory durable

        // The flip: one page into the slot the current epoch does not
        // occupy. Torn here → this slot fails its checksum at open and
        // the old epoch still rules.
        let slot = new_epoch % 2;
        let meta_bytes = encode_meta_page(&meta, slot)?;
        self.pool.put(slot, meta_bytes, anchor_lsn)?;
        self.pool.flush_all()?;

        st.prev = st.cur.take();
        st.cur = Some(Epoch { meta, dir: new_dir });
        st.repaired.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn data_page(no: u64, fill: u8) -> Vec<u8> {
        let mut b = PageBuilder::new(PageKind::Data, no);
        assert!(b.try_push(&[fill; 128]));
        b.finalize(1, 7)
    }

    #[test]
    fn mem_store_roundtrip_and_zero_fill() {
        let store = MemPageStore::new();
        assert_eq!(store.page_count().unwrap(), 0);
        // Unwritten pages read as zeros.
        assert_eq!(store.read_page(3).unwrap(), vec![0u8; PAGE_SIZE]);
        let page = data_page(2, 0xAA);
        store.write_page(2, &page).unwrap();
        assert_eq!(store.read_page(2).unwrap(), page);
        let clone = store.clone();
        assert_eq!(clone.read_page(2).unwrap(), page, "clones share the disk");
    }

    #[test]
    fn file_store_roundtrip_and_sparse_reads() {
        let dir = std::env::temp_dir().join(format!(
            "sqlkernel_pager_test_{}_{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let store = FilePageStore::new(dir.join("pages.db"));
        assert_eq!(store.page_count().unwrap(), 0);
        assert_eq!(store.read_page(0).unwrap(), vec![0u8; PAGE_SIZE]);
        let page = data_page(5, 0x5C);
        store.write_page(5, &page).unwrap();
        store.sync().unwrap();
        assert_eq!(store.read_page(5).unwrap(), page);
        // Pages 0..5 were never written: sparse zeros.
        assert_eq!(store.read_page(1).unwrap(), vec![0u8; PAGE_SIZE]);
        assert_eq!(store.page_count().unwrap(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_error_is_transient_and_consumed() {
        let store = MemPageStore::new();
        store.write_page(0, &data_page(0, 1)).unwrap();
        let pager = Pager::new(Arc::new(store));
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(9).fault_at_page_read(0, PageFault::IoError),
        ));
        pager.set_injector(Some(Arc::clone(&inj)));
        let err = pager.read_page(0).unwrap_err();
        assert!(err.is_transient(), "injected io error must be retryable");
        // Consumed on fire: the retry succeeds.
        assert!(PageView::parse(&pager.read_page(0).unwrap()).is_ok());
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn read_bit_flip_breaks_the_checksum() {
        let store = MemPageStore::new();
        store.write_page(0, &data_page(0, 2)).unwrap();
        let pager = Pager::new(Arc::new(store));
        pager.set_injector(Some(Arc::new(FaultInjector::new(
            FaultPlan::new(11).fault_at_page_read(0, PageFault::ReadBitFlip),
        ))));
        let corrupted = pager.read_page(0).unwrap();
        assert!(
            PageView::parse(&corrupted).is_err(),
            "flip must be detected"
        );
        assert!(PageView::parse(&pager.read_page(0).unwrap()).is_ok());
    }

    #[test]
    fn torn_write_leaves_prefix_and_freezes() {
        let store = MemPageStore::new();
        let pager = Pager::new(Arc::new(store.clone()));
        pager.set_injector(Some(Arc::new(FaultInjector::new(
            FaultPlan::new(13).fault_at_page_write(0, PageFault::TornWrite),
        ))));
        let page = data_page(4, 3);
        let err = pager.write_page(4, &page).unwrap_err();
        assert!(!err.is_transient(), "a torn write is a crash, not a retry");
        // Half the page landed; the checksum catches it.
        let on_disk = store.read_page(4).unwrap();
        assert_eq!(&on_disk[..PAGE_SIZE / 2], &page[..PAGE_SIZE / 2]);
        assert!(PageView::parse(&on_disk).is_err());
        // The process is dead: every further I/O is refused.
        assert!(pager.read_page(0).is_err());
        assert!(pager.sync().is_err());
    }

    #[test]
    fn partial_write_reports_success_but_corrupts_at_rest() {
        let store = MemPageStore::new();
        store.write_page(6, &data_page(6, 0xFF)).unwrap();
        let pager = Pager::new(Arc::new(store.clone()));
        pager.set_injector(Some(Arc::new(FaultInjector::new(
            FaultPlan::new(17).fault_at_page_write(0, PageFault::PartialWrite),
        ))));
        pager.write_page(6, &data_page(6, 0x01)).unwrap(); // "succeeds"
        let on_disk = store.read_page(6).unwrap();
        assert!(
            PageView::parse(&on_disk).is_err(),
            "half new + half old must fail verification"
        );
    }

    #[test]
    fn slow_io_advances_the_virtual_clock() {
        let store = MemPageStore::new();
        store.write_page(0, &data_page(0, 9)).unwrap();
        let pager = Pager::new(Arc::new(store));
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(19).fault_at_page_read(0, PageFault::SlowIo { ticks: 40 }),
        ));
        pager.set_injector(Some(Arc::clone(&inj)));
        let page = pager.read_page(0).unwrap();
        assert!(PageView::parse(&page).is_ok(), "slow, not wrong");
        assert_eq!(inj.ticks(), 40);
    }

    #[test]
    fn page_alloc_skips_forbidden_pages() {
        let mut alloc = PageAlloc {
            forbidden: [0u64, 1, 2, 4, 5].into_iter().collect(),
            next: 2,
        };
        assert_eq!(alloc.next_page(), 3);
        assert_eq!(alloc.next_page(), 6);
        assert_eq!(alloc.next_page(), 7);
    }
}
