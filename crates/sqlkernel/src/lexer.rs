//! Hand-written SQL lexer.
//!
//! Produces a flat `Vec<Token>` ending in [`Token::Eof`]. Comments
//! (`-- line` and `/* block */`) and whitespace are skipped. String
//! literals use single quotes with `''` escaping; identifiers may be
//! double-quoted to preserve case and allow reserved words.

use crate::error::{SqlError, SqlResult};
use crate::token::{is_keyword, Sym, Token};

/// Tokenize `input` into a token stream terminated by [`Token::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlError::Lex(format!(
                            "unterminated block comment at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted_ident(input, i)?;
                tokens.push(Token::Ident(s));
                i = next;
            }
            '?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            ':' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == start {
                    return Err(SqlError::Lex(format!("lone ':' at byte {i}")));
                }
                tokens.push(Token::NamedParam(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if is_keyword(&upper) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            _ => {
                let (sym, next) = lex_symbol(bytes, i)?;
                tokens.push(Token::Symbol(sym));
                i = next;
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> SqlResult<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(SqlError::Lex(format!(
                "unterminated string literal at byte {start}"
            )));
        }
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy a full UTF-8 character, not a byte.
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
}

fn lex_quoted_ident(input: &str, start: usize) -> SqlResult<(String, usize)> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((out, i + 1));
        }
        let ch = input[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    Err(SqlError::Lex(format!(
        "unterminated quoted identifier at byte {start}"
    )))
}

fn lex_number(input: &str, start: usize) -> SqlResult<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), i))
            .map_err(|_| SqlError::Lex(format!("bad float literal '{text}'")))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|_| SqlError::Lex(format!("integer literal '{text}' out of range")))
    }
}

fn lex_symbol(bytes: &[u8], i: usize) -> SqlResult<(Sym, usize)> {
    let two = |a: u8, b: u8| bytes[i] == a && bytes.get(i + 1) == Some(&b);
    if two(b'<', b'=') {
        return Ok((Sym::LtEq, i + 2));
    }
    if two(b'>', b'=') {
        return Ok((Sym::GtEq, i + 2));
    }
    if two(b'<', b'>') {
        return Ok((Sym::NotEq, i + 2));
    }
    if two(b'!', b'=') {
        return Ok((Sym::NotEq, i + 2));
    }
    if two(b'|', b'|') {
        return Ok((Sym::Concat, i + 2));
    }
    let sym = match bytes[i] {
        b'(' => Sym::LParen,
        b')' => Sym::RParen,
        b',' => Sym::Comma,
        b';' => Sym::Semicolon,
        b'.' => Sym::Dot,
        b'*' => Sym::Star,
        b'+' => Sym::Plus,
        b'-' => Sym::Minus,
        b'/' => Sym::Slash,
        b'%' => Sym::Percent,
        b'=' => Sym::Eq,
        b'<' => Sym::Lt,
        b'>' => Sym::Gt,
        other => {
            return Err(SqlError::Lex(format!(
                "unexpected character '{}' at byte {i}",
                other as char
            )))
        }
    };
    Ok((sym, i + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw(s: &str) -> Token {
        Token::Keyword(s.into())
    }
    fn id(s: &str) -> Token {
        Token::Ident(s.into())
    }

    #[test]
    fn lex_simple_select() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert_eq!(
            toks,
            vec![
                kw("SELECT"),
                id("a"),
                Token::Symbol(Sym::Comma),
                id("b"),
                kw("FROM"),
                id("t"),
                kw("WHERE"),
                id("a"),
                Token::Symbol(Sym::GtEq),
                Token::Int(10),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_strings_and_escapes() {
        let toks = lex("'it''s' 'λ'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert_eq!(toks[1], Token::Str("λ".into()));
    }

    #[test]
    fn lex_numbers() {
        let toks = lex("1 2.5 3e2 4.5E-1 7").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Float(2.5));
        assert_eq!(toks[2], Token::Float(300.0));
        assert_eq!(toks[3], Token::Float(0.45));
        assert_eq!(toks[4], Token::Int(7));
    }

    #[test]
    fn lex_comments() {
        let toks = lex("SELECT -- everything\n 1 /* not two\n lines */ + 2").unwrap();
        assert_eq!(
            toks,
            vec![
                kw("SELECT"),
                Token::Int(1),
                Token::Symbol(Sym::Plus),
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lex_params_and_symbols() {
        let toks = lex("a <> ? || b != c").unwrap();
        assert_eq!(toks[1], Token::Symbol(Sym::NotEq));
        assert_eq!(toks[2], Token::Param);
        assert_eq!(toks[3], Token::Symbol(Sym::Concat));
        assert_eq!(toks[5], Token::Symbol(Sym::NotEq));
    }

    #[test]
    fn lex_quoted_identifier_keeps_case_and_reserved_words() {
        let toks = lex("\"Select Me\"").unwrap();
        assert_eq!(toks[0], Token::Ident("Select Me".into()));
    }

    #[test]
    fn lex_keywords_case_insensitive() {
        let toks = lex("select From WHERE").unwrap();
        assert_eq!(toks[0], kw("SELECT"));
        assert_eq!(toks[1], kw("FROM"));
        assert_eq!(toks[2], kw("WHERE"));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("/* oops").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn dot_and_star_tokens() {
        let toks = lex("t.* t.a 1.5").unwrap();
        assert_eq!(toks[0], id("t"));
        assert_eq!(toks[1], Token::Symbol(Sym::Dot));
        assert_eq!(toks[2], Token::Symbol(Sym::Star));
        assert_eq!(toks[3], id("t"));
        assert_eq!(toks[4], Token::Symbol(Sym::Dot));
        assert_eq!(toks[5], id("a"));
        assert_eq!(toks[6], Token::Float(1.5));
    }
}
