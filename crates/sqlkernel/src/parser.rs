//! Recursive-descent SQL parser.
//!
//! Entry points: [`parse_statement`] for a single statement and
//! [`parse_script`] for a semicolon-separated batch (used by stored
//! procedure bodies and the BIS preparation/cleanup statement lists).

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::lex;
use crate::token::{Sym, Token};
use crate::types::{DataType, Value};

/// Parse exactly one statement; trailing semicolons are allowed.
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser::new(tokens);
    let stmt = p.statement()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script into a statement list.
pub fn parse_script(sql: &str) -> SqlResult<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser::new(tokens);
    let mut out = Vec::new();
    p.skip_semicolons();
    while !p.at_eof() {
        out.push(p.statement()?);
        p.skip_semicolons();
    }
    Ok(out)
}

/// Parse a standalone expression (used by tests and by the workflow layers
/// when they synthesize predicates).
pub fn parse_expression(src: &str) -> SqlResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    param_count: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            param_count: 0,
        }
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "unexpected trailing token '{}'",
                self.peek()
            )))
        }
    }

    fn skip_semicolons(&mut self) {
        while matches!(self.peek(), Token::Symbol(Sym::Semicolon)) {
            self.pos += 1;
        }
    }

    /// If the next token is keyword `kw`, consume it and return true.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found '{}'",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Token::Symbol(x) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sym) -> SqlResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected '{s}', found '{}'",
                self.peek()
            )))
        }
    }

    /// Consume an identifier (quoted identifiers already arrive as idents).
    fn ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    fn integer(&mut self) -> SqlResult<i64> {
        match self.next() {
            Token::Int(v) => Ok(v),
            Token::Symbol(Sym::Minus) => match self.next() {
                Token::Int(v) => Ok(-v),
                other => Err(SqlError::Parse(format!(
                    "expected integer, found '{other}'"
                ))),
            },
            other => Err(SqlError::Parse(format!(
                "expected integer, found '{other}'"
            ))),
        }
    }

    // ---------------------------------------------------------------- statements

    fn statement(&mut self) -> SqlResult<Statement> {
        match self.peek() {
            Token::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.select()?)),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "CREATE" => self.create(),
                "DROP" => self.drop(),
                "CALL" => self.call(),
                "BEGIN" | "START" => {
                    self.pos += 1;
                    self.eat_kw("TRANSACTION");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.pos += 1;
                    self.eat_kw("TRANSACTION");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.pos += 1;
                    self.eat_kw("TRANSACTION");
                    Ok(Statement::Rollback)
                }
                other => Err(SqlError::Parse(format!("unexpected keyword '{other}'"))),
            },
            other => Err(SqlError::Parse(format!(
                "expected statement, found '{other}'"
            ))),
        }
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        let mut stmt = self.select_core()?;
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            let arm = self.select_core()?;
            stmt.unions.push(UnionArm {
                all,
                select: Box::new(arm),
            });
        }

        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            stmt.limit = Some(self.expr()?);
        }
        if self.eat_kw("OFFSET") {
            stmt.offset = Some(self.expr()?);
        }
        Ok(stmt)
    }

    /// One select core: everything up to (not including) UNION / ORDER BY
    /// / LIMIT.
    fn select_core(&mut self) -> SqlResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };

        let mut projections = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            projections.push(self.select_item()?);
        }

        let from = if self.eat_kw("FROM") {
            Some(self.parse_from_clause()?)
        } else {
            None
        };

        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_sym(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            unions: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Token::Ident(name), Token::Symbol(Sym::Dot)) = (self.peek(), self.peek2()) {
            if matches!(
                self.tokens.get(self.pos + 2),
                Some(Token::Symbol(Sym::Star))
            ) {
                let name = name.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_clause(&mut self) -> SqlResult<FromClause> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("RIGHT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat_sym(Sym::Comma) {
                // `FROM a, b` is a cross join.
                JoinKind::Cross
            } else {
                break;
            };
            let table = self.table_ref()?;
            let on = if kind != JoinKind::Cross && self.eat_kw("ON") {
                Some(self.expr()?)
            } else if kind != JoinKind::Cross {
                return Err(SqlError::Parse("JOIN requires an ON clause".into()));
            } else {
                None
            };
            joins.push(Join { kind, table, on });
        }
        Ok(FromClause { base, joins })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let sub = self.select()?;
            self.expect_sym(Sym::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident().map_err(|_| {
                SqlError::Parse("derived table (subquery in FROM) requires an alias".into())
            })?;
            return Ok(TableRef {
                source: TableSource::Subquery(Box::new(sub)),
                alias: Some(alias),
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef {
            source: TableSource::Named(name),
            alias,
        })
    }

    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if matches!(self.peek(), Token::Symbol(Sym::LParen))
            && !matches!(self.peek2(), Token::Keyword(k) if k == "SELECT")
        {
            self.expect_sym(Sym::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat_sym(Sym::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_sym(Sym::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat_sym(Sym::Comma) {
                    row.push(self.expr()?);
                }
                self.expect_sym(Sym::RParen)?;
                rows.push(row);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if matches!(self.peek(), Token::Keyword(k) if k == "SELECT") {
            InsertSource::Select(Box::new(self.select()?))
        } else if self.eat_sym(Sym::LParen) {
            let sel = self.select()?;
            self.expect_sym(Sym::RParen)?;
            InsertSource::Select(Box::new(sel))
        } else {
            return Err(SqlError::Parse(format!(
                "expected VALUES or SELECT, found '{}'",
                self.peek()
            )));
        };
        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> SqlResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStmt {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> SqlResult<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn if_not_exists(&mut self) -> SqlResult<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn if_exists(&mut self) -> SqlResult<bool> {
        if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create(&mut self) -> SqlResult<Statement> {
        self.expect_kw("CREATE")?;
        let temporary = self.eat_kw("TEMPORARY") || self.eat_kw("TEMP");
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("TABLE") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut columns = vec![self.column_def()?];
            while self.eat_sym(Sym::Comma) {
                // Table-level `PRIMARY KEY (col, …)` constraint.
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    self.expect_sym(Sym::LParen)?;
                    let mut pk_cols = vec![self.ident()?];
                    while self.eat_sym(Sym::Comma) {
                        pk_cols.push(self.ident()?);
                    }
                    self.expect_sym(Sym::RParen)?;
                    for pk in &pk_cols {
                        let col = columns
                            .iter_mut()
                            .find(|c| c.name.eq_ignore_ascii_case(pk))
                            .ok_or_else(|| {
                                SqlError::Parse(format!("PRIMARY KEY column '{pk}' not defined"))
                            })?;
                        col.primary_key = true;
                    }
                    continue;
                }
                columns.push(self.column_def()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Statement::CreateTable(CreateTableStmt {
                name,
                if_not_exists,
                temporary,
                columns,
            }));
        }
        if self.eat_kw("INDEX") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_sym(Sym::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                if_not_exists,
            });
        }
        if unique {
            return Err(SqlError::Parse(
                "UNIQUE only applies to CREATE INDEX".into(),
            ));
        }
        if self.eat_kw("SEQUENCE") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            let mut start = 1;
            let mut increment = 1;
            loop {
                if self.eat_kw("START") {
                    self.expect_kw("WITH")?;
                    start = self.integer()?;
                } else if self.eat_kw("INCREMENT") {
                    self.expect_kw("BY")?;
                    increment = self.integer()?;
                    if increment == 0 {
                        return Err(SqlError::Parse("INCREMENT BY 0 is invalid".into()));
                    }
                } else {
                    break;
                }
            }
            return Ok(Statement::CreateSequence {
                name,
                start,
                increment,
                if_not_exists,
            });
        }
        if self.eat_kw("VIEW") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("AS")?;
            let query = self.select()?;
            return Ok(Statement::CreateView {
                name,
                if_not_exists,
                query: Box::new(query),
            });
        }
        if self.eat_kw("PROCEDURE") {
            let name = self.ident()?;
            let mut params = Vec::new();
            if self.eat_sym(Sym::LParen) && !self.eat_sym(Sym::RParen) {
                params.push(self.ident()?);
                while self.eat_sym(Sym::Comma) {
                    params.push(self.ident()?);
                }
                self.expect_sym(Sym::RParen)?;
            }
            self.expect_kw("AS")?;
            self.expect_kw("BEGIN")?;
            let mut body = Vec::new();
            self.skip_semicolons();
            while !self.eat_kw("END") {
                if self.at_eof() {
                    return Err(SqlError::Parse("procedure body missing END".into()));
                }
                body.push(self.statement()?);
                self.skip_semicolons();
            }
            return Ok(Statement::CreateProcedure(CreateProcedureStmt {
                name,
                params,
                body,
            }));
        }
        Err(SqlError::Parse(format!(
            "CREATE of '{}' is not supported",
            self.peek()
        )))
    }

    fn column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.ident()?;
        let type_name = self.ident()?;
        let ty = DataType::from_name(&type_name)
            .ok_or_else(|| SqlError::Parse(format!("unknown type '{type_name}'")))?;
        // Optional length arguments: VARCHAR(40), DECIMAL(10, 2).
        if self.eat_sym(Sym::LParen) {
            self.integer()?;
            if self.eat_sym(Sym::Comma) {
                self.integer()?;
            }
            self.expect_sym(Sym::RParen)?;
        }
        let mut def = ColumnDef {
            name,
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
        };
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                def.primary_key = true;
            } else if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                def.not_null = true;
            } else if self.eat_kw("UNIQUE") {
                def.unique = true;
            } else if self.eat_kw("DEFAULT") {
                def.default = Some(self.expr()?);
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn drop(&mut self) -> SqlResult<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            let if_exists = self.if_exists()?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("INDEX") {
            let if_exists = self.if_exists()?;
            let name = self.ident()?;
            return Ok(Statement::DropIndex { name, if_exists });
        }
        if self.eat_kw("SEQUENCE") {
            let if_exists = self.if_exists()?;
            let name = self.ident()?;
            return Ok(Statement::DropSequence { name, if_exists });
        }
        if self.eat_kw("PROCEDURE") {
            let if_exists = self.if_exists()?;
            let name = self.ident()?;
            return Ok(Statement::DropProcedure { name, if_exists });
        }
        if self.eat_kw("VIEW") {
            let if_exists = self.if_exists()?;
            let name = self.ident()?;
            return Ok(Statement::DropView { name, if_exists });
        }
        Err(SqlError::Parse(format!(
            "DROP of '{}' is not supported",
            self.peek()
        )))
    }

    fn call(&mut self) -> SqlResult<Statement> {
        self.expect_kw("CALL")?;
        let name = self.ident()?;
        let mut args = Vec::new();
        if self.eat_sym(Sym::LParen) && !self.eat_sym(Sym::RParen) {
            args.push(self.expr()?);
            while self.eat_sym(Sym::Comma) {
                args.push(self.expr()?);
            }
            self.expect_sym(Sym::RParen)?;
        }
        Ok(Statement::Call { name, args })
    }

    // ---------------------------------------------------------------- expressions

    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> SqlResult<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            if matches!(self.peek(), Token::Keyword(k) if k == "SELECT") {
                let sub = self.select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "expected IN, BETWEEN or LIKE after NOT".into(),
            ));
        }

        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinOp::Eq),
            Token::Symbol(Sym::NotEq) => Some(BinOp::NotEq),
            Token::Symbol(Sym::Lt) => Some(BinOp::Lt),
            Token::Symbol(Sym::LtEq) => Some(BinOp::LtEq),
            Token::Symbol(Sym::Gt) => Some(BinOp::Gt),
            Token::Symbol(Sym::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinOp::Add,
                Token::Symbol(Sym::Minus) => BinOp::Sub,
                Token::Symbol(Sym::Concat) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinOp::Mul,
                Token::Symbol(Sym::Slash) => BinOp::Div,
                Token::Symbol(Sym::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v)))
            }
            Token::Float(v) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v)))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Param => {
                self.pos += 1;
                let idx = self.param_count;
                self.param_count += 1;
                Ok(Expr::Param(idx))
            }
            Token::NamedParam(n) => {
                self.pos += 1;
                Ok(Expr::NamedParam(n))
            }
            Token::Keyword(k) => match k.as_str() {
                "NULL" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Null))
                }
                "TRUE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "FALSE" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "CASE" => self.case_expr(),
                "EXISTS" => {
                    self.pos += 1;
                    self.expect_sym(Sym::LParen)?;
                    let sub = self.select()?;
                    self.expect_sym(Sym::RParen)?;
                    Ok(Expr::Exists {
                        subquery: Box::new(sub),
                        negated: false,
                    })
                }
                other => Err(SqlError::Parse(format!(
                    "unexpected keyword '{other}' in expression"
                ))),
            },
            Token::Symbol(Sym::LParen) => {
                self.pos += 1;
                if matches!(self.peek(), Token::Keyword(k) if k == "SELECT") {
                    let sub = self.select()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                self.pos += 1;
                // Function call?
                if matches!(self.peek(), Token::Symbol(Sym::LParen)) {
                    self.pos += 1;
                    let mut distinct = false;
                    let mut star = false;
                    let mut args = Vec::new();
                    if self.eat_sym(Sym::Star) {
                        star = true;
                        self.expect_sym(Sym::RParen)?;
                    } else if self.eat_sym(Sym::RParen) {
                        // zero-arg function
                    } else {
                        distinct = self.eat_kw("DISTINCT");
                        args.push(self.expr()?);
                        while self.eat_sym(Sym::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_sym(Sym::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        distinct,
                        star,
                    });
                }
                // Qualified column `t.a`?
                if self.eat_sym(Sym::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token '{other}' in expression"
            ))),
        }
    }

    fn case_expr(&mut self) -> SqlResult<Expr> {
        self.expect_kw("CASE")?;
        let operand = if matches!(self.peek(), Token::Keyword(k) if k == "WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_branch = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parse_minimal_select() {
        let s = sel("SELECT 1");
        assert_eq!(s.projections.len(), 1);
        assert!(s.from.is_none());
    }

    #[test]
    fn parse_select_structure() {
        let s = sel("SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
             WHERE Approved = TRUE GROUP BY ItemId HAVING SUM(Quantity) > 0 \
             ORDER BY ItemId DESC LIMIT 10 OFFSET 2");
        assert_eq!(s.projections.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].desc);
        assert!(s.limit.is_some());
        assert!(s.offset.is_some());
        match &s.projections[1] {
            SelectItem::Expr { alias, expr } => {
                assert_eq!(alias.as_deref(), Some("Quantity"));
                assert!(expr.contains_aggregate());
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parse_joins() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d");
        let from = s.from.unwrap();
        assert_eq!(from.joins.len(), 3);
        assert_eq!(from.joins[0].kind, JoinKind::Inner);
        assert_eq!(from.joins[1].kind, JoinKind::Left);
        assert_eq!(from.joins[2].kind, JoinKind::Cross);
        assert!(from.joins[2].on.is_none());
    }

    #[test]
    fn parse_comma_join() {
        let s = sel("SELECT * FROM a, b WHERE a.x = b.x");
        let from = s.from.unwrap();
        assert_eq!(from.joins.len(), 1);
        assert_eq!(from.joins[0].kind, JoinKind::Cross);
    }

    #[test]
    fn join_requires_on() {
        assert!(parse_statement("SELECT * FROM a JOIN b").is_err());
    }

    #[test]
    fn parse_derived_table() {
        let s = sel("SELECT t.a FROM (SELECT a FROM x) AS t");
        match &s.from.unwrap().base.source {
            TableSource::Subquery(sub) => assert_eq!(sub.projections.len(), 1),
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_statement("SELECT * FROM (SELECT 1)").is_err());
    }

    #[test]
    fn parse_insert_values_multi() {
        match parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(i) => {
                assert_eq!(i.columns.as_ref().unwrap().len(), 2);
                match i.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_select() {
        match parse_statement("INSERT INTO t SELECT a FROM s").unwrap() {
            Statement::Insert(i) => assert!(matches!(i.source, InsertSource::Select(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_delete() {
        match parse_statement("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3").unwrap() {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("DELETE FROM t").unwrap() {
            Statement::Delete(d) => assert!(d.where_clause.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_create_table_constraints() {
        match parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, \
             price DECIMAL(10,2) DEFAULT 0.0, ok BOOL UNIQUE)",
        )
        .unwrap()
        {
            Statement::CreateTable(c) => {
                assert!(c.columns[0].primary_key);
                assert!(c.columns[1].not_null);
                assert_eq!(c.columns[1].ty, DataType::Text);
                assert!(c.columns[2].default.is_some());
                assert!(c.columns[3].unique);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_table_level_primary_key() {
        match parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))").unwrap() {
            Statement::CreateTable(c) => {
                assert!(c.columns[0].primary_key);
                assert!(!c.columns[1].primary_key);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_temp_table_and_if_not_exists() {
        match parse_statement("CREATE TEMP TABLE IF NOT EXISTS rs1 (v INT)").unwrap() {
            Statement::CreateTable(c) => {
                assert!(c.temporary);
                assert!(c.if_not_exists);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_sequence() {
        match parse_statement("CREATE SEQUENCE s START WITH 100 INCREMENT BY 5").unwrap() {
            Statement::CreateSequence {
                start, increment, ..
            } => {
                assert_eq!(start, 100);
                assert_eq!(increment, 5);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("CREATE SEQUENCE s INCREMENT BY 0").is_err());
    }

    #[test]
    fn parse_procedure() {
        let sql = "CREATE PROCEDURE order_items(item, qty) AS BEGIN \
                   INSERT INTO log VALUES (:item, :qty); \
                   SELECT * FROM log WHERE item = :item; END";
        match parse_statement(sql).unwrap() {
            Statement::CreateProcedure(p) => {
                assert_eq!(p.params, vec!["item", "qty"]);
                assert_eq!(p.body.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_call() {
        match parse_statement("CALL p(1, 'x')").unwrap() {
            Statement::Call { name, args } => {
                assert_eq!(name, "p");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_txn_control() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("START TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_expression_precedence() {
        // a + b * c  parses as  a + (b * c)
        let e = parse_expression("a + b * c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
        // NOT a = b  parses as  NOT (a = b)
        let e = parse_expression("NOT a = b").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnOp::Not, .. }));
        // a OR b AND c  parses as  a OR (b AND c)
        let e = parse_expression("a OR b AND c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_special_predicates() {
        assert!(matches!(
            parse_expression("a IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("a NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expression("a BETWEEN 1 AND 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("name LIKE 'w%'").unwrap(),
            Expr::Like { .. }
        ));
        assert!(matches!(
            parse_expression("a IN (SELECT x FROM t)").unwrap(),
            Expr::InSubquery { .. }
        ));
        assert!(matches!(
            parse_expression("EXISTS (SELECT 1 FROM t)").unwrap(),
            Expr::Exists { .. }
        ));
        assert!(matches!(
            parse_expression("(SELECT MAX(x) FROM t)").unwrap(),
            Expr::ScalarSubquery(_)
        ));
    }

    #[test]
    fn parse_case_forms() {
        let e = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END").unwrap();
        assert!(matches!(e, Expr::Case { operand: None, .. }));
        let e = parse_expression("CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                assert!(operand.is_some());
                assert_eq!(branches.len(), 2);
                assert!(else_branch.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_function_forms() {
        assert!(matches!(
            parse_expression("COUNT(*)").unwrap(),
            Expr::Function { star: true, .. }
        ));
        assert!(matches!(
            parse_expression("COUNT(DISTINCT a)").unwrap(),
            Expr::Function { distinct: true, .. }
        ));
        match parse_expression("coalesce(a, b, 0)").unwrap() {
            Expr::Function { name, args, .. } => {
                assert_eq!(name, "COALESCE");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn params_numbered_in_order() {
        let stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ? OR c = ?").unwrap();
        let mut indices = Vec::new();
        if let Statement::Select(s) = stmt {
            s.where_clause.unwrap().walk(&mut |e| {
                if let Expr::Param(i) = e {
                    indices.push(*i);
                }
            });
        }
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn parse_script_batches() {
        let stmts =
            parse_script("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);; SELECT * FROM a;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("SELECT 1 2").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
    }

    #[test]
    fn qualified_wildcard_projection() {
        let s = sel("SELECT o.*, i.name FROM o JOIN i ON o.k = i.k");
        assert!(matches!(&s.projections[0], SelectItem::QualifiedWildcard(t) if t == "o"));
    }

    #[test]
    fn quoted_identifiers_allow_reserved_words() {
        let s = sel("SELECT \"select\" FROM \"table\"");
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { expr: Expr::Column { name, .. }, .. } if name == "select"
        ));
    }
}
