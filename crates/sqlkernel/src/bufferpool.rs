//! A small clock-eviction buffer pool between the paged engine and the
//! fault-injected pager.
//!
//! Frames are pinned implicitly: [`BufferPool::get`] hands out an `Arc`
//! of the page bytes, and a frame whose `Arc` is still held elsewhere
//! (strong count > 1) is never evicted. Dirty frames are written back on
//! eviction (steal) and by [`BufferPool::flush_all`] (no-force), always
//! under the write-ahead ordering invariant: a dirty page may reach the
//! store only once the WAL is flushed through that page's LSN
//! (`page_lsn <= flush_lsn`). The engine keeps `flush_lsn` current via
//! [`BufferPool::set_flush_lsn`]; a violation is a hard engine bug and
//! surfaces as an error rather than silently breaking recoverability.
//!
//! Eviction is the classic clock: each frame has a reference bit set on
//! access; the hand sweeps, clearing bits, and evicts the first
//! unpinned, unreferenced frame it finds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{SqlError, SqlResult};
use crate::pager::Pager;
use crate::sync::Mutex;

#[derive(Debug)]
struct Frame {
    page_no: u64,
    data: Arc<Vec<u8>>,
    dirty: bool,
    /// WAL position the (dirty) contents are consistent with.
    page_lsn: u64,
    /// Clock reference bit (second chance).
    referenced: bool,
}

#[derive(Debug, Default)]
struct Frames {
    slots: Vec<Frame>,
    /// page_no → slot index.
    map: HashMap<u64, usize>,
    /// Clock hand.
    hand: usize,
}

/// The pool. All frame state lives under one mutex; the engine drives it
/// single-threaded (recovery and checkpoint both run under the exclusive
/// catalog lock), so the lock is about consistency, not contention.
#[derive(Debug)]
pub struct BufferPool {
    pager: Pager,
    capacity: usize,
    /// Highest WAL LSN known durably flushed; the writeback gate.
    flush_lsn: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    frames: Mutex<Frames>,
}

impl BufferPool {
    /// Pool of `capacity` frames over `pager`. Capacity is clamped to at
    /// least 2 so a reader and a writer can always coexist.
    pub fn new(pager: Pager, capacity: usize) -> BufferPool {
        BufferPool {
            pager,
            capacity: capacity.max(2),
            flush_lsn: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            frames: Mutex::new(Frames::default()),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Number of frames the pool may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advance the WAL flush point the writeback gate compares against.
    pub fn set_flush_lsn(&self, lsn: u64) {
        self.flush_lsn.store(lsn, Ordering::Release);
    }

    /// Cache hits served without touching the pager.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses that went to the pager.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Frames evicted to make room (steal writebacks included).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Read a page through the pool. The returned `Arc` pins the frame
    /// for as long as the caller holds it.
    pub fn get(&self, page_no: u64) -> SqlResult<Arc<Vec<u8>>> {
        let mut frames = self.frames.lock();
        if let Some(&i) = frames.map.get(&page_no) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            frames.slots[i].referenced = true;
            return Ok(Arc::clone(&frames.slots[i].data));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(self.pager.read_page(page_no)?);
        self.install(
            &mut frames,
            Frame {
                page_no,
                data: Arc::clone(&data),
                dirty: false,
                page_lsn: 0,
                referenced: true,
            },
        )?;
        Ok(data)
    }

    /// Install freshly built page bytes as a dirty frame (no-force: the
    /// store is written at eviction or [`BufferPool::flush_all`], never
    /// synchronously here unless eviction makes room by stealing).
    pub fn put(&self, page_no: u64, data: Vec<u8>, page_lsn: u64) -> SqlResult<()> {
        let mut frames = self.frames.lock();
        if let Some(&i) = frames.map.get(&page_no) {
            let f = &mut frames.slots[i];
            f.data = Arc::new(data);
            f.dirty = true;
            f.page_lsn = page_lsn;
            f.referenced = true;
            return Ok(());
        }
        self.install(
            &mut frames,
            Frame {
                page_no,
                data: Arc::new(data),
                dirty: true,
                page_lsn,
                referenced: true,
            },
        )
    }

    /// Write every dirty frame back (ordering-checked) and sync the
    /// store. Frames stay cached, now clean.
    pub fn flush_all(&self) -> SqlResult<()> {
        let mut frames = self.frames.lock();
        let flush_lsn = self.flush_lsn.load(Ordering::Acquire);
        for f in frames.slots.iter_mut() {
            if f.dirty {
                Self::write_back(&self.pager, f, flush_lsn)?;
            }
        }
        drop(frames);
        self.pager.sync()
    }

    /// Drop every cached frame. Dirty frames are discarded — used only
    /// when abandoning a half-written checkpoint epoch whose pages are
    /// unreferenced anyway.
    pub fn discard_all(&self) {
        let mut frames = self.frames.lock();
        frames.slots.clear();
        frames.map.clear();
        frames.hand = 0;
    }

    fn write_back(pager: &Pager, f: &mut Frame, flush_lsn: u64) -> SqlResult<()> {
        if f.page_lsn > flush_lsn {
            return Err(SqlError::Runtime(format!(
                "bufferpool: write-ahead violation — page {} has lsn {} past flush lsn {}",
                f.page_no, f.page_lsn, flush_lsn
            )));
        }
        pager.write_page(f.page_no, &f.data)?;
        f.dirty = false;
        Ok(())
    }

    /// Insert `frame`, evicting via the clock if the pool is full.
    fn install(&self, frames: &mut Frames, frame: Frame) -> SqlResult<()> {
        if frames.slots.len() < self.capacity {
            let i = frames.slots.len();
            frames.map.insert(frame.page_no, i);
            frames.slots.push(frame);
            return Ok(());
        }
        let victim = self.pick_victim(frames)?;
        let flush_lsn = self.flush_lsn.load(Ordering::Acquire);
        if frames.slots[victim].dirty {
            // Steal: the dirty victim is written back early, gated by
            // the same write-ahead check as a normal flush.
            Self::write_back(&self.pager, &mut frames.slots[victim], flush_lsn)?;
        }
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let old_no = frames.slots[victim].page_no;
        frames.map.remove(&old_no);
        frames.map.insert(frame.page_no, victim);
        frames.slots[victim] = frame;
        Ok(())
    }

    fn pick_victim(&self, frames: &mut Frames) -> SqlResult<usize> {
        // Two full sweeps: the first may only clear reference bits; the
        // second must find an unreferenced, unpinned frame — unless
        // every frame is pinned, which is a capacity-misuse bug.
        for _ in 0..frames.slots.len() * 2 {
            let i = frames.hand;
            frames.hand = (frames.hand + 1) % frames.slots.len();
            let f = &mut frames.slots[i];
            if Arc::strong_count(&f.data) > 1 {
                continue; // pinned
            }
            if f.referenced {
                f.referenced = false;
                continue; // second chance
            }
            return Ok(i);
        }
        Err(SqlError::Runtime(
            "bufferpool: all frames pinned — pool smaller than concurrent pin set".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageBuilder, PageKind};
    use crate::pager::{MemPageStore, PageStore, Pager};

    fn page_bytes(no: u64, fill: u8) -> Vec<u8> {
        let mut b = PageBuilder::new(PageKind::Data, no);
        b.try_push(&[fill; 64]);
        b.finalize(1, 0)
    }

    fn pool(capacity: usize) -> (BufferPool, MemPageStore) {
        let store = MemPageStore::new();
        let pool = BufferPool::new(Pager::new(Arc::new(store.clone())), capacity);
        (pool, store)
    }

    #[test]
    fn read_through_counts_hits_and_misses() {
        let (pool, store) = pool(4);
        store.write_page(3, &page_bytes(3, 7)).unwrap();
        let a = pool.get(3).unwrap();
        let b = pool.get(3).unwrap();
        assert_eq!(a, b);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn eviction_fires_when_working_set_exceeds_capacity() {
        let (pool, store) = pool(2);
        for no in 0..6 {
            store.write_page(no, &page_bytes(no, no as u8)).unwrap();
        }
        for no in 0..6 {
            pool.get(no).unwrap();
        }
        assert_eq!(pool.misses(), 6);
        assert!(
            pool.evictions() >= 4,
            "4+ evictions for 6 pages in 2 frames"
        );
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let (pool, store) = pool(2);
        for no in 0..5 {
            store.write_page(no, &page_bytes(no, no as u8)).unwrap();
        }
        let pinned = pool.get(0).unwrap();
        for no in 1..5 {
            pool.get(no).unwrap();
        }
        // Page 0 must still be cached: its re-read is a hit.
        let hits = pool.hits();
        let again = pool.get(0).unwrap();
        assert_eq!(pool.hits(), hits + 1, "pinned page evicted");
        assert_eq!(pinned, again);
    }

    #[test]
    fn steal_writes_dirty_victim_back() {
        let (pool, store) = pool(2);
        pool.set_flush_lsn(10);
        pool.put(5, page_bytes(5, 1), 9).unwrap();
        // Fill the pool past capacity so page 5 is stolen.
        pool.put(6, page_bytes(6, 2), 9).unwrap();
        pool.put(7, page_bytes(7, 3), 9).unwrap();
        assert!(pool.evictions() >= 1);
        // The stolen page must be durable in the store already.
        let on_disk = store.read_page(5).unwrap();
        assert_eq!(on_disk, page_bytes(5, 1));
    }

    #[test]
    fn write_ahead_violation_is_refused() {
        let (pool, _store) = pool(4);
        pool.set_flush_lsn(5);
        pool.put(1, page_bytes(1, 1), 9).unwrap();
        let err = pool.flush_all().unwrap_err();
        assert!(err.to_string().contains("write-ahead violation"));
        // Advancing the flush point unblocks the same page.
        pool.set_flush_lsn(9);
        pool.flush_all().unwrap();
    }
}
