//! Row storage: multi-versioned tables with stable row ids and B-tree
//! secondary indexes.
//!
//! Rows live in a `BTreeMap<RowId, Chain>` where each chain is a short
//! vector of row *versions* ordered oldest→newest. A version carries a
//! commit stamp (an `Arc<AtomicU64>`; `0` = still uncommitted) and an
//! optional `Arc<Row>` payload (`None` = deletion tombstone). Ids stay
//! stable across deletes (the undo log and the indexes both key on
//! [`RowId`]) and read paths *share* a row instead of deep-copying it:
//! a scan hands out `Arc` clones, and mutation pushes a new version
//! (copy-on-write at row granularity).
//!
//! Two read modes, switched by a thread-local [`Snapshot`]:
//!
//! - **Flat** (no snapshot installed): every chain holds exactly one
//!   committed version and all methods behave like a plain single-version
//!   store. WAL replay, checkpoint serialization, and direct `Table` use
//!   in unit tests run in this mode and are byte-identical to the
//!   pre-MVCC engine.
//! - **Versioned** (snapshot installed by the connection layer): reads
//!   resolve each chain against the snapshot — newest version first, the
//!   first version that is *our own* (same stamp `Arc`) or committed at
//!   or before the snapshot timestamp wins. Writes push new versions
//!   stamped with the statement/transaction stamp; commit later stores
//!   the timestamp into the shared stamp, making every version of the
//!   transaction visible atomically.
//!
//! Indexes map composite key values to the set of row ids holding them;
//! under MVCC an entry is kept for **every retained version's** key, and
//! visibility-aware lookups re-check that the resolved version actually
//! carries the entry key (skipped for single-version chains, so the flat
//! path pays nothing). Unique indexes enforce at-most-one id per key
//! against the newest version (ignoring keys containing NULL, per SQL
//! convention). Superseded versions are trimmed inline on write and
//! swept by [`Table::gc_versions`] using the oldest-active-snapshot
//! watermark.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrd};
use std::sync::{Arc, OnceLock};

use crate::error::{SqlError, SqlResult};
use crate::schema::TableSchema;
use crate::types::Value;

/// Stable identifier of a row within one table.
pub type RowId = u64;

/// A stored row; always has exactly `schema.columns.len()` values.
pub type Row = Vec<Value>;

/// A transaction/statement commit stamp. `0` means uncommitted; commit
/// stores the commit timestamp, atomically publishing every version that
/// shares the stamp.
pub type TxnStamp = Arc<AtomicU64>;

/// Unwrap an `Arc<Row>` without copying when this was the last reference,
/// falling back to a deep clone when the row is still shared.
pub fn unshare_row(row: Arc<Row>) -> Row {
    Arc::try_unwrap(row).unwrap_or_else(|shared| (*shared).clone())
}

/// Allocate a fresh (uncommitted) stamp.
pub fn new_stamp() -> TxnStamp {
    Arc::new(AtomicU64::new(0))
}

/// The stamp used for rows written outside any snapshot scope (WAL
/// replay, checkpoint reload, direct `Table` use). Committed at
/// timestamp 1, which every snapshot timestamp is at least, so
/// bootstrap rows are visible to all readers.
fn bootstrap_stamp() -> TxnStamp {
    static BOOTSTRAP: OnceLock<TxnStamp> = OnceLock::new();
    Arc::clone(BOOTSTRAP.get_or_init(|| Arc::new(AtomicU64::new(1))))
}

/// A read snapshot: everything committed at or before `ts` is visible,
/// plus this statement/transaction's own writes (matched by stamp
/// identity, not timestamp).
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub ts: u64,
    pub stamp: TxnStamp,
}

thread_local! {
    static ACTIVE_SNAPSHOT: RefCell<Option<Snapshot>> = const { RefCell::new(None) };
}

/// The snapshot installed on this thread, if any.
pub fn current_snapshot() -> Option<Snapshot> {
    ACTIVE_SNAPSHOT.with(|s| s.borrow().clone())
}

/// Is a snapshot installed on this thread?
pub fn snapshot_active() -> bool {
    ACTIVE_SNAPSHOT.with(|s| s.borrow().is_some())
}

/// RAII scope for a thread-local snapshot. Restores the previous
/// snapshot (normally `None`) on drop, including during unwinding.
#[derive(Debug)]
pub struct SnapshotScope {
    prev: Option<Snapshot>,
}

/// Install `snapshot` as the thread's active snapshot until the returned
/// scope is dropped.
pub fn enter_snapshot(snapshot: Snapshot) -> SnapshotScope {
    let prev = ACTIVE_SNAPSHOT.with(|s| s.borrow_mut().replace(snapshot));
    SnapshotScope { prev }
}

impl Drop for SnapshotScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE_SNAPSHOT.with(|s| *s.borrow_mut() = prev);
    }
}

/// MVCC bookkeeping shared between a database handle and every table it
/// owns: the GC watermark (oldest active snapshot timestamp, `u64::MAX`
/// when no snapshot is active) and engine-wide version counters.
#[derive(Debug)]
pub struct MvccShared {
    /// Oldest active snapshot timestamp; versions superseded before this
    /// point are unreachable and may be garbage-collected.
    pub floor: AtomicU64,
    /// Visibility walks that had to consider more than one version.
    pub chains_walked: AtomicU64,
    /// Superseded versions dropped by inline trims and GC sweeps.
    pub versions_gced: AtomicU64,
}

impl Default for MvccShared {
    fn default() -> Self {
        MvccShared {
            floor: AtomicU64::new(u64::MAX),
            chains_walked: AtomicU64::new(0),
            versions_gced: AtomicU64::new(0),
        }
    }
}

/// One version of a row. `row == None` is a deletion tombstone.
#[derive(Debug, Clone)]
struct RowVersion {
    begin: TxnStamp,
    row: Option<Arc<Row>>,
}

impl RowVersion {
    fn committed_at(&self) -> u64 {
        self.begin.load(AtomicOrd::Acquire)
    }
}

/// A row's version chain, oldest first. Flat mode keeps exactly one
/// committed version per chain.
#[derive(Debug, Clone, Default)]
struct Chain {
    versions: Vec<RowVersion>,
}

impl Chain {
    fn single(begin: TxnStamp, row: Arc<Row>) -> Chain {
        Chain {
            versions: vec![RowVersion {
                begin,
                row: Some(row),
            }],
        }
    }

    /// The newest version's payload — the "physical latest" row the WAL
    /// after-image derivation and flat mode read. `None` when the newest
    /// version is a tombstone.
    fn latest(&self) -> Option<&Arc<Row>> {
        self.versions.last().and_then(|v| v.row.as_ref())
    }

    /// Is the newest version a live row (not a tombstone)?
    fn top_is_live(&self) -> bool {
        self.versions.last().is_some_and(|v| v.row.is_some())
    }

    /// Resolve against a snapshot: newest first, first own-or-committed
    /// version wins; its tombstone means "not visible".
    fn visible(&self, snap: &Snapshot) -> Option<&Arc<Row>> {
        for v in self.versions.iter().rev() {
            if Arc::ptr_eq(&v.begin, &snap.stamp) {
                return v.row.as_ref();
            }
            let ts = v.committed_at();
            if ts != 0 && ts <= snap.ts {
                return v.row.as_ref();
            }
        }
        None
    }
}

/// A totally ordered composite key, usable in `BTreeMap`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey(pub Vec<Value>);

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A secondary (or constraint-backing) index.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Positions of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    pub unique: bool,
    map: BTreeMap<SortKey, BTreeSet<RowId>>,
}

impl Index {
    fn key_of(&self, row: &Row) -> SortKey {
        SortKey(self.columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Would `old` and `new` land under different index keys? Compares
    /// borrowed values directly so the common no-key-change case never
    /// clones a `Value`.
    fn key_changed(&self, old: &Row, new: &Row) -> bool {
        self.columns
            .iter()
            .any(|&i| old[i].total_cmp(&new[i]) != Ordering::Equal)
    }

    fn key_has_null(key: &SortKey) -> bool {
        key.0.iter().any(Value::is_null)
    }

    /// Does the row's index key contain a NULL? Borrowed counterpart of
    /// [`Index::key_has_null`], used to skip key construction entirely.
    fn row_key_has_null(&self, row: &Row) -> bool {
        self.columns.iter().any(|&i| row[i].is_null())
    }

    fn add_entry(&mut self, row: &Row, id: RowId) {
        let key = self.key_of(row);
        self.map.entry(key).or_default().insert(id);
    }

    fn remove_entry(&mut self, key: &SortKey, id: RowId) {
        if let Some(set) = self.map.get_mut(key) {
            set.remove(&id);
            if set.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids matching an exact key. Under MVCC the result may include
    /// ids whose *visible* version carries a different key (stale or
    /// future entries) — use [`Table::index_eq_entries`] for
    /// visibility-aware lookups.
    pub fn lookup(&self, key: &SortKey) -> impl Iterator<Item = RowId> + '_ {
        self.map.get(key).into_iter().flatten().copied()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Translate `lookup_range`-style bounds into `BTreeMap::range`
    /// bounds, or `None` when the range is provably empty.
    fn range_bounds(
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
        include_null_keys: bool,
    ) -> Option<(std::ops::Bound<SortKey>, std::ops::Bound<SortKey>)> {
        use std::ops::Bound;
        if lower.is_some_and(|(v, _)| v.is_null()) || upper.is_some_and(|(v, _)| v.is_null()) {
            return None;
        }
        // BTreeMap::range panics on inverted bounds (and on equal bounds
        // with either end excluded); such ranges are simply empty.
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (lower, upper) {
            match lo.total_cmp(hi) {
                Ordering::Greater => return None,
                Ordering::Equal if !(lo_inc && hi_inc) => return None,
                _ => {}
            }
        }
        let start: Bound<SortKey> = match lower {
            Some((v, true)) => Bound::Included(SortKey(vec![v.clone()])),
            Some((v, false)) => Bound::Excluded(SortKey(vec![v.clone()])),
            None if include_null_keys => Bound::Unbounded,
            // NULL sorts before every non-NULL value, so excluding the
            // NULL key is the same as starting just past it.
            None => Bound::Excluded(SortKey(vec![Value::Null])),
        };
        let end: Bound<SortKey> = match upper {
            Some((v, true)) => Bound::Included(SortKey(vec![v.clone()])),
            Some((v, false)) => Bound::Excluded(SortKey(vec![v.clone()])),
            None => Bound::Unbounded,
        };
        Some((start, end))
    }

    /// Row ids whose (single-column) key falls within the given bounds,
    /// emitted in key order — descending when `rev`. Each bound is
    /// `(value, inclusive)`; `None` means unbounded on that side.
    ///
    /// SQL comparison semantics: a NULL bound compares UNKNOWN against
    /// every key, so the range is empty. NULL *keys* never satisfy a
    /// comparison predicate either, so an unbounded-from-below range
    /// excludes them — unless `include_null_keys` is set, which the
    /// executor uses for pure ORDER BY (no range predicate) walks where
    /// NULL keys must appear in their NULLS-first sort position.
    ///
    /// Within one key, row ids come out ascending even when `rev`: the
    /// interpreted path's stable sort preserves scan order (ascending row
    /// id) among equal keys, and index emission must match it exactly.
    pub fn lookup_range(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
        rev: bool,
        include_null_keys: bool,
    ) -> Vec<RowId> {
        let Some(bounds) = Index::range_bounds(lower, upper, include_null_keys) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let entries = self.map.range(bounds);
        if rev {
            for (_, ids) in entries.rev() {
                out.extend(ids.iter().copied());
            }
        } else {
            for (_, ids) in entries {
                out.extend(ids.iter().copied());
            }
        }
        out
    }
}

/// Remove the dropped row's index entries unless another retained
/// version of the same chain still carries the same key. (Every index
/// entry must be backed by at least one retained version — lookups rely
/// on that invariant to skip the key re-check on single-version chains.)
fn unindex_unless_retained(indexes: &mut [Index], chain: &Chain, id: RowId, dropped: &Row) {
    for idx in indexes.iter_mut() {
        let key = idx.key_of(dropped);
        let retained = chain
            .versions
            .iter()
            .any(|v| v.row.as_deref().is_some_and(|r| idx.key_of(r) == key));
        if !retained {
            idx.remove_entry(&key, id);
        }
    }
}

/// Drop versions superseded before `floor`: keep the newest version
/// committed at or before the watermark (the anchor — some active or
/// future snapshot may still need it) and everything newer; drop all
/// older versions. Returns how many versions were dropped.
fn trim_chain(indexes: &mut [Index], id: RowId, chain: &mut Chain, floor: u64) -> u64 {
    let Some(anchor) = chain.versions.iter().rposition(|v| {
        let ts = v.committed_at();
        ts != 0 && ts <= floor
    }) else {
        return 0;
    };
    if anchor == 0 {
        return 0;
    }
    let removed: Vec<RowVersion> = chain.versions.drain(..anchor).collect();
    let dropped = removed.len() as u64;
    for v in removed {
        if let Some(r) = v.row {
            unindex_unless_retained(indexes, chain, id, &r);
        }
    }
    dropped
}

/// A stored table: schema + versioned rows + indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Chain>,
    /// Number of chains whose newest version is a live row (flat-mode
    /// `len()`); maintained incrementally by every mutation.
    live: usize,
    next_row_id: RowId,
    indexes: Vec<Index>,
    mvcc: Arc<MvccShared>,
}

impl Table {
    /// Create an empty table. A unique index backing the primary key (if
    /// any) is created automatically, as are single-column unique indexes
    /// for `UNIQUE` columns.
    pub fn new(schema: TableSchema) -> Table {
        let mut t = Table {
            rows: BTreeMap::new(),
            live: 0,
            next_row_id: 1,
            indexes: Vec::new(),
            mvcc: Arc::new(MvccShared::default()),
            schema,
        };
        let pk = t.schema.primary_key_cols();
        if !pk.is_empty() {
            t.indexes.push(Index {
                name: format!("{}_pk", t.schema.name),
                columns: pk,
                unique: true,
                map: BTreeMap::new(),
            });
        }
        let uniques: Vec<usize> = t
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique && !c.primary_key)
            .map(|(i, _)| i)
            .collect();
        for i in uniques {
            t.indexes.push(Index {
                name: format!("{}_{}_unique", t.schema.name, t.schema.columns[i].name),
                columns: vec![i],
                unique: true,
                map: BTreeMap::new(),
            });
        }
        t
    }

    /// Share GC watermark and version counters with the owning database
    /// (called when the table is added to a catalog).
    pub fn attach_mvcc(&mut self, shared: Arc<MvccShared>) {
        self.mvcc = shared;
    }

    /// Number of live rows (newest version not a tombstone). Snapshot
    /// readers should count via a scan; this is the physical count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the table physically empty of live rows?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Resolve a chain under the given snapshot (or flat-latest when
    /// `None`), ticking the chain-walk counter for multi-version chains.
    fn resolve_with<'t>(
        &'t self,
        chain: &'t Chain,
        snap: Option<&Snapshot>,
    ) -> Option<&'t Arc<Row>> {
        match snap {
            None => chain.latest(),
            Some(s) => {
                if chain.versions.len() > 1 {
                    self.mvcc.chains_walked.fetch_add(1, AtomicOrd::Relaxed);
                }
                chain.visible(s)
            }
        }
    }

    /// Iterate rows in row-id order. Rows come out as shared `Arc`s so a
    /// scan can retain them without deep-copying. With a thread-local
    /// snapshot installed, only versions visible to it are yielded.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Arc<Row>)> {
        let snap = current_snapshot();
        self.rows.iter().filter_map(move |(id, chain)| {
            self.resolve_with(chain, snap.as_ref()).map(|r| (*id, r))
        })
    }

    /// Iterate row data in row-id order *by reference* — the batch
    /// executor's scan primitive. Unlike [`Table::iter`] the `Arc` is
    /// never cloned: the borrow pins each row to the caller's table
    /// guard, so a whole-table scan costs zero refcount traffic and
    /// zero per-row allocation. Snapshot-filtered like [`Table::iter`].
    pub fn scan(&self) -> impl Iterator<Item = &Arc<Row>> {
        let snap = current_snapshot();
        self.rows
            .values()
            .filter_map(move |chain| self.resolve_with(chain, snap.as_ref()))
    }

    /// Fetch one row's newest version — the *physical* latest, ignoring
    /// any installed snapshot. WAL after-image derivation and recovery
    /// depend on this; snapshot readers use [`Table::get_visible`].
    pub fn get(&self, id: RowId) -> Option<&Arc<Row>> {
        self.rows.get(&id).and_then(|c| c.latest())
    }

    /// Fetch the version of one row visible to the installed snapshot
    /// (newest version when no snapshot is installed).
    pub fn get_visible(&self, id: RowId) -> Option<&Arc<Row>> {
        let snap = current_snapshot();
        self.rows
            .get(&id)
            .and_then(|c| self.resolve_with(c, snap.as_ref()))
    }

    /// Visibility-aware exact-key index lookup: resolves each candidate
    /// id against the installed snapshot and keeps it only if the visible
    /// version actually carries the probe key (historical entries for
    /// other keys are skipped). Ids come out ascending, matching scan
    /// order among equal keys.
    pub fn index_eq_entries<'t>(
        &'t self,
        idx: &'t Index,
        key: &SortKey,
    ) -> Vec<(RowId, &'t Arc<Row>)> {
        let snap = current_snapshot();
        let mut out = Vec::new();
        for id in idx.lookup(key) {
            let Some(chain) = self.rows.get(&id) else {
                continue;
            };
            let multi = chain.versions.len() > 1;
            let Some(row) = self.resolve_with(chain, snap.as_ref()) else {
                continue;
            };
            if multi && idx.key_of(row) != *key {
                continue;
            }
            out.push((id, row));
        }
        out
    }

    /// Visibility-aware range walk over a (single-column) index: bounds
    /// and ordering exactly as [`Index::lookup_range`], but each candidate
    /// resolves through the installed snapshot and must carry the entry
    /// key it was found under (so a row whose key changed after the
    /// snapshot neither vanishes nor appears twice).
    pub fn index_range_entries<'t>(
        &'t self,
        idx: &'t Index,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
        rev: bool,
        include_null_keys: bool,
    ) -> Vec<(RowId, &'t Arc<Row>)> {
        let Some(bounds) = Index::range_bounds(lower, upper, include_null_keys) else {
            return Vec::new();
        };
        let snap = current_snapshot();
        let mut out = Vec::new();
        let mut emit = |key: &SortKey, ids: &BTreeSet<RowId>| {
            for &id in ids {
                let Some(chain) = self.rows.get(&id) else {
                    continue;
                };
                let multi = chain.versions.len() > 1;
                let Some(row) = self.resolve_with(chain, snap.as_ref()) else {
                    continue;
                };
                if multi && idx.key_of(row) != *key {
                    continue;
                }
                out.push((id, row));
            }
        };
        let entries = idx.map.range(bounds);
        if rev {
            for (key, ids) in entries.rev() {
                emit(key, ids);
            }
        } else {
            for (key, ids) in entries {
                emit(key, ids);
            }
        }
        out
    }

    /// Validate a row against NOT NULL constraints and coerce cell types.
    pub fn normalize_row(&self, mut row: Row) -> SqlResult<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Semantic(format!(
                "table '{}' expects {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if let Some(d) = &col.default {
                    row[i] = d.clone();
                }
            }
            if row[i].is_null() && (col.not_null || col.primary_key) {
                return Err(SqlError::Constraint(format!(
                    "column '{}' of table '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            row[i] = row[i]
                .coerce(col.ty)
                .map_err(|m| SqlError::Semantic(format!("column '{}': {m}", col.name)))?;
        }
        Ok(row)
    }

    /// The stamp new versions should carry right now: the installed
    /// snapshot's stamp, or the bootstrap stamp in flat mode.
    fn write_stamp(snap: Option<&Snapshot>) -> TxnStamp {
        match snap {
            Some(s) => Arc::clone(&s.stamp),
            None => bootstrap_stamp(),
        }
    }

    /// Insert a normalized row, enforcing unique indexes. Returns its id.
    pub fn insert(&mut self, row: Row) -> SqlResult<RowId> {
        let row = self.normalize_row(row)?;
        self.check_unique(&row, None)?;
        let id = self.next_row_id;
        self.next_row_id += 1;
        for idx in &mut self.indexes {
            idx.add_entry(&row, id);
        }
        let stamp = Table::write_stamp(current_snapshot().as_ref());
        self.rows.insert(id, Chain::single(stamp, Arc::new(row)));
        self.live += 1;
        Ok(id)
    }

    /// Re-insert a row under a specific id (undo of delete; recovery).
    /// Flat-mode physical restore: replaces the whole chain.
    pub fn restore(&mut self, id: RowId, row: Row) {
        self.drop_chain_entries(id);
        let was_live = self.rows.get(&id).is_some_and(Chain::top_is_live);
        for idx in &mut self.indexes {
            idx.add_entry(&row, id);
        }
        self.next_row_id = self.next_row_id.max(id + 1);
        self.rows
            .insert(id, Chain::single(bootstrap_stamp(), Arc::new(row)));
        if !was_live {
            self.live += 1;
        }
    }

    /// Remove every retained version's index entries for `id` (prelude
    /// to physically replacing the chain).
    fn drop_chain_entries(&mut self, id: RowId) {
        let Some(chain) = self.rows.get(&id) else {
            return;
        };
        for v in &chain.versions {
            if let Some(r) = &v.row {
                for idx in &mut self.indexes {
                    let key = idx.key_of(r);
                    idx.remove_entry(&key, id);
                }
            }
        }
    }

    /// Replace the row at `id`. Returns the previous (visible) row.
    ///
    /// Flat mode replaces the single version in place; versioned mode
    /// pushes a new version stamped with the current snapshot's stamp and
    /// retains the old one for concurrent readers.
    pub fn update(&mut self, id: RowId, row: Row) -> SqlResult<Row> {
        let row = self.normalize_row(row)?;
        let snap = current_snapshot();
        let Some(snap) = snap else {
            // Flat path: byte-identical to the single-version engine.
            let Some(old) = self.rows.get(&id).and_then(|c| c.latest()).cloned() else {
                return Err(SqlError::NotFound(format!(
                    "row {id} in table '{}'",
                    self.schema.name
                )));
            };
            self.check_unique(&row, Some(id))?;
            for idx in &mut self.indexes {
                if idx.key_changed(&old, &row) {
                    let old_key = idx.key_of(&old);
                    idx.remove_entry(&old_key, id);
                    idx.add_entry(&row, id);
                }
            }
            self.rows
                .insert(id, Chain::single(bootstrap_stamp(), Arc::new(row)));
            return Ok(unshare_row(old));
        };
        let Some(old) = self
            .rows
            .get(&id)
            .and_then(|c| self.resolve_with(c, Some(&snap)))
            .cloned()
        else {
            return Err(SqlError::NotFound(format!(
                "row {id} in table '{}'",
                self.schema.name
            )));
        };
        self.check_unique(&row, Some(id))?;
        let floor = self.mvcc.floor.load(AtomicOrd::Acquire);
        let Table {
            rows,
            indexes,
            mvcc,
            live,
            ..
        } = self;
        let chain = rows.get_mut(&id).expect("chain exists: resolved above");
        for idx in indexes.iter_mut() {
            idx.add_entry(&row, id);
        }
        let was_live = chain.top_is_live();
        chain.versions.push(RowVersion {
            begin: Arc::clone(&snap.stamp),
            row: Some(Arc::new(row)),
        });
        if !was_live {
            *live += 1;
        }
        let gced = trim_chain(indexes, id, chain, floor);
        if gced > 0 {
            mvcc.versions_gced.fetch_add(gced, AtomicOrd::Relaxed);
        }
        Ok(unshare_row(old))
    }

    /// Replace the row at `id` without constraint checks or normalization.
    /// Only for undo/redo application, where the restored state is
    /// known-valid. Flat-mode physical replace (whole chain).
    pub fn raw_replace(&mut self, id: RowId, row: Row) {
        self.drop_chain_entries(id);
        let was_live = self.rows.get(&id).is_some_and(Chain::top_is_live);
        let absent = !self.rows.contains_key(&id);
        for idx in &mut self.indexes {
            idx.add_entry(&row, id);
        }
        self.rows
            .insert(id, Chain::single(bootstrap_stamp(), Arc::new(row)));
        if !was_live || absent {
            self.live += 1;
        }
    }

    /// Delete the row at `id`, returning it. Flat mode removes the chain;
    /// versioned mode pushes a tombstone so concurrent snapshots keep
    /// reading the old version.
    pub fn delete(&mut self, id: RowId) -> SqlResult<Row> {
        let snap = current_snapshot();
        let Some(snap) = snap else {
            // Flat path: physically remove the chain.
            let chain = self.rows.remove(&id).ok_or_else(|| {
                SqlError::NotFound(format!("row {id} in table '{}'", self.schema.name))
            })?;
            let was_live = chain.top_is_live();
            for v in &chain.versions {
                if let Some(r) = &v.row {
                    for idx in &mut self.indexes {
                        let key = idx.key_of(r);
                        idx.remove_entry(&key, id);
                    }
                }
            }
            if was_live {
                self.live -= 1;
            }
            let row = chain
                .versions
                .into_iter()
                .next_back()
                .and_then(|v| v.row)
                .ok_or_else(|| {
                    SqlError::NotFound(format!("row {id} in table '{}'", self.schema.name))
                })?;
            return Ok(unshare_row(row));
        };
        let Some(old) = self
            .rows
            .get(&id)
            .and_then(|c| self.resolve_with(c, Some(&snap)))
            .cloned()
        else {
            return Err(SqlError::NotFound(format!(
                "row {id} in table '{}'",
                self.schema.name
            )));
        };
        let floor = self.mvcc.floor.load(AtomicOrd::Acquire);
        let Table {
            rows,
            indexes,
            mvcc,
            live,
            ..
        } = self;
        let chain = rows.get_mut(&id).expect("chain exists: resolved above");
        let was_live = chain.top_is_live();
        chain.versions.push(RowVersion {
            begin: Arc::clone(&snap.stamp),
            row: None,
        });
        if was_live {
            *live -= 1;
        }
        let gced = trim_chain(indexes, id, chain, floor);
        if gced > 0 {
            mvcc.versions_gced.fetch_add(gced, AtomicOrd::Relaxed);
        }
        Ok(unshare_row(old))
    }

    /// Remove the version of `id` stamped with `stamp` (newest such, if
    /// the statement touched the row more than once). Core of stamped
    /// rollback: surgically unwinds this transaction's version without
    /// disturbing versions other transactions pushed above or below.
    fn remove_own_version(&mut self, id: RowId, stamp: &TxnStamp) {
        let Table {
            rows,
            indexes,
            live,
            ..
        } = self;
        let Some(chain) = rows.get_mut(&id) else {
            return;
        };
        let was_live = chain.top_is_live();
        let Some(pos) = chain
            .versions
            .iter()
            .rposition(|v| Arc::ptr_eq(&v.begin, stamp))
        else {
            return;
        };
        let removed = chain.versions.remove(pos);
        if let Some(r) = &removed.row {
            unindex_unless_retained(indexes, chain, id, r);
        }
        let now_live = chain.top_is_live();
        if chain.versions.is_empty() {
            rows.remove(&id);
        }
        match (was_live, now_live) {
            (true, false) => *live -= 1,
            (false, true) => *live += 1,
            _ => {}
        }
    }

    /// Undo this transaction's insert of `id` (stamped rollback).
    pub fn undo_insert(&mut self, id: RowId, stamp: &TxnStamp) {
        self.remove_own_version(id, stamp);
    }

    /// Undo this transaction's update of `id` (stamped rollback): pops
    /// the version it pushed, re-exposing whatever was underneath.
    pub fn undo_update(&mut self, id: RowId, stamp: &TxnStamp) {
        self.remove_own_version(id, stamp);
    }

    /// Undo this transaction's delete of `id` (stamped rollback): pops
    /// its tombstone.
    pub fn undo_delete(&mut self, id: RowId, stamp: &TxnStamp) {
        self.remove_own_version(id, stamp);
    }

    /// Drop versions superseded before the `floor` watermark (oldest
    /// active snapshot timestamp; `u64::MAX` when no snapshot is active)
    /// and physically remove rows whose only remaining version is a
    /// committed tombstone at or before it. Returns versions dropped.
    pub fn gc_versions(&mut self, floor: u64) -> u64 {
        let Table {
            rows,
            indexes,
            mvcc,
            ..
        } = self;
        let mut dropped = 0u64;
        let mut dead: Vec<RowId> = Vec::new();
        for (id, chain) in rows.iter_mut() {
            dropped += trim_chain(indexes, *id, chain, floor);
            if chain.versions.len() == 1 && chain.versions[0].row.is_none() {
                let ts = chain.versions[0].committed_at();
                if ts != 0 && ts <= floor {
                    dead.push(*id);
                }
            }
        }
        for id in dead {
            rows.remove(&id);
            dropped += 1;
        }
        if dropped > 0 {
            mvcc.versions_gced.fetch_add(dropped, AtomicOrd::Relaxed);
        }
        dropped
    }

    /// Total retained versions across all chains (tombstones included) —
    /// test/diagnostic aid for GC behavior.
    pub fn version_count(&self) -> usize {
        self.rows.values().map(|c| c.versions.len()).sum()
    }

    fn check_unique(&self, row: &Row, exclude: Option<RowId>) -> SqlResult<()> {
        for idx in &self.indexes {
            if !idx.unique {
                continue;
            }
            // Keys containing NULL never clash (SQL convention); checking
            // on the borrowed row skips building the key at all.
            if idx.row_key_has_null(row) {
                continue;
            }
            let key = idx.key_of(row);
            // A candidate clashes only if its *newest* version is live and
            // still carries this key (historical entries of superseded
            // versions don't constrain new writes).
            let clash = idx.lookup(&key).any(|id| {
                Some(id) != exclude
                    && self.rows.get(&id).is_some_and(|c| {
                        c.latest()
                            .is_some_and(|r| c.versions.len() == 1 || idx.key_of(r) == key)
                    })
            });
            if clash {
                let cols: Vec<&str> = idx
                    .columns
                    .iter()
                    .map(|&i| self.schema.columns[i].name.as_str())
                    .collect();
                return Err(SqlError::Constraint(format!(
                    "duplicate key ({}) = ({}) violates unique index '{}'",
                    cols.join(", "),
                    key.0
                        .iter()
                        .map(|v| v.render())
                        .collect::<Vec<_>>()
                        .join(", "),
                    idx.name
                )));
            }
        }
        Ok(())
    }

    /// Add a secondary index over the named columns, backfilling it with
    /// every retained version's key. Uniqueness is checked against the
    /// newest live version of each row only — exactly the flat-mode
    /// behavior when every chain is single-version.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column_names: &[String],
        unique: bool,
    ) -> SqlResult<()> {
        let name = name.into();
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(&name))
        {
            return Err(SqlError::AlreadyExists(format!("index '{name}'")));
        }
        let mut columns = Vec::new();
        for c in column_names {
            columns.push(self.schema.resolve(c)?);
        }
        let mut idx = Index {
            name,
            columns,
            unique,
            map: BTreeMap::new(),
        };
        for (id, chain) in &self.rows {
            if let Some(row) = chain.latest() {
                let key = idx.key_of(row);
                if unique && !Index::key_has_null(&key) && idx.map.contains_key(&key) {
                    return Err(SqlError::Constraint(format!(
                        "cannot create unique index '{}': duplicate existing keys",
                        idx.name
                    )));
                }
                idx.map.entry(key).or_default().insert(*id);
            }
        }
        // Historical versions: index them too so snapshot readers keep
        // finding the rows they can see (no uniqueness constraint — only
        // the newest version constrains).
        for (id, chain) in &self.rows {
            if chain.versions.len() > 1 {
                for v in &chain.versions {
                    if let Some(r) = &v.row {
                        idx.map.entry(idx.key_of(r)).or_default().insert(*id);
                    }
                }
            }
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop an index by name. Returns it (for undo).
    pub fn drop_index(&mut self, name: &str) -> SqlResult<Index> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NotFound(format!("index '{name}'")))?;
        Ok(self.indexes.remove(pos))
    }

    /// Re-attach a previously dropped index (undo).
    pub fn restore_index(&mut self, index: Index) {
        self.indexes.push(index);
    }

    /// Find an equality index covering exactly the given column positions
    /// (used by the executor's index-lookup fast path).
    pub fn find_index(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == columns)
    }

    /// Does an index with this name exist on this table?
    pub fn has_index(&self, name: &str) -> bool {
        self.indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// All index names (for catalog introspection).
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.iter().map(|i| i.name.clone()).collect()
    }

    /// Iterate index definitions (name, column positions, uniqueness) —
    /// used by checkpoint serialization, which must rebuild the exact
    /// index set on recovery.
    pub fn index_iter(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    /// The row id the next insert will take. Serialized by checkpoints so
    /// a recovered table allocates ids exactly as the original would
    /// have — recovery must be byte-identical, row ids included.
    pub fn next_row_id(&self) -> RowId {
        self.next_row_id
    }

    /// Restore the row-id allocator (recovery only). Never moves it
    /// backwards: ids already in use stay unreachable.
    pub fn set_next_row_id(&mut self, next: RowId) {
        self.next_row_id = self.next_row_id.max(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                {
                    let mut c = Column::new("id", DataType::Int);
                    c.primary_key = true;
                    c
                },
                Column::new("name", DataType::Text),
                Column::new("qty", DataType::Int),
            ],
            false,
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: i64, name: &str, qty: i64) -> Row {
        vec![Value::Int(id), Value::text(name), Value::Int(qty)]
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::text("a"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        let err = t.insert(row(1, "b", 20)).unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn pk_null_rejected() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::text("x"), Value::Int(1)])
            .unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn coercion_on_insert() {
        let mut t = table();
        let id = t
            .insert(vec![Value::text("7"), Value::Int(5), Value::Float(3.0)])
            .unwrap();
        let r = t.get(id).unwrap();
        assert_eq!(r[0], Value::Int(7));
        assert_eq!(r[1], Value::text("5"));
        assert_eq!(r[2], Value::Int(3));
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        t.update(id, row(2, "a", 10)).unwrap();
        // old key free again
        t.insert(row(1, "c", 1)).unwrap();
        // new key taken
        assert!(t.insert(row(2, "d", 1)).is_err());
    }

    #[test]
    fn update_to_conflicting_pk_fails() {
        let mut t = table();
        let a = t.insert(row(1, "a", 1)).unwrap();
        t.insert(row(2, "b", 2)).unwrap();
        assert!(t.update(a, row(2, "a", 1)).is_err());
        // a unchanged
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn update_same_key_allowed() {
        let mut t = table();
        let a = t.insert(row(1, "a", 1)).unwrap();
        t.update(a, row(1, "a2", 2)).unwrap();
        assert_eq!(t.get(a).unwrap()[1], Value::text("a2"));
    }

    #[test]
    fn delete_frees_key_and_restore_brings_back() {
        let mut t = table();
        let id = t.insert(row(1, "a", 1)).unwrap();
        let old = t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        t.restore(id, old);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
        assert!(t.insert(row(1, "again", 9)).is_err());
    }

    #[test]
    fn restore_bumps_next_row_id() {
        let mut t = table();
        let id = t.insert(row(1, "a", 1)).unwrap();
        let old = t.delete(id).unwrap();
        t.restore(id, old);
        let id2 = t.insert(row(2, "b", 2)).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        t.insert(row(2, "a", 20)).unwrap();
        t.insert(row(3, "b", 30)).unwrap();
        t.create_index("t_name", &["name".into()], false).unwrap();
        let idx = t.find_index(&[1]).unwrap();
        let hits: Vec<RowId> = idx.lookup(&SortKey(vec![Value::text("a")])).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn unique_index_creation_fails_on_duplicates() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        t.insert(row(2, "a", 20)).unwrap();
        let err = t
            .create_index("u_name", &["name".into()], true)
            .unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn unique_index_ignores_null_keys() {
        let schema = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), {
                let mut c = Column::new("b", DataType::Int);
                c.unique = true;
                c
            }],
            false,
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap(); // two NULLs fine
        t.insert(vec![Value::Int(3), Value::Int(9)]).unwrap();
        assert!(t.insert(vec![Value::Int(4), Value::Int(9)]).is_err());
    }

    #[test]
    fn drop_and_restore_index() {
        let mut t = table();
        t.create_index("x", &["qty".into()], false).unwrap();
        let idx = t.drop_index("X").unwrap();
        assert!(!t.has_index("x"));
        t.restore_index(idx);
        assert!(t.has_index("x"));
        assert!(t.drop_index("nope").is_err());
    }

    #[test]
    fn defaults_fill_nulls() {
        let schema = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), {
                let mut c = Column::new("b", DataType::Int);
                c.default = Some(Value::Int(42));
                c
            }],
            false,
        )
        .unwrap();
        let mut t = Table::new(schema);
        let id = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Int(42));
    }

    #[test]
    fn sort_key_ordering() {
        let a = SortKey(vec![Value::Int(1), Value::text("a")]);
        let b = SortKey(vec![Value::Int(1), Value::text("b")]);
        let c = SortKey(vec![Value::Null]);
        assert!(a < b);
        assert!(c < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn unique_composite_index_ignores_null_keys() {
        // SQL unique semantics: a key containing NULL never conflicts,
        // even with an identical NULL-containing key.
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::text("a"), Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(4), Value::text("a"), Value::Null])
            .unwrap();
        assert_eq!(t.len(), 4);
        // Fully non-NULL duplicates are still rejected.
        t.insert(row(5, "b", 7)).unwrap();
        let err = t.insert(row(6, "b", 7)).unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn update_moves_null_composite_keys_correctly() {
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        let id = t
            .insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();

        // NULL → value: the row must move to the concrete key and start
        // participating in uniqueness.
        t.update(id, row(1, "a", 5)).unwrap();
        let idx = t.find_index(&[1, 2]).unwrap();
        let hits: Vec<_> = idx
            .lookup(&SortKey(vec![Value::text("a"), Value::Int(5)]))
            .collect();
        assert_eq!(hits, vec![id]);
        let err = t.insert(row(2, "a", 5)).unwrap_err();
        assert_eq!(err.class(), "constraint");

        // value → NULL: leaves the concrete key free again.
        t.update(id, vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(row(2, "a", 5)).unwrap();

        // NULL-key update where the key is unchanged (the borrowed
        // comparison short-circuits; NULL == NULL under total order).
        t.update(id, vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_removes_null_composite_keys() {
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        let a = t
            .insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Null, Value::Int(5)])
            .unwrap();
        t.delete(a).unwrap();
        let idx = t.find_index(&[1, 2]).unwrap();
        let hits: Vec<_> = idx
            .lookup(&SortKey(vec![Value::Null, Value::Int(5)]))
            .collect();
        assert_eq!(hits, vec![b]);
        t.delete(b).unwrap();
        assert_eq!(t.find_index(&[1, 2]).unwrap().key_count(), 0);
    }

    // ---- MVCC version-chain semantics (snapshot installed) ----

    fn snap(ts: u64) -> (Snapshot, TxnStamp) {
        let stamp = new_stamp();
        (
            Snapshot {
                ts,
                stamp: Arc::clone(&stamp),
            },
            stamp,
        )
    }

    #[test]
    fn versioned_update_preserves_old_version_for_older_snapshot() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap(); // bootstrap ts=1

        // Writer at snapshot ts=5 updates; not yet committed.
        let (wsnap, wstamp) = snap(5);
        {
            let _scope = enter_snapshot(wsnap);
            t.update(id, row(1, "a", 20)).unwrap();
            // Writer sees its own uncommitted version.
            assert_eq!(t.get_visible(id).unwrap()[2], Value::Int(20));
        }
        assert_eq!(t.version_count(), 2);

        // A reader snapshot (any ts) does not see the uncommitted write.
        let (rsnap, _) = snap(9);
        {
            let _scope = enter_snapshot(rsnap);
            assert_eq!(t.get_visible(id).unwrap()[2], Value::Int(10));
        }

        // Commit at ts=6: readers at ts>=6 see it, older snapshots don't.
        wstamp.store(6, AtomicOrd::Release);
        let (new_r, _) = snap(9);
        {
            let _scope = enter_snapshot(new_r);
            assert_eq!(t.get_visible(id).unwrap()[2], Value::Int(20));
        }
        let (old_r, _) = snap(5);
        {
            let _scope = enter_snapshot(old_r);
            assert_eq!(t.get_visible(id).unwrap()[2], Value::Int(10));
        }
    }

    #[test]
    fn versioned_delete_is_tombstone_until_gc() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        let (wsnap, wstamp) = snap(5);
        {
            let _scope = enter_snapshot(wsnap);
            t.delete(id).unwrap();
            assert!(t.get_visible(id).is_none()); // own delete visible
        }
        // Old snapshot still sees the row.
        let (r, _) = snap(5);
        {
            let _scope = enter_snapshot(r);
            assert_eq!(t.get_visible(id).unwrap()[0], Value::Int(1));
            let all: Vec<_> = t.iter().collect();
            assert_eq!(all.len(), 1);
        }
        assert_eq!(t.len(), 0); // physically dead (newest is tombstone)
        wstamp.store(6, AtomicOrd::Release);
        // After commit + GC past the tombstone, the chain is gone.
        assert!(t.gc_versions(u64::MAX) >= 1);
        assert_eq!(t.version_count(), 0);
    }

    #[test]
    fn stamped_undo_restores_exact_state() {
        let mut t = table();
        let a = t.insert(row(1, "a", 10)).unwrap();
        let (wsnap, wstamp) = snap(5);
        let b;
        {
            let _scope = enter_snapshot(wsnap);
            b = t.insert(row(2, "b", 20)).unwrap();
            t.update(a, row(1, "a", 99)).unwrap();
            t.delete(a).unwrap();
        }
        // Roll all three back (reverse order, as the undo log would).
        t.undo_delete(a, &wstamp);
        t.undo_update(a, &wstamp);
        t.undo_insert(b, &wstamp);
        assert_eq!(t.len(), 1);
        assert_eq!(t.version_count(), 1);
        assert_eq!(t.get(a).unwrap()[2], Value::Int(10));
        // Index state restored: key 2 free again, key 1 still taken.
        t.insert(row(2, "b2", 1)).unwrap();
        assert!(t.insert(row(1, "dup", 1)).is_err());
    }

    #[test]
    fn index_entries_follow_visibility() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        t.insert(row(2, "b", 20)).unwrap();
        t.create_index("t_name", &["name".into()], false).unwrap();

        let (wsnap, wstamp) = snap(5);
        {
            let _scope = enter_snapshot(wsnap);
            t.update(id, row(1, "z", 11)).unwrap();
        }
        wstamp.store(6, AtomicOrd::Release);

        // Old snapshot: sees the row under its old key, not the new one.
        let (old_r, _) = snap(5);
        {
            let _scope = enter_snapshot(old_r);
            let idx = t.find_index(&[1]).unwrap();
            let a_hits = t.index_eq_entries(idx, &SortKey(vec![Value::text("a")]));
            assert_eq!(a_hits.len(), 1);
            assert_eq!(a_hits[0].1[2], Value::Int(10));
            assert!(t
                .index_eq_entries(idx, &SortKey(vec![Value::text("z")]))
                .is_empty());
            // Range walk emits each visible row exactly once.
            let all = t.index_range_entries(idx, None, None, false, true);
            assert_eq!(all.len(), 2);
        }
        // New snapshot: new key only.
        let (new_r, _) = snap(6);
        {
            let _scope = enter_snapshot(new_r);
            let idx = t.find_index(&[1]).unwrap();
            assert!(t
                .index_eq_entries(idx, &SortKey(vec![Value::text("a")]))
                .is_empty());
            assert_eq!(
                t.index_eq_entries(idx, &SortKey(vec![Value::text("z")]))
                    .len(),
                1
            );
            let all = t.index_range_entries(idx, None, None, false, true);
            assert_eq!(all.len(), 2);
        }
    }

    #[test]
    fn stale_index_entries_do_not_block_unique_inserts() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        let (wsnap, wstamp) = snap(5);
        {
            let _scope = enter_snapshot(wsnap);
            // Move pk 1 -> 7; the historical pk-1 entry must not block a
            // fresh insert of pk 1, and pk 7 must now clash.
            t.update(id, row(7, "a", 10)).unwrap();
        }
        wstamp.store(6, AtomicOrd::Release);
        let (w2, _) = snap(6);
        let _scope = enter_snapshot(w2);
        t.insert(row(1, "fresh", 1)).unwrap();
        assert!(t.insert(row(7, "dup", 1)).is_err());
    }

    #[test]
    fn gc_respects_floor_watermark() {
        let mut t = table();
        // Pin the watermark low so inline trim retains history, as it
        // would while an old snapshot is still registered.
        let shared = Arc::new(MvccShared::default());
        shared.floor.store(1, AtomicOrd::Release);
        t.attach_mvcc(Arc::clone(&shared));
        let id = t.insert(row(1, "a", 0)).unwrap();
        for (i, commit_ts) in [(1i64, 10u64), (2, 20), (3, 30)] {
            let (wsnap, wstamp) = snap(commit_ts - 1);
            let _scope = enter_snapshot(wsnap);
            t.update(id, row(1, "a", i)).unwrap();
            wstamp.store(commit_ts, AtomicOrd::Release);
        }
        assert_eq!(t.version_count(), 4);
        // Floor 15: versions at ts 1 and 10 are superseded by ts 10's
        // successor... anchor is ts=10 (newest committed <= 15), so only
        // the bootstrap version drops.
        t.gc_versions(15);
        assert_eq!(t.version_count(), 3);
        // Snapshot at 15 still reads qty=1 (the ts=10 version).
        let (r, _) = snap(15);
        {
            let _scope = enter_snapshot(r);
            assert_eq!(t.get_visible(id).unwrap()[2], Value::Int(1));
        }
        // No active snapshots: everything but the newest drops.
        t.gc_versions(u64::MAX);
        assert_eq!(t.version_count(), 1);
        assert_eq!(t.get(id).unwrap()[2], Value::Int(3));
    }

    #[test]
    fn inline_trim_bounds_chain_growth() {
        let mut t = table();
        let id = t.insert(row(1, "a", 0)).unwrap();
        // Repeated committed autocommit updates with no active snapshots
        // (floor = MAX): chains must not grow without bound.
        for i in 1..100i64 {
            let (wsnap, wstamp) = snap(u64::MAX - 1);
            // floor stays MAX in this direct-table test
            let _scope = enter_snapshot(wsnap);
            t.update(id, row(1, "a", i)).unwrap();
            wstamp.store(i as u64 + 1, AtomicOrd::Release);
        }
        assert!(t.version_count() <= 3, "chain grew: {}", t.version_count());
    }
}
