//! Row storage: tables with stable row ids and B-tree secondary indexes.
//!
//! Rows live in a `BTreeMap<RowId, Arc<Row>>` so that ids stay stable
//! across deletes (the undo log and the indexes both key on [`RowId`])
//! and so that read paths can *share* a row instead of deep-copying it:
//! a scan hands out `Arc` clones, and mutation replaces the `Arc`
//! wholesale (copy-on-write at row granularity). Indexes map composite
//! key values to the set of row ids holding them; unique indexes enforce
//! at-most-one id per key (ignoring keys containing NULL, per SQL
//! convention).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::error::{SqlError, SqlResult};
use crate::schema::TableSchema;
use crate::types::Value;

/// Stable identifier of a row within one table.
pub type RowId = u64;

/// A stored row; always has exactly `schema.columns.len()` values.
pub type Row = Vec<Value>;

/// Unwrap an `Arc<Row>` without copying when this was the last reference,
/// falling back to a deep clone when the row is still shared.
pub fn unshare_row(row: Arc<Row>) -> Row {
    Arc::try_unwrap(row).unwrap_or_else(|shared| (*shared).clone())
}

/// A totally ordered composite key, usable in `BTreeMap`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey(pub Vec<Value>);

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A secondary (or constraint-backing) index.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Positions of the indexed columns in the table schema.
    pub columns: Vec<usize>,
    pub unique: bool,
    map: BTreeMap<SortKey, BTreeSet<RowId>>,
}

impl Index {
    fn key_of(&self, row: &Row) -> SortKey {
        SortKey(self.columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Would `old` and `new` land under different index keys? Compares
    /// borrowed values directly so the common no-key-change case never
    /// clones a `Value`.
    fn key_changed(&self, old: &Row, new: &Row) -> bool {
        self.columns
            .iter()
            .any(|&i| old[i].total_cmp(&new[i]) != Ordering::Equal)
    }

    fn key_has_null(key: &SortKey) -> bool {
        key.0.iter().any(Value::is_null)
    }

    /// Does the row's index key contain a NULL? Borrowed counterpart of
    /// [`Index::key_has_null`], used to skip key construction entirely.
    fn row_key_has_null(&self, row: &Row) -> bool {
        self.columns.iter().any(|&i| row[i].is_null())
    }

    /// Row ids matching an exact key.
    pub fn lookup(&self, key: &SortKey) -> impl Iterator<Item = RowId> + '_ {
        self.map.get(key).into_iter().flatten().copied()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Row ids whose (single-column) key falls within the given bounds,
    /// emitted in key order — descending when `rev`. Each bound is
    /// `(value, inclusive)`; `None` means unbounded on that side.
    ///
    /// SQL comparison semantics: a NULL bound compares UNKNOWN against
    /// every key, so the range is empty. NULL *keys* never satisfy a
    /// comparison predicate either, so an unbounded-from-below range
    /// excludes them — unless `include_null_keys` is set, which the
    /// executor uses for pure ORDER BY (no range predicate) walks where
    /// NULL keys must appear in their NULLS-first sort position.
    ///
    /// Within one key, row ids come out ascending even when `rev`: the
    /// interpreted path's stable sort preserves scan order (ascending row
    /// id) among equal keys, and index emission must match it exactly.
    pub fn lookup_range(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
        rev: bool,
        include_null_keys: bool,
    ) -> Vec<RowId> {
        use std::ops::Bound;
        if lower.is_some_and(|(v, _)| v.is_null()) || upper.is_some_and(|(v, _)| v.is_null()) {
            return Vec::new();
        }
        // BTreeMap::range panics on inverted bounds (and on equal bounds
        // with either end excluded); such ranges are simply empty.
        if let (Some((lo, lo_inc)), Some((hi, hi_inc))) = (lower, upper) {
            match lo.total_cmp(hi) {
                Ordering::Greater => return Vec::new(),
                Ordering::Equal if !(lo_inc && hi_inc) => return Vec::new(),
                _ => {}
            }
        }
        let start: Bound<SortKey> = match lower {
            Some((v, true)) => Bound::Included(SortKey(vec![v.clone()])),
            Some((v, false)) => Bound::Excluded(SortKey(vec![v.clone()])),
            None if include_null_keys => Bound::Unbounded,
            // NULL sorts before every non-NULL value, so excluding the
            // NULL key is the same as starting just past it.
            None => Bound::Excluded(SortKey(vec![Value::Null])),
        };
        let end: Bound<SortKey> = match upper {
            Some((v, true)) => Bound::Included(SortKey(vec![v.clone()])),
            Some((v, false)) => Bound::Excluded(SortKey(vec![v.clone()])),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        let entries = self.map.range((start, end));
        if rev {
            for (_, ids) in entries.rev() {
                out.extend(ids.iter().copied());
            }
        } else {
            for (_, ids) in entries {
                out.extend(ids.iter().copied());
            }
        }
        out
    }
}

/// A stored table: schema + rows + indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: BTreeMap<RowId, Arc<Row>>,
    next_row_id: RowId,
    indexes: Vec<Index>,
}

impl Table {
    /// Create an empty table. A unique index backing the primary key (if
    /// any) is created automatically, as are single-column unique indexes
    /// for `UNIQUE` columns.
    pub fn new(schema: TableSchema) -> Table {
        let mut t = Table {
            rows: BTreeMap::new(),
            next_row_id: 1,
            indexes: Vec::new(),
            schema,
        };
        let pk = t.schema.primary_key_cols();
        if !pk.is_empty() {
            t.indexes.push(Index {
                name: format!("{}_pk", t.schema.name),
                columns: pk,
                unique: true,
                map: BTreeMap::new(),
            });
        }
        let uniques: Vec<usize> = t
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique && !c.primary_key)
            .map(|(i, _)| i)
            .collect();
        for i in uniques {
            t.indexes.push(Index {
                name: format!("{}_{}_unique", t.schema.name, t.schema.columns[i].name),
                columns: vec![i],
                unique: true,
                map: BTreeMap::new(),
            });
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows in row-id order. Rows come out as shared `Arc`s so a
    /// scan can retain them without deep-copying.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Arc<Row>)> {
        self.rows.iter().map(|(id, r)| (*id, r))
    }

    /// Iterate row data in row-id order *by reference* — the batch
    /// executor's scan primitive. Unlike [`Table::iter`] the `Arc` is
    /// never cloned: the borrow pins each row to the caller's table
    /// guard, so a whole-table scan costs zero refcount traffic and
    /// zero per-row allocation.
    pub fn scan(&self) -> impl Iterator<Item = &Arc<Row>> {
        self.rows.values()
    }

    /// Fetch one row.
    pub fn get(&self, id: RowId) -> Option<&Arc<Row>> {
        self.rows.get(&id)
    }

    /// Validate a row against NOT NULL constraints and coerce cell types.
    pub fn normalize_row(&self, mut row: Row) -> SqlResult<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Semantic(format!(
                "table '{}' expects {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if let Some(d) = &col.default {
                    row[i] = d.clone();
                }
            }
            if row[i].is_null() && (col.not_null || col.primary_key) {
                return Err(SqlError::Constraint(format!(
                    "column '{}' of table '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            row[i] = row[i]
                .coerce(col.ty)
                .map_err(|m| SqlError::Semantic(format!("column '{}': {m}", col.name)))?;
        }
        Ok(row)
    }

    /// Insert a normalized row, enforcing unique indexes. Returns its id.
    pub fn insert(&mut self, row: Row) -> SqlResult<RowId> {
        let row = self.normalize_row(row)?;
        self.check_unique(&row, None)?;
        let id = self.next_row_id;
        self.next_row_id += 1;
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.map.entry(key).or_default().insert(id);
        }
        self.rows.insert(id, Arc::new(row));
        Ok(id)
    }

    /// Re-insert a row under a specific id (undo of delete).
    pub fn restore(&mut self, id: RowId, row: Row) {
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.map.entry(key).or_default().insert(id);
        }
        self.next_row_id = self.next_row_id.max(id + 1);
        self.rows.insert(id, Arc::new(row));
    }

    /// Replace the row at `id`. Returns the previous row.
    pub fn update(&mut self, id: RowId, row: Row) -> SqlResult<Row> {
        let row = self.normalize_row(row)?;
        let Some(old) = self.rows.get(&id).cloned() else {
            return Err(SqlError::NotFound(format!(
                "row {id} in table '{}'",
                self.schema.name
            )));
        };
        self.check_unique(&row, Some(id))?;
        for idx in &mut self.indexes {
            if idx.key_changed(&old, &row) {
                let old_key = idx.key_of(&old);
                if let Some(set) = idx.map.get_mut(&old_key) {
                    set.remove(&id);
                    if set.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                let new_key = idx.key_of(&row);
                idx.map.entry(new_key).or_default().insert(id);
            }
        }
        self.rows.insert(id, Arc::new(row));
        Ok(unshare_row(old))
    }

    /// Replace the row at `id` without constraint checks or normalization.
    /// Only for undo application, where the restored state is known-valid.
    pub fn raw_replace(&mut self, id: RowId, row: Row) {
        if let Some(old) = self.rows.get(&id).cloned() {
            for idx in &mut self.indexes {
                if idx.key_changed(&old, &row) {
                    let old_key = idx.key_of(&old);
                    if let Some(set) = idx.map.get_mut(&old_key) {
                        set.remove(&id);
                        if set.is_empty() {
                            idx.map.remove(&old_key);
                        }
                    }
                    let new_key = idx.key_of(&row);
                    idx.map.entry(new_key).or_default().insert(id);
                }
            }
        }
        self.rows.insert(id, Arc::new(row));
    }

    /// Delete the row at `id`, returning it.
    pub fn delete(&mut self, id: RowId) -> SqlResult<Row> {
        let row = self.rows.remove(&id).ok_or_else(|| {
            SqlError::NotFound(format!("row {id} in table '{}'", self.schema.name))
        })?;
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            if let Some(set) = idx.map.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
        Ok(unshare_row(row))
    }

    fn check_unique(&self, row: &Row, exclude: Option<RowId>) -> SqlResult<()> {
        for idx in &self.indexes {
            if !idx.unique {
                continue;
            }
            // Keys containing NULL never clash (SQL convention); checking
            // on the borrowed row skips building the key at all.
            if idx.row_key_has_null(row) {
                continue;
            }
            let key = idx.key_of(row);
            let clash = idx
                .lookup(&key)
                .any(|id| Some(id) != exclude && self.rows.contains_key(&id));
            if clash {
                let cols: Vec<&str> = idx
                    .columns
                    .iter()
                    .map(|&i| self.schema.columns[i].name.as_str())
                    .collect();
                return Err(SqlError::Constraint(format!(
                    "duplicate key ({}) = ({}) violates unique index '{}'",
                    cols.join(", "),
                    key.0
                        .iter()
                        .map(|v| v.render())
                        .collect::<Vec<_>>()
                        .join(", "),
                    idx.name
                )));
            }
        }
        Ok(())
    }

    /// Add a secondary index over the named columns, backfilling it.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column_names: &[String],
        unique: bool,
    ) -> SqlResult<()> {
        let name = name.into();
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(&name))
        {
            return Err(SqlError::AlreadyExists(format!("index '{name}'")));
        }
        let mut columns = Vec::new();
        for c in column_names {
            columns.push(self.schema.resolve(c)?);
        }
        let mut idx = Index {
            name,
            columns,
            unique,
            map: BTreeMap::new(),
        };
        for (id, row) in &self.rows {
            let key = idx.key_of(row);
            if unique && !Index::key_has_null(&key) && idx.map.contains_key(&key) {
                return Err(SqlError::Constraint(format!(
                    "cannot create unique index '{}': duplicate existing keys",
                    idx.name
                )));
            }
            idx.map.entry(key).or_default().insert(*id);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Drop an index by name. Returns it (for undo).
    pub fn drop_index(&mut self, name: &str) -> SqlResult<Index> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NotFound(format!("index '{name}'")))?;
        Ok(self.indexes.remove(pos))
    }

    /// Re-attach a previously dropped index (undo).
    pub fn restore_index(&mut self, index: Index) {
        self.indexes.push(index);
    }

    /// Find an equality index covering exactly the given column positions
    /// (used by the executor's index-lookup fast path).
    pub fn find_index(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == columns)
    }

    /// Does an index with this name exist on this table?
    pub fn has_index(&self, name: &str) -> bool {
        self.indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// All index names (for catalog introspection).
    pub fn index_names(&self) -> Vec<String> {
        self.indexes.iter().map(|i| i.name.clone()).collect()
    }

    /// Iterate index definitions (name, column positions, uniqueness) —
    /// used by checkpoint serialization, which must rebuild the exact
    /// index set on recovery.
    pub fn index_iter(&self) -> impl Iterator<Item = &Index> {
        self.indexes.iter()
    }

    /// The row id the next insert will take. Serialized by checkpoints so
    /// a recovered table allocates ids exactly as the original would
    /// have — recovery must be byte-identical, row ids included.
    pub fn next_row_id(&self) -> RowId {
        self.next_row_id
    }

    /// Restore the row-id allocator (recovery only). Never moves it
    /// backwards: ids already in use stay unreachable.
    pub fn set_next_row_id(&mut self, next: RowId) {
        self.next_row_id = self.next_row_id.max(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                {
                    let mut c = Column::new("id", DataType::Int);
                    c.primary_key = true;
                    c
                },
                Column::new("name", DataType::Text),
                Column::new("qty", DataType::Int),
            ],
            false,
        )
        .unwrap();
        Table::new(schema)
    }

    fn row(id: i64, name: &str, qty: i64) -> Row {
        vec![Value::Int(id), Value::text(name), Value::Int(qty)]
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::text("a"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        let err = t.insert(row(1, "b", 20)).unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn pk_null_rejected() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::text("x"), Value::Int(1)])
            .unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn arity_checked() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn coercion_on_insert() {
        let mut t = table();
        let id = t
            .insert(vec![Value::text("7"), Value::Int(5), Value::Float(3.0)])
            .unwrap();
        let r = t.get(id).unwrap();
        assert_eq!(r[0], Value::Int(7));
        assert_eq!(r[1], Value::text("5"));
        assert_eq!(r[2], Value::Int(3));
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = table();
        let id = t.insert(row(1, "a", 10)).unwrap();
        t.update(id, row(2, "a", 10)).unwrap();
        // old key free again
        t.insert(row(1, "c", 1)).unwrap();
        // new key taken
        assert!(t.insert(row(2, "d", 1)).is_err());
    }

    #[test]
    fn update_to_conflicting_pk_fails() {
        let mut t = table();
        let a = t.insert(row(1, "a", 1)).unwrap();
        t.insert(row(2, "b", 2)).unwrap();
        assert!(t.update(a, row(2, "a", 1)).is_err());
        // a unchanged
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn update_same_key_allowed() {
        let mut t = table();
        let a = t.insert(row(1, "a", 1)).unwrap();
        t.update(a, row(1, "a2", 2)).unwrap();
        assert_eq!(t.get(a).unwrap()[1], Value::text("a2"));
    }

    #[test]
    fn delete_frees_key_and_restore_brings_back() {
        let mut t = table();
        let id = t.insert(row(1, "a", 1)).unwrap();
        let old = t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        t.restore(id, old);
        assert_eq!(t.get(id).unwrap()[0], Value::Int(1));
        assert!(t.insert(row(1, "again", 9)).is_err());
    }

    #[test]
    fn restore_bumps_next_row_id() {
        let mut t = table();
        let id = t.insert(row(1, "a", 1)).unwrap();
        let old = t.delete(id).unwrap();
        t.restore(id, old);
        let id2 = t.insert(row(2, "b", 2)).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn secondary_index_lookup() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        t.insert(row(2, "a", 20)).unwrap();
        t.insert(row(3, "b", 30)).unwrap();
        t.create_index("t_name", &["name".into()], false).unwrap();
        let idx = t.find_index(&[1]).unwrap();
        let hits: Vec<RowId> = idx.lookup(&SortKey(vec![Value::text("a")])).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn unique_index_creation_fails_on_duplicates() {
        let mut t = table();
        t.insert(row(1, "a", 10)).unwrap();
        t.insert(row(2, "a", 20)).unwrap();
        let err = t
            .create_index("u_name", &["name".into()], true)
            .unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn unique_index_ignores_null_keys() {
        let schema = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), {
                let mut c = Column::new("b", DataType::Int);
                c.unique = true;
                c
            }],
            false,
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap(); // two NULLs fine
        t.insert(vec![Value::Int(3), Value::Int(9)]).unwrap();
        assert!(t.insert(vec![Value::Int(4), Value::Int(9)]).is_err());
    }

    #[test]
    fn drop_and_restore_index() {
        let mut t = table();
        t.create_index("x", &["qty".into()], false).unwrap();
        let idx = t.drop_index("X").unwrap();
        assert!(!t.has_index("x"));
        t.restore_index(idx);
        assert!(t.has_index("x"));
        assert!(t.drop_index("nope").is_err());
    }

    #[test]
    fn defaults_fill_nulls() {
        let schema = TableSchema::new(
            "t",
            vec![Column::new("a", DataType::Int), {
                let mut c = Column::new("b", DataType::Int);
                c.default = Some(Value::Int(42));
                c
            }],
            false,
        )
        .unwrap();
        let mut t = Table::new(schema);
        let id = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Int(42));
    }

    #[test]
    fn sort_key_ordering() {
        let a = SortKey(vec![Value::Int(1), Value::text("a")]);
        let b = SortKey(vec![Value::Int(1), Value::text("b")]);
        let c = SortKey(vec![Value::Null]);
        assert!(a < b);
        assert!(c < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn unique_composite_index_ignores_null_keys() {
        // SQL unique semantics: a key containing NULL never conflicts,
        // even with an identical NULL-containing key.
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::text("a"), Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(4), Value::text("a"), Value::Null])
            .unwrap();
        assert_eq!(t.len(), 4);
        // Fully non-NULL duplicates are still rejected.
        t.insert(row(5, "b", 7)).unwrap();
        let err = t.insert(row(6, "b", 7)).unwrap_err();
        assert_eq!(err.class(), "constraint");
    }

    #[test]
    fn update_moves_null_composite_keys_correctly() {
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        let id = t
            .insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();

        // NULL → value: the row must move to the concrete key and start
        // participating in uniqueness.
        t.update(id, row(1, "a", 5)).unwrap();
        let idx = t.find_index(&[1, 2]).unwrap();
        let hits: Vec<_> = idx
            .lookup(&SortKey(vec![Value::text("a"), Value::Int(5)]))
            .collect();
        assert_eq!(hits, vec![id]);
        let err = t.insert(row(2, "a", 5)).unwrap_err();
        assert_eq!(err.class(), "constraint");

        // value → NULL: leaves the concrete key free again.
        t.update(id, vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        t.insert(row(2, "a", 5)).unwrap();

        // NULL-key update where the key is unchanged (the borrowed
        // comparison short-circuits; NULL == NULL under total order).
        t.update(id, vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_removes_null_composite_keys() {
        let mut t = table();
        t.create_index("u", &["name".into(), "qty".into()], true)
            .unwrap();
        let a = t
            .insert(vec![Value::Int(1), Value::Null, Value::Int(5)])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(2), Value::Null, Value::Int(5)])
            .unwrap();
        t.delete(a).unwrap();
        let idx = t.find_index(&[1, 2]).unwrap();
        let hits: Vec<_> = idx
            .lookup(&SortKey(vec![Value::Null, Value::Int(5)]))
            .collect();
        assert_eq!(hits, vec![b]);
        t.delete(b).unwrap();
        assert_eq!(t.find_index(&[1, 2]).unwrap().key_count(), 0);
    }
}
