//! The embeddable database facade: [`Database`], [`Connection`],
//! prepared statements and result grids.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::fault::{crashed_error, CrashPoint, FaultInjector, FaultPlan, PrepareCrash};
use crate::pager::{self, FilePageStore, PageStore, PagedEngine};
use crate::parser::{parse_script, parse_statement};
use crate::plan::CompiledPlan;
use crate::storage::{
    enter_snapshot, new_stamp, MvccShared, Snapshot, SnapshotScope, Table, TxnStamp,
};
use crate::sync::{Mutex, RwLock};
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;
use crate::wal::{self, AppendMode, FileLogStore, LogStore, Wal, WalRecord};

/// Process-wide database instance counter. Each [`Database`] gets a
/// unique tag; compiled-plan slots are keyed by `(tag, epoch)` so a plan
/// bound by one instance can never satisfy another — in particular, a
/// plan bound before a crash is never served to the recovered instance
/// (whose epoch counter restarts from what the log happened to record).
static GLOBAL_DB_TAG: AtomicU64 = AtomicU64::new(1);

/// A materialized query result: column names plus a row grid.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> QueryResult {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the grid empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Cell accessor by row number and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&Value> {
        let c = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(c))
    }

    /// The single value of a 1×1 result.
    pub fn single_value(&self) -> SqlResult<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(SqlError::Runtime(format!(
                "expected a 1x1 result, got {}x{}",
                self.rows.len(),
                self.columns.len()
            )))
        }
    }

    /// Render as an aligned text grid (for examples and figure output).
    pub fn to_grid(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.render()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// A query (or result-returning `CALL`).
    Rows(QueryResult),
    /// DML row count.
    Affected(usize),
    /// DDL completed.
    Ddl,
    /// Transaction control completed.
    TxnControl,
}

impl StatementResult {
    /// The result grid, if this was a query.
    pub fn rows(self) -> Option<QueryResult> {
        match self {
            StatementResult::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Affected-row count, if DML.
    pub fn affected(&self) -> Option<usize> {
        match self {
            StatementResult::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Cumulative engine counters, used by the benchmark harness to report
/// work volumes (e.g. rows shipped into the process space) and by tests
/// to prove the statement cache and index fast paths are actually taken.
#[derive(Debug, Default, Clone, Copy)]
pub struct DbStats {
    pub statements_executed: u64,
    pub rows_returned: u64,
    /// Scans answered through an index fast path.
    pub index_scans: u64,
    /// Scans that walked a whole base table.
    pub full_scans: u64,
    /// Statement texts run through the parser.
    pub parses: u64,
    /// Statement-cache lookups answered without parsing.
    pub stmt_cache_hits: u64,
    /// Statement-cache lookups that had to parse.
    pub stmt_cache_misses: u64,
    /// Scans served by an index *range* walk (incl. order-only walks).
    pub range_scans: u64,
    /// Statements compiled to a bound plan (re-binds after DDL included).
    pub plan_binds: u64,
    /// Bound-expression evaluations performed by compiled plans.
    pub bound_evals: u64,
    /// `ORDER BY … LIMIT` sorts served by the bounded top-K heap.
    pub topk_sorts: u64,
    /// Expression-over-batch passes run by the vectorized executor (one
    /// per expression per batch, not one per row).
    pub batch_evals: u64,
    /// Input rows that flowed through the batch executor.
    pub batched_rows: u64,
    /// Statements aggregated through the one-pass hash aggregator.
    pub hash_aggs: u64,
    /// Rows walked by full table scans (`full_scans` counts scans once
    /// each; this counts their rows, for rows/sec reporting).
    pub full_scan_rows: u64,
    /// Compiled join steps executed as a vectorized hash join.
    pub hash_joins: u64,
    /// Compiled join steps executed as an index nested-loop probe.
    pub index_nl_joins: u64,
    /// Rows inserted into hash-join build tables.
    pub join_build_rows: u64,
    /// Rows that probed a hash-join table or index nested loop.
    pub join_probe_rows: u64,
    /// WHERE/ON conjuncts pushed into join-side scans.
    pub pushed_predicates: u64,
    /// Faults delivered by the installed [`FaultInjector`] (cumulative
    /// across plan swaps).
    pub faults_injected: u64,
    /// Statement retries reported by the recovery layer above the engine
    /// (via [`Database::note_retry`]).
    pub retries: u64,
    /// Rollbacks performed: statement-atomicity undo after a failed or
    /// panicked statement, explicit `ROLLBACK`, and rollback-on-drop.
    pub rollbacks: u64,
    /// Circuit-breaker trips reported by the recovery layer (via
    /// [`Database::note_breaker_trip`]).
    pub breaker_trips: u64,
    /// WAL append batches written (one per logged statement or commit).
    pub wal_appends: u64,
    /// Bytes appended to the write-ahead log (checkpoints included).
    pub wal_bytes: u64,
    /// Commit records appended to the WAL (group-commit members each
    /// count once, so `wal_appends / wal_commits` measures coalescing).
    pub wal_commits: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// 2PC `Prepare` records appended to the WAL.
    pub wal_prepares: u64,
    /// Transactions currently sitting in the prepared (in-doubt) window.
    pub prepared_txns: u64,
    /// In-doubt transactions this instance resolved to commit at recovery.
    pub in_doubt_commits: u64,
    /// In-doubt transactions this instance resolved to abort at recovery
    /// (presumed abort included).
    pub in_doubt_aborts: u64,
    /// Crash recoveries this instance was born from (0 or 1: a recovered
    /// database is a fresh instance; counters do not leak across reopen).
    pub recoveries: u64,
    /// MVCC read snapshots registered (per statement in autocommit, per
    /// transaction under BEGIN…COMMIT).
    pub snapshots_taken: u64,
    /// Visibility resolutions that had to walk a multi-version chain
    /// (single-version rows resolve without a walk and are not counted).
    pub version_chains_walked: u64,
    /// Superseded row versions dropped by inline trims and GC sweeps.
    pub versions_gced: u64,
    /// Torn-tail bytes the WAL scan dropped when this instance was
    /// recovered — recorded, never silently discarded.
    pub torn_tails_dropped: u64,
    /// Checksum-failing pages detected and rebuilt from the previous
    /// checkpoint epoch + WAL redo (paged storage only).
    pub pages_repaired: u64,
    /// Buffer-pool frames evicted to make room (paged storage only).
    pub pool_evictions: u64,
    /// Buffer-pool reads served from cache (paged storage only).
    pub pool_hits: u64,
    /// Buffer-pool reads that went to the page store (paged storage only).
    pub pool_misses: u64,
}

/// A parsed statement plus the catalog object names it references —
/// the unit stored in the statement cache and shared by [`Prepared`].
#[derive(Debug)]
pub(crate) struct CachedStmt {
    pub(crate) stmt: Statement,
    /// Lowercased referenced object names, for DDL invalidation.
    objects: Vec<String>,
    /// The compiled plan, tagged with the database instance tag and the
    /// catalog epoch it was bound against. Any DDL bumps the epoch, so a
    /// stale plan is never executed — it is silently re-bound on the next
    /// use. The instance tag guards the cross-instance case: epochs are
    /// per-catalog counters, so after crash recovery (a new instance) an
    /// epoch match alone would be meaningless.
    plan: Mutex<Option<(u64, u64, Arc<CompiledPlan>)>>,
}

/// Bounded LRU map from SQL text to parsed plan. Recency is tracked with
/// a monotone tick per entry; eviction removes the stalest entry. The
/// cache is small and hit-dominated, so the O(n) eviction scan is cheaper
/// than maintaining an ordered structure on every hit.
struct StmtCache {
    map: HashMap<String, (Arc<CachedStmt>, u64)>,
    tick: u64,
    capacity: usize,
}

impl StmtCache {
    fn new(capacity: usize) -> StmtCache {
        StmtCache {
            map: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, sql: &str) -> Option<Arc<CachedStmt>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(sql).map(|(cached, last_used)| {
            *last_used = tick;
            Arc::clone(cached)
        })
    }

    fn insert(&mut self, sql: String, cached: Arc<CachedStmt>) {
        if self.map.len() >= self.capacity && !self.map.contains_key(&sql) {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        self.tick += 1;
        self.map.insert(sql, (cached, self.tick));
    }

    /// Drop every plan that references any of the given (lowercased)
    /// object names.
    fn invalidate(&mut self, objects: &[String]) {
        if objects.is_empty() {
            return;
        }
        self.map
            .retain(|_, (cached, _)| !cached.objects.iter().any(|o| objects.contains(o)));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

struct DbInner {
    name: String,
    /// Unique instance tag (see [`GLOBAL_DB_TAG`]).
    tag: u64,
    /// The write-ahead log, when this database is durable.
    wal: Option<Wal>,
    /// The paged storage engine, when this database was opened with
    /// [`Database::open_paged`]. MVCC version chains stay the in-memory
    /// representation; the engine is consulted only at checkpoint (dirty
    /// page flush) and open (base image + repair).
    paged: Option<Arc<PagedEngine>>,
    /// 1 when this instance was born from [`Database::recover`].
    recovery_counter: AtomicU64,
    /// Torn-tail bytes the recovery scan dropped from the log.
    torn_tail_counter: AtomicU64,
    /// In-doubt transactions resolved to commit / abort when this
    /// instance was recovered (see [`Database::recover_resolving`]).
    in_doubt_commit_counter: AtomicU64,
    in_doubt_abort_counter: AtomicU64,
    catalog: RwLock<Catalog>,
    stmt_cache: Mutex<StmtCache>,
    stmt_counter: AtomicU64,
    rows_counter: AtomicU64,
    conn_counter: AtomicU64,
    parse_counter: AtomicU64,
    cache_hit_counter: AtomicU64,
    cache_miss_counter: AtomicU64,
    /// Bumped by every statement-cache invalidation; connection-local
    /// statement memos compare it to discard stale entries without ever
    /// touching the global cache mutex on the hit path.
    cache_generation: AtomicU64,
    /// The installed fault injector, if any. The same `Arc` is mirrored
    /// into the catalog so executor apply loops can reach it; this copy
    /// serves the per-statement gate without touching the catalog lock.
    injector: Mutex<Option<Arc<FaultInjector>>>,
    /// Fault/tick counts carried over from injectors replaced by
    /// [`Database::set_fault_plan`], so stats stay cumulative.
    faults_base: AtomicU64,
    ticks_base: AtomicU64,
    retry_counter: AtomicU64,
    rollback_counter: AtomicU64,
    breaker_counter: AtomicU64,
    /// Shared MVCC state (GC watermark + counters), also attached to
    /// every table in the catalog so storage-level trims can see the
    /// oldest-active-snapshot floor without reaching back up here.
    mvcc: Arc<MvccShared>,
    /// Active read snapshots: commit timestamp → number of holders. The
    /// smallest key is the GC floor; versions superseded before it are
    /// unreachable. This mutex also fences commit stamping: a commit
    /// timestamp is allocated *and stored* under it, so a snapshot never
    /// observes a half-stamped commit (all of a transaction's versions
    /// share one stamp cell, made visible by a single atomic store).
    snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Latest committed timestamp. Starts at 1 (the bootstrap stamp) so
    /// the first real commit gets 2.
    commit_clock: AtomicU64,
    snapshot_counter: AtomicU64,
    /// Commits since the last auto-GC sweep (see `maybe_gc`).
    commits_since_gc: AtomicU64,
    gc_due: AtomicBool,
    /// Benchmark A/B knob: `true` restores the PR 5 lock shape (WAL
    /// append under the statement-long exclusive table guard) on the
    /// fast write paths. Data stays fully versioned either way — only
    /// the contention profile changes. Set before the workload, not
    /// mid-flight.
    legacy_locking: AtomicBool,
}

/// A named in-memory database. Cloning is cheap (`Arc`); all clones see
/// the same data.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.inner.name)
            .finish_non_exhaustive()
    }
}

/// Bound on distinct statement texts kept parsed. Workflow deployments
/// run a small, fixed set of statements per activity, so this is generous;
/// ad-hoc floods (e.g. SQL with inlined literals) evict in LRU order.
const STMT_CACHE_CAPACITY: usize = 256;

impl Database {
    fn build(name: String, wal: Option<Wal>, paged: Option<Arc<PagedEngine>>) -> Database {
        let catalog = Catalog::new();
        let mvcc = Arc::clone(catalog.mvcc());
        Database {
            inner: Arc::new(DbInner {
                name,
                tag: GLOBAL_DB_TAG.fetch_add(1, Ordering::Relaxed),
                wal,
                paged,
                recovery_counter: AtomicU64::new(0),
                torn_tail_counter: AtomicU64::new(0),
                in_doubt_commit_counter: AtomicU64::new(0),
                in_doubt_abort_counter: AtomicU64::new(0),
                catalog: RwLock::new(catalog),
                stmt_cache: Mutex::new(StmtCache::new(STMT_CACHE_CAPACITY)),
                stmt_counter: AtomicU64::new(0),
                rows_counter: AtomicU64::new(0),
                conn_counter: AtomicU64::new(0),
                parse_counter: AtomicU64::new(0),
                cache_hit_counter: AtomicU64::new(0),
                cache_miss_counter: AtomicU64::new(0),
                cache_generation: AtomicU64::new(0),
                injector: Mutex::new(None),
                faults_base: AtomicU64::new(0),
                ticks_base: AtomicU64::new(0),
                retry_counter: AtomicU64::new(0),
                rollback_counter: AtomicU64::new(0),
                breaker_counter: AtomicU64::new(0),
                mvcc,
                snapshots: Mutex::new(BTreeMap::new()),
                commit_clock: AtomicU64::new(1),
                snapshot_counter: AtomicU64::new(0),
                commits_since_gc: AtomicU64::new(0),
                gc_due: AtomicBool::new(false),
                legacy_locking: AtomicBool::new(false),
            }),
        }
    }

    /// Create an empty, purely in-memory database (no durability).
    pub fn new(name: impl Into<String>) -> Database {
        Database::build(name.into(), None, None)
    }

    /// Create an empty database whose writes are logged to `store`.
    /// The store is assumed empty (or disposable): use
    /// [`Database::recover`] to resurrect an existing log.
    pub fn with_wal(name: impl Into<String>, store: Arc<dyn LogStore>) -> Database {
        Database::build(name.into(), Some(Wal::new(store, 1, 1)), None)
    }

    /// Open (or create) a file-backed durable database: recovers whatever
    /// the log at `path` holds — nothing, a clean history, or the torn
    /// tail of a crash — and continues logging to it.
    pub fn open_durable(
        name: impl Into<String>,
        path: impl Into<std::path::PathBuf>,
    ) -> SqlResult<Database> {
        Database::recover(name, Arc::new(FileLogStore::new(path)))
    }

    /// Rebuild a database from its log alone. The in-memory state of the
    /// instance that wrote the log is deliberately not consulted — this
    /// is the crash path. Replays committed transactions, rolls back
    /// uncommitted ones, discards any torn tail, then writes a fresh
    /// checkpoint so the log is compact going forward.
    pub fn recover(name: impl Into<String>, store: Arc<dyn LogStore>) -> SqlResult<Database> {
        // A standalone database has no coordinator to consult, so any
        // in-doubt 2PC transaction resolves by the presumed-abort rule.
        Database::recover_resolving(name, store, |_| Ok(false))
    }

    /// [`Database::recover`], but with a caller-supplied decision for
    /// in-doubt two-phase-commit transactions: `decide` is called once
    /// per prepared-but-undecided transaction found in the log and
    /// returns `true` to commit it (typically by consulting the 2PC
    /// coordinator's decision log — see `shard::ShardedDatabase`).
    /// Resolutions are appended to the log as ordinary `Commit`/`Abort`
    /// records before the post-recovery checkpoint, so the next recovery
    /// finds every transaction decided. An error from `decide` fails the
    /// whole recovery: guessing would break cross-shard atomicity.
    pub fn recover_resolving(
        name: impl Into<String>,
        store: Arc<dyn LogStore>,
        decide: impl FnMut(&wal::InDoubtTxn) -> SqlResult<bool>,
    ) -> SqlResult<Database> {
        let bytes = store.read_all()?;
        let mut outcome = wal::replay(&bytes);
        let in_doubt = std::mem::take(&mut outcome.in_doubt);
        let resolution = wal::resolve_in_doubt(&mut outcome.catalog, in_doubt, decide)?;
        let db = Database::build(
            name.into(),
            Some(Wal::new(store, outcome.next_lsn, outcome.next_txn)),
            None,
        );
        {
            let mut catalog = db.inner.catalog.write();
            *catalog = outcome.catalog;
            // The replayed catalog was built with its own MVCC state;
            // re-attach this instance's so the GC watermark and counters
            // the connections maintain reach the recovered tables.
            catalog.attach_mvcc(Arc::clone(&db.inner.mvcc));
        }
        if !resolution.records.is_empty() {
            let wal = db
                .inner
                .wal
                .as_ref()
                .expect("recovery always attaches a wal");
            wal.append(&resolution.records, wal::AppendMode::Full)?;
        }
        db.inner
            .in_doubt_commit_counter
            .store(resolution.committed, Ordering::Relaxed);
        db.inner
            .in_doubt_abort_counter
            .store(resolution.aborted, Ordering::Relaxed);
        db.inner.recovery_counter.store(1, Ordering::Relaxed);
        db.inner
            .torn_tail_counter
            .store(outcome.dropped_bytes, Ordering::Relaxed);
        db.checkpoint()?;
        Ok(db)
    }

    /// Open (or create) a disk-backed paged database rooted at `dir`:
    /// WAL in `dir/wal.log`, heap pages in `dir/pages.db`. See
    /// [`Database::open_paged`] for the recovery semantics. `pool_pages`
    /// bounds the buffer pool — tables larger than the pool spill to
    /// disk and are demand-paged back.
    pub fn open_paged_durable(
        name: impl Into<String>,
        dir: impl AsRef<std::path::Path>,
        pool_pages: usize,
    ) -> SqlResult<Database> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| SqlError::Transient(format!("page io: {e}")))?;
        Database::open_paged(
            name,
            Arc::new(FileLogStore::new(dir.join("wal.log"))),
            Arc::new(FilePageStore::new(dir.join("pages.db"))),
            pool_pages,
        )
    }

    /// Open (or create) a database over a paged heap-file store plus a
    /// WAL. Recovery loads the newest intact checkpoint epoch from the
    /// page store — rebuilding any checksum-failing page from the
    /// previous epoch + WAL redo instead of failing the whole database —
    /// then replays the WAL tail past the epoch's anchor. In-doubt 2PC
    /// transactions resolve by presumed abort, as in
    /// [`Database::recover`].
    pub fn open_paged(
        name: impl Into<String>,
        log_store: Arc<dyn LogStore>,
        page_store: Arc<dyn PageStore>,
        pool_pages: usize,
    ) -> SqlResult<Database> {
        Database::open_paged_resolving(name, log_store, page_store, pool_pages, |_| Ok(false))
    }

    /// [`Database::open_paged`] with a caller-supplied in-doubt decision,
    /// mirroring [`Database::recover_resolving`].
    pub fn open_paged_resolving(
        name: impl Into<String>,
        log_store: Arc<dyn LogStore>,
        page_store: Arc<dyn PageStore>,
        pool_pages: usize,
        decide: impl FnMut(&wal::InDoubtTxn) -> SqlResult<bool>,
    ) -> SqlResult<Database> {
        let engine = Arc::new(PagedEngine::open(page_store, pool_pages)?);
        let bytes = log_store.read_all()?;
        let scanned = wal::scan(&bytes);
        let base = engine.load_base(&scanned)?;
        let mut outcome =
            wal::replay_onto(base.catalog, base.catalog_epoch, &scanned, base.anchor_lsn);
        let in_doubt = std::mem::take(&mut outcome.in_doubt);
        let resolution = wal::resolve_in_doubt(&mut outcome.catalog, in_doubt, decide)?;
        let db = Database::build(
            name.into(),
            Some(Wal::new(log_store, outcome.next_lsn, outcome.next_txn)),
            Some(engine),
        );
        {
            let mut catalog = db.inner.catalog.write();
            *catalog = outcome.catalog;
            catalog.attach_mvcc(Arc::clone(&db.inner.mvcc));
        }
        if !resolution.records.is_empty() {
            let wal = db
                .inner
                .wal
                .as_ref()
                .expect("paged open always attaches a wal");
            wal.append(&resolution.records, wal::AppendMode::Full)?;
        }
        db.inner
            .in_doubt_commit_counter
            .store(resolution.committed, Ordering::Relaxed);
        db.inner
            .in_doubt_abort_counter
            .store(resolution.aborted, Ordering::Relaxed);
        db.inner.recovery_counter.store(1, Ordering::Relaxed);
        db.inner
            .torn_tail_counter
            .store(outcome.dropped_bytes, Ordering::Relaxed);
        // Fold the tail (and any repair) into a fresh epoch immediately,
        // so the store is compact and repaired extents are rewritten.
        db.checkpoint()?;
        Ok(db)
    }

    /// Is a write-ahead log attached?
    pub fn wal_enabled(&self) -> bool {
        self.inner.wal.is_some()
    }

    /// The attached log store, if any — tests keep a handle so they can
    /// recover from the bytes a "crashed" instance left behind.
    pub fn log_store(&self) -> Option<Arc<dyn LogStore>> {
        self.inner.wal.as_ref().map(|w| w.store())
    }

    /// Compact the log into a single catalog snapshot record.
    ///
    /// Requires quiescence: fails with a `txn` error while any explicit
    /// transaction has logged records without a terminator (its undo
    /// information lives only in the log being replaced). Auto-commit
    /// statements are invisible here — each is fully terminated by its
    /// own append.
    pub fn checkpoint(&self) -> SqlResult<()> {
        let Some(wal) = &self.inner.wal else {
            // Non-durable databases have no log to compact, but the
            // version-chain sweep still runs so delete-heavy in-memory
            // workloads reclaim superseded versions and tombstones.
            let catalog = self.inner.catalog.write();
            catalog.gc_tables(self.inner.mvcc.floor.load(Ordering::Acquire));
            return Ok(());
        };
        let catalog = self.inner.catalog.write();
        // Check the prepared window first: a prepared transaction also
        // counts as active (its `Prepare` is not a terminator), but it
        // deserves the sharper error — its fate belongs to the 2PC
        // coordinator, and a checkpoint here would bake an undecided
        // transaction into the snapshot.
        if wal.prepared_txns() > 0 {
            return Err(SqlError::Txn(
                "cannot checkpoint while a two-phase commit participant is prepared (in-doubt window)"
                    .into(),
            ));
        }
        if wal.active_txns() > 0 {
            return Err(SqlError::Txn(
                "cannot checkpoint while explicit transactions are open".into(),
            ));
        }
        // Reclaim versions below the oldest-active-snapshot watermark
        // before serializing: the checkpoint image carries only the
        // newest committed version of each row anyway.
        catalog.gc_tables(self.inner.mvcc.floor.load(Ordering::Acquire));
        let injector = self.inner.injector.lock().clone();
        if let Some(engine) = &self.inner.paged {
            // Paged checkpoint: incremental dirty-page flush + metadata
            // flip + WAL head truncation, instead of a whole-catalog
            // snapshot record. The dirty set is derived from the WAL
            // tail — every mutation is logged anyway, so the log *is*
            // the dirty tracking.
            let anchor = wal.last_lsn();
            let scanned = wal::scan(&wal.store().read_all()?);
            let dirty = pager::dirty_tables(&scanned, engine.anchor());
            if let Some(inj) = &injector {
                if inj.frozen() {
                    return Err(crashed_error());
                }
                if inj.on_checkpoint() {
                    // Crash mid-checkpoint: some new-epoch data pages
                    // land, the metadata flip never happens, and the
                    // process freezes. Recovery falls back to the old
                    // epoch + the (sealed) WAL tail.
                    engine.checkpoint(&catalog, anchor, &dirty, true)?;
                    wal.seal();
                    inj.deliver_crash();
                    return Err(crashed_error());
                }
            }
            engine.checkpoint(&catalog, anchor, &dirty, false)?;
            // Only after the flip is durable may the log shed history —
            // and it keeps everything past the *previous* anchor, the
            // window torn-page repair replays.
            return wal.truncate_before(engine.retain_after());
        }
        if let Some(inj) = &injector {
            if inj.frozen() {
                return Err(crashed_error());
            }
            if inj.on_checkpoint() {
                // Crash mid-checkpoint: half of the snapshot record lands
                // *appended* after the intact history (modelling death
                // before the atomic swap), then the process freezes.
                // Recovery must fall back to the pre-checkpoint history.
                wal.write_checkpoint(&catalog, true)?;
                inj.deliver_crash();
                return Err(crashed_error());
            }
        }
        wal.write_checkpoint(&catalog, false)
    }

    /// Set the WAL group-commit flush window, in scheduler yields a
    /// commit leader holds the window open for concurrent arrivals to
    /// coalesce into one physical append. 0 (the default) appends each
    /// statement's records directly — single-threaded behavior is
    /// byte-identical either way; only the append *batching* changes.
    /// No-op on a non-durable database.
    pub fn set_group_commit_window(&self, window: u64) {
        if let Some(wal) = &self.inner.wal {
            wal.set_group_window(window);
        }
    }

    /// Install a fault plan (or clear it with `None`). Replacing an
    /// injector folds its delivered-fault and virtual-clock counts into
    /// the database totals, so [`DbStats`] stays cumulative.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let injector = plan.map(|p| Arc::new(FaultInjector::new(p)));
        self.inner
            .catalog
            .write()
            .set_fault_injector(injector.clone());
        if let Some(engine) = &self.inner.paged {
            // Mirror into the pager so scripted PageFaults reach disk I/O.
            engine.set_injector(injector.clone());
        }
        let mut slot = self.inner.injector.lock();
        if let Some(old) = slot.take() {
            self.inner
                .faults_base
                .fetch_add(old.injected(), Ordering::Relaxed);
            self.inner
                .ticks_base
                .fetch_add(old.ticks(), Ordering::Relaxed);
        }
        *slot = injector;
    }

    /// The installed fault injector, if any — the retry layer shares its
    /// virtual clock so backoff and slow queries live on one timeline.
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.inner.injector.lock().clone()
    }

    /// Virtual-clock reading: ticks accumulated by slow-query faults
    /// (cumulative across plan swaps).
    pub fn fault_ticks(&self) -> u64 {
        let live = self
            .inner
            .injector
            .lock()
            .as_ref()
            .map(|i| i.ticks())
            .unwrap_or(0);
        self.inner.ticks_base.load(Ordering::Relaxed) + live
    }

    /// Record that a client retried a statement after a transient fault.
    /// Called by the recovery layer (flowcore and the product stacks).
    pub fn note_retry(&self) {
        self.inner.retry_counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a client's circuit breaker tripped open for this
    /// database.
    pub fn note_breaker_trip(&self) {
        self.inner.breaker_counter.fetch_add(1, Ordering::Relaxed);
    }

    fn note_rollback(&self) {
        self.inner.rollback_counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Register a read snapshot at the current commit timestamp. Returns
    /// the snapshot timestamp and a fresh write stamp (0 = uncommitted)
    /// for any versions written under it. Taken under the registry mutex
    /// so a concurrent commit is either fully stamped before the
    /// timestamp is read or gets a strictly later timestamp.
    fn register_snapshot(&self) -> (u64, TxnStamp) {
        let mut reg = self.inner.snapshots.lock();
        let ts = self.inner.commit_clock.load(Ordering::Acquire).max(1);
        *reg.entry(ts).or_insert(0) += 1;
        if let Some(&floor) = reg.keys().next() {
            self.inner.mvcc.floor.store(floor, Ordering::Release);
        }
        drop(reg);
        self.inner.snapshot_counter.fetch_add(1, Ordering::Relaxed);
        (ts, new_stamp())
    }

    /// Release a snapshot registration and advance the GC floor to the
    /// new oldest-active snapshot (`u64::MAX` when none are active).
    fn release_snapshot(&self, ts: u64) {
        let mut reg = self.inner.snapshots.lock();
        if let Some(n) = reg.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                reg.remove(&ts);
            }
        }
        let floor = reg.keys().next().copied().unwrap_or(u64::MAX);
        self.inner.mvcc.floor.store(floor, Ordering::Release);
    }

    /// The commit point: allocate the next commit timestamp and store it
    /// into `stamp`, making every row version written under that stamp
    /// visible in one atomic step. Runs under the registry mutex (see
    /// `snapshots`) and must only be called once the statement's WAL
    /// append — its durability point — has been acknowledged.
    fn commit_stamp(&self, stamp: &TxnStamp) {
        let reg = self.inner.snapshots.lock();
        let ts = self.inner.commit_clock.fetch_add(1, Ordering::AcqRel) + 1;
        stamp.store(ts, Ordering::Release);
        drop(reg);
        const GC_COMMIT_INTERVAL: u64 = 256;
        if self.inner.commits_since_gc.fetch_add(1, Ordering::Relaxed) % GC_COMMIT_INTERVAL
            == GC_COMMIT_INTERVAL - 1
        {
            self.inner.gc_due.store(true, Ordering::Release);
        }
    }

    /// Periodic version-chain sweep, run from statement entry points with
    /// no locks held. Inline trims keep actively updated chains short;
    /// this pass reclaims chains that stopped being written (including
    /// committed delete tombstones, which only a sweep can remove).
    fn maybe_gc(&self) {
        if !self.inner.gc_due.swap(false, Ordering::AcqRel) {
            return;
        }
        let floor = self.inner.mvcc.floor.load(Ordering::Acquire);
        let catalog = self.inner.catalog.read();
        catalog.gc_tables(floor);
    }

    /// Restore the PR 5 lock shape (WAL append under the statement-long
    /// exclusive table guard) on the fast write paths — a benchmark A/B
    /// knob. Rows stay versioned either way; only contention changes.
    pub fn set_legacy_locking(&self, on: bool) {
        self.inner.legacy_locking.store(on, Ordering::Release);
    }

    fn legacy_locking(&self) -> bool {
        self.inner.legacy_locking.load(Ordering::Acquire)
    }

    /// Fetch (or parse and cache) the plan for one statement text.
    ///
    /// Every `execute`/`query`/`prepare` call funnels through here, so a
    /// statement text is parsed at most once until DDL invalidates it or
    /// LRU pressure evicts it. DDL and transaction control are parsed but
    /// not cached: they are not hot, and caching them would let a `DROP`
    /// outlive its own invalidation.
    pub(crate) fn cached_statement(&self, sql: &str) -> SqlResult<Arc<CachedStmt>> {
        // Transaction control is hot on the write path — every
        // transaction utters a BEGIN and a COMMIT — yet deliberately
        // uncacheable. Recognize the bare keywords without invoking the
        // parser; anything fancier ("BEGIN TRANSACTION") still parses.
        let trimmed = sql.trim().trim_end_matches(';').trim_end();
        let txn_ctl = if trimmed.eq_ignore_ascii_case("BEGIN") {
            Some(Statement::Begin)
        } else if trimmed.eq_ignore_ascii_case("COMMIT") {
            Some(Statement::Commit)
        } else if trimmed.eq_ignore_ascii_case("ROLLBACK") {
            Some(Statement::Rollback)
        } else {
            None
        };
        if let Some(stmt) = txn_ctl {
            return Ok(Arc::new(CachedStmt {
                objects: Vec::new(),
                stmt,
                plan: Mutex::new(None),
            }));
        }
        if let Some(hit) = self.inner.stmt_cache.lock().get(sql) {
            self.inner.cache_hit_counter.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.inner
            .cache_miss_counter
            .fetch_add(1, Ordering::Relaxed);
        self.inner.parse_counter.fetch_add(1, Ordering::Relaxed);
        let stmt = parse_statement(sql)?;
        let cached = Arc::new(CachedStmt {
            objects: stmt.referenced_objects(),
            stmt,
            plan: Mutex::new(None),
        });
        let cacheable = !matches!(
            cached.stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) && !cached.stmt.is_ddl();
        if cacheable {
            self.inner
                .stmt_cache
                .lock()
                .insert(sql.to_string(), Arc::clone(&cached));
        }
        Ok(cached)
    }

    /// Evict cached plans referencing any of the given object names
    /// (already lowercased). Called after DDL executes or rolls back.
    fn invalidate_statements(&self, objects: &[String]) {
        self.inner.stmt_cache.lock().invalidate(objects);
        self.inner.cache_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of statements currently held by the statement cache.
    pub fn stmt_cache_len(&self) -> usize {
        self.inner.stmt_cache.lock().len()
    }

    /// The database name (used by connection strings in the workflow layers).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Open a connection.
    pub fn connect(&self) -> Connection {
        let id = self.inner.conn_counter.fetch_add(1, Ordering::Relaxed) + 1;
        Connection {
            db: self.clone(),
            id,
            txn: std::cell::RefCell::new(None),
            txn_stamp: std::cell::RefCell::new(None),
            temp_tables: std::cell::RefCell::new(Vec::new()),
            stmt_memo: std::cell::RefCell::new(StmtMemo::default()),
            wal_txn: std::cell::Cell::new(None),
            prepared: std::cell::Cell::new(false),
            batch: std::cell::RefCell::new(crate::exec::batch::BatchScratch::default()),
        }
    }

    /// Sorted table names (catalog introspection).
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().table_names()
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.catalog.read().has_table(name)
    }

    /// Number of rows in a table.
    pub fn table_len(&self, name: &str) -> SqlResult<usize> {
        Ok(self.inner.catalog.read().table(name)?.len())
    }

    /// Engine counters. Cheap but *racy* under concurrent load: each
    /// counter is read independently, so a statement in flight on
    /// another thread may be half-reflected. Use [`Database::snapshot`]
    /// when the numbers must be mutually consistent.
    pub fn stats(&self) -> DbStats {
        let catalog = self.inner.catalog.read();
        self.stats_from(&catalog)
    }

    /// Consistent point-in-time counters: briefly acquires the exclusive
    /// catalog-shape lock, which waits out every in-flight statement, so
    /// no counter reflects half of anything. Used by benchmarks and
    /// differential tests; for monitoring-style reads prefer
    /// [`Database::stats`].
    pub fn snapshot(&self) -> DbStats {
        let catalog = self.inner.catalog.write();
        self.stats_from(&catalog)
    }

    fn stats_from(&self, catalog: &Catalog) -> DbStats {
        DbStats {
            statements_executed: self.inner.stmt_counter.load(Ordering::Relaxed),
            rows_returned: self.inner.rows_counter.load(Ordering::Relaxed),
            index_scans: catalog.index_scans(),
            full_scans: catalog.full_scans(),
            parses: self.inner.parse_counter.load(Ordering::Relaxed),
            stmt_cache_hits: self.inner.cache_hit_counter.load(Ordering::Relaxed),
            stmt_cache_misses: self.inner.cache_miss_counter.load(Ordering::Relaxed),
            range_scans: catalog.range_scans(),
            plan_binds: catalog.plan_binds(),
            bound_evals: catalog.bound_evals(),
            topk_sorts: catalog.topk_sorts(),
            batch_evals: catalog.batch_evals(),
            batched_rows: catalog.batched_rows(),
            hash_aggs: catalog.hash_aggs(),
            full_scan_rows: catalog.full_scan_rows(),
            hash_joins: catalog.hash_joins(),
            index_nl_joins: catalog.index_nl_joins(),
            join_build_rows: catalog.join_build_rows(),
            join_probe_rows: catalog.join_probe_rows(),
            pushed_predicates: catalog.pushed_predicates(),
            faults_injected: self.inner.faults_base.load(Ordering::Relaxed)
                + self
                    .inner
                    .injector
                    .lock()
                    .as_ref()
                    .map(|i| i.injected())
                    .unwrap_or(0),
            retries: self.inner.retry_counter.load(Ordering::Relaxed),
            rollbacks: self.inner.rollback_counter.load(Ordering::Relaxed),
            breaker_trips: self.inner.breaker_counter.load(Ordering::Relaxed),
            wal_appends: self.inner.wal.as_ref().map(|w| w.appends()).unwrap_or(0),
            wal_bytes: self
                .inner
                .wal
                .as_ref()
                .map(|w| w.bytes_written())
                .unwrap_or(0),
            wal_commits: self.inner.wal.as_ref().map(|w| w.commits()).unwrap_or(0),
            checkpoints: self
                .inner
                .wal
                .as_ref()
                .map(|w| w.checkpoints())
                .unwrap_or(0),
            wal_prepares: self.inner.wal.as_ref().map(|w| w.prepares()).unwrap_or(0),
            prepared_txns: self
                .inner
                .wal
                .as_ref()
                .map(|w| w.prepared_txns())
                .unwrap_or(0),
            in_doubt_commits: self.inner.in_doubt_commit_counter.load(Ordering::Relaxed),
            in_doubt_aborts: self.inner.in_doubt_abort_counter.load(Ordering::Relaxed),
            recoveries: self.inner.recovery_counter.load(Ordering::Relaxed),
            snapshots_taken: self.inner.snapshot_counter.load(Ordering::Relaxed),
            version_chains_walked: self.inner.mvcc.chains_walked.load(Ordering::Relaxed),
            versions_gced: self.inner.mvcc.versions_gced.load(Ordering::Relaxed),
            torn_tails_dropped: self.inner.torn_tail_counter.load(Ordering::Relaxed),
            pages_repaired: self
                .inner
                .paged
                .as_ref()
                .map(|e| e.pages_repaired())
                .unwrap_or(0),
            pool_evictions: self
                .inner
                .paged
                .as_ref()
                .map(|e| e.pool().evictions())
                .unwrap_or(0),
            pool_hits: self
                .inner
                .paged
                .as_ref()
                .map(|e| e.pool().hits())
                .unwrap_or(0),
            pool_misses: self
                .inner
                .paged
                .as_ref()
                .map(|e| e.pool().misses())
                .unwrap_or(0),
        }
    }

    /// Two handles to the same database?
    pub fn same_as(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Name part of a DSN: `sqlkernel://name`, or a bare name.
    fn dsn_name(dsn: &str) -> &str {
        dsn.strip_prefix("sqlkernel://").unwrap_or(dsn)
    }

    /// Open the shared in-memory database named by `dsn`, creating it on
    /// first use. Every `open` of the same name returns a handle to the
    /// same engine, so independent components (the product stacks) share
    /// one database instead of maintaining ad-hoc registries.
    pub fn open(dsn: &str) -> Database {
        let name = Database::dsn_name(dsn);
        let mut reg = shared_registry().lock();
        if let Some(db) = reg.get(name) {
            return db.clone();
        }
        let db = Database::new(name);
        reg.insert(name.to_string(), db.clone());
        db
    }

    /// Fetch the shared database named by `dsn` if some component has
    /// already opened or published it. Never creates — callers that want
    /// creation-on-miss use [`Database::open`].
    pub fn lookup(dsn: &str) -> Option<Database> {
        shared_registry()
            .lock()
            .get(Database::dsn_name(dsn))
            .cloned()
    }

    /// [`Database::lookup`], but registry failure (a panic while the
    /// registry lock was held — e.g. a crashed shard thread) surfaces as
    /// a [`DbError`](crate::DbError) instead of propagating, so one dead
    /// stack cannot wedge the others' resolvers. `Ok(None)` still means
    /// "no such database".
    pub fn try_lookup(dsn: &str) -> SqlResult<Option<Database>> {
        let name = Database::dsn_name(dsn).to_string();
        std::panic::catch_unwind(move || shared_registry().lock().get(name.as_str()).cloned())
            .map_err(|_| {
                SqlError::Connection(
                    "database registry unavailable (lock poisoned by a crashed thread)".into(),
                )
            })
    }

    /// [`Database::open`], but registry failure surfaces as a
    /// [`DbError`](crate::DbError) instead of propagating (see
    /// [`Database::try_lookup`]).
    pub fn try_open(dsn: &str) -> SqlResult<Database> {
        let dsn = dsn.to_string();
        std::panic::catch_unwind(move || Database::open(&dsn)).map_err(|_| {
            SqlError::Connection(
                "database registry unavailable (lock poisoned by a crashed thread)".into(),
            )
        })
    }

    /// Publish this handle under its name so other components can reach
    /// it via [`Database::open`]/[`Database::lookup`] — e.g. a durable
    /// database created with [`Database::open_durable`]. Replaces any
    /// previous entry under the same name.
    pub fn publish(&self) {
        shared_registry()
            .lock()
            .insert(self.inner.name.clone(), self.clone());
    }

    /// Remove a name from the shared registry, returning the handle if
    /// one was registered. Existing handles stay fully usable.
    pub fn unpublish(dsn: &str) -> Option<Database> {
        shared_registry().lock().remove(Database::dsn_name(dsn))
    }
}

/// Process-wide registry backing [`Database::open`]: name → shared handle.
fn shared_registry() -> &'static Mutex<HashMap<String, Database>> {
    static REGISTRY: std::sync::OnceLock<Mutex<HashMap<String, Database>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A pre-parsed statement, reusable with different `?` bindings. The
/// plan is shared with the statement cache, so `prepare` + `execute` of
/// the same text costs one parse total.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub(crate) cached: Arc<CachedStmt>,
    sql: String,
}

impl Prepared {
    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The statement verb (for audit trails).
    pub fn verb(&self) -> &'static str {
        self.cached.stmt.verb()
    }
}

/// Entries a connection keeps out of the global statement cache's way.
/// `generation` is the database cache generation the entries were taken
/// at; a mismatch means DDL ran somewhere and everything here is suspect.
#[derive(Debug, Default)]
struct StmtMemo {
    generation: u64,
    entries: HashMap<String, Arc<CachedStmt>>,
}

/// Per-connection memo bound: plenty for a workflow instance's statement
/// repertoire, small enough that clearing on overflow is painless.
const STMT_MEMO_CAPACITY: usize = 64;

/// A connection: the unit of transaction scope and temp-table ownership.
///
/// Connections are intentionally *not* `Sync`; each workflow instance in
/// the layers above owns its connections. Open transactions are rolled
/// back and temporary tables dropped when the connection is dropped.
pub struct Connection {
    db: Database,
    id: u64,
    txn: std::cell::RefCell<Option<UndoLog>>,
    /// Write stamp and snapshot timestamp of the open explicit
    /// transaction: every statement inside BEGIN…COMMIT reads the same
    /// snapshot (repeatable read) and writes under the same stamp, which
    /// `COMMIT` stores the commit timestamp into at the WAL-ack point.
    txn_stamp: std::cell::RefCell<Option<(TxnStamp, u64)>>,
    temp_tables: std::cell::RefCell<Vec<String>>,
    /// Connection-local statement memo: repeat executions of the same
    /// text skip the global statement-cache mutex entirely. Entries are
    /// discarded wholesale whenever the database's cache generation
    /// moves (any DDL), so a memoized plan can never outlive the schema
    /// it was parsed against.
    stmt_memo: std::cell::RefCell<StmtMemo>,
    /// WAL transaction id of the open explicit transaction, allocated
    /// lazily on its first logged write (read-only transactions never
    /// touch the log).
    wal_txn: std::cell::Cell<Option<u64>>,
    /// True while this connection's open transaction sits in the 2PC
    /// prepared window: a `Prepare` record is on the log and the vote is
    /// cast, so only `COMMIT` / `ROLLBACK` (phase 2) may follow.
    prepared: std::cell::Cell<bool>,
    /// Reusable batch-execution buffers (selection vector, group keys,
    /// aggregate values). Never re-entered: compiled plans delegate
    /// subqueries to the interpreter, not to another compiled plan.
    batch: std::cell::RefCell<crate::exec::batch::BatchScratch>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("db", &self.db.name())
            .field("id", &self.id)
            .field("in_txn", &self.in_transaction())
            .finish()
    }
}

/// RAII around one statement's MVCC snapshot. Installs the thread-local
/// snapshot scope so storage resolves row visibility against it, and —
/// for a per-statement (autocommit) snapshot — releases the registry
/// entry on drop. Inert when the thread already runs under a snapshot
/// (nested execution: CALL bodies, delegated interpreter runs): the
/// outer scope rules, and this ctx merely reuses its stamp.
struct SnapshotCtx<'a> {
    /// `Some` when this ctx owns a registry entry to release.
    db: Option<&'a Database>,
    ts: u64,
    stamp: TxnStamp,
    scope: Option<SnapshotScope>,
}

impl SnapshotCtx<'_> {
    /// The write stamp for versions created under this snapshot.
    fn stamp(&self) -> TxnStamp {
        Arc::clone(&self.stamp)
    }
}

impl Drop for SnapshotCtx<'_> {
    fn drop(&mut self) {
        // Uninstall the thread-local scope before releasing the registry
        // entry, so no reader can resolve against a released snapshot.
        self.scope.take();
        if let Some(db) = self.db {
            db.release_snapshot(self.ts);
        }
    }
}

impl Connection {
    /// The owning database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Establish the snapshot this statement reads under: the enclosing
    /// scope's when nested, the transaction's under BEGIN…COMMIT, or a
    /// freshly registered per-statement snapshot in autocommit.
    fn snapshot_ctx(&self) -> SnapshotCtx<'_> {
        if let Some(outer) = crate::storage::current_snapshot() {
            return SnapshotCtx {
                db: None,
                ts: outer.ts,
                stamp: outer.stamp,
                scope: None,
            };
        }
        if let Some((stamp, ts)) = self.txn_stamp.borrow().clone() {
            let scope = enter_snapshot(Snapshot {
                ts,
                stamp: Arc::clone(&stamp),
            });
            return SnapshotCtx {
                db: None,
                ts,
                stamp,
                scope: Some(scope),
            };
        }
        let (ts, stamp) = self.db.register_snapshot();
        let scope = enter_snapshot(Snapshot {
            ts,
            stamp: Arc::clone(&stamp),
        });
        SnapshotCtx {
            db: Some(&self.db),
            ts,
            stamp,
            scope: Some(scope),
        }
    }

    /// Connection id (unique within the database).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Is an explicit transaction open?
    pub fn in_transaction(&self) -> bool {
        self.txn.borrow().is_some()
    }

    /// Parse without executing. The plan lands in (or comes from) the
    /// database-wide statement cache.
    pub fn prepare(&self, sql: &str) -> SqlResult<Prepared> {
        Ok(Prepared {
            cached: self.db.cached_statement(sql)?,
            sql: sql.to_string(),
        })
    }

    /// Fault-injection gate: every statement entering through the public
    /// execution surface passes here exactly once. Transaction control is
    /// never gated — failing a `COMMIT`/`ROLLBACK` artificially would
    /// corrupt the very atomicity semantics the chaos layer exists to
    /// test, and `BEGIN` is pure bookkeeping.
    fn fault_gate(&self, stmt: &Statement) -> SqlResult<()> {
        if matches!(
            stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Ok(());
        }
        let injector = self.db.inner.injector.lock().clone();
        match injector {
            Some(inj) => inj.on_statement(),
            None => Ok(()),
        }
    }

    /// Was this abort caused by the fault layer (injected transient or a
    /// contained panic)? Such aborts also invalidate the statement's
    /// compiled-plan slot: the plan may have been bound mid-flight, and
    /// a defensive re-bind on the next use is cheap insurance.
    fn fault_aborted(e: &SqlError) -> bool {
        matches!(e, SqlError::Transient(_))
            || matches!(e, SqlError::Runtime(m) if m.starts_with("statement panicked"))
    }

    /// Drop the compiled-plan slot of `cached` so the next execution
    /// re-binds against the current catalog.
    fn invalidate_plan_slot(cached: &CachedStmt) {
        *cached.plan.lock() = None;
    }

    /// Is this `INSERT` eligible for the fast path (shared shape lock,
    /// exclusive only on its target table)? Requires a `VALUES` source —
    /// `INSERT ... SELECT` reads other tables — with every expression
    /// subquery-free, so execution never re-enters the table map while
    /// the target's guard is held.
    fn insert_is_fast(stmt: &crate::ast::InsertStmt) -> bool {
        match &stmt.source {
            crate::ast::InsertSource::Values(rows) => rows
                .iter()
                .all(|row| row.iter().all(|e| !e.contains_subquery())),
            crate::ast::InsertSource::Select(_) => false,
        }
    }

    /// Convert a caught panic payload into a clean engine error.
    fn panic_error(payload: Box<dyn std::any::Any + Send>) -> SqlError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        SqlError::Runtime(format!("statement panicked: {msg}"))
    }

    /// Execute one statement, parsing it at most once per distinct text
    /// (the plan is reused from the statement cache on repeat calls).
    pub fn execute(&self, sql: &str, params: &[Value]) -> SqlResult<StatementResult> {
        let cached = self.memoized_statement(sql)?;
        self.fault_gate(&cached.stmt)?;
        let mark = crate::catalog::draw_mark();
        let result = self.execute_cached(&cached, params);
        self.settle_draws(mark, result.is_err());
        self.db.maybe_gc();
        result
    }

    /// Settle this statement's `NEXTVAL` draws once it resolves: a
    /// failed statement gives the values back immediately (statement
    /// atomicity covers sequence cursors, not just rows); a successful
    /// one inside an open transaction parks them in the transaction's
    /// undo log so a later ROLLBACK returns them too. Committed draws
    /// are simply dropped.
    fn settle_draws(&self, mark: usize, failed: bool) {
        let draws = crate::catalog::drain_draws(mark);
        if draws.is_empty() {
            return;
        }
        if failed {
            self.db.inner.catalog.read().undo_draws(&draws);
        } else if let Some(txn) = self.txn.borrow_mut().as_mut() {
            for (name, drawn) in draws {
                txn.record(UndoOp::SequenceDraw { name, drawn });
            }
        }
    }

    /// Resolve a statement text through the connection-local memo first,
    /// falling back to the database-wide cache on a miss. A memo hit
    /// costs one atomic load and a hash lookup — no global mutex — which
    /// is what keeps N workers executing the same prepared texts from
    /// convoying on statement-cache bookkeeping.
    fn memoized_statement(&self, sql: &str) -> SqlResult<Arc<CachedStmt>> {
        let generation = self.db.inner.cache_generation.load(Ordering::Relaxed);
        {
            let mut memo = self.stmt_memo.borrow_mut();
            if memo.generation != generation {
                memo.generation = generation;
                memo.entries.clear();
            } else if let Some(hit) = memo.entries.get(sql) {
                self.db
                    .inner
                    .cache_hit_counter
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
        }
        let cached = self.db.cached_statement(sql)?;
        // Mirror the global cache's policy: DDL and transaction control
        // stay out, so a memoized `DROP` can never dodge invalidation.
        let memoable = !matches!(
            cached.stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) && !cached.stmt.is_ddl();
        if memoable {
            let mut memo = self.stmt_memo.borrow_mut();
            if memo.generation == generation {
                if memo.entries.len() >= STMT_MEMO_CAPACITY {
                    memo.entries.clear();
                }
                memo.entries.insert(sql.to_string(), Arc::clone(&cached));
            }
        }
        Ok(cached)
    }

    /// Execute a previously prepared statement.
    pub fn execute_prepared(
        &self,
        prepared: &Prepared,
        params: &[Value],
    ) -> SqlResult<StatementResult> {
        self.fault_gate(&prepared.cached.stmt)?;
        let mark = crate::catalog::draw_mark();
        let result = self.execute_cached(&prepared.cached, params);
        self.settle_draws(mark, result.is_err());
        self.db.maybe_gc();
        result
    }

    /// Run one DML statement once per parameter set, as a single atomic
    /// unit: one statement-cache resolution, one table (or catalog)
    /// lock acquisition, one undo scope, and one WAL append cover the
    /// whole batch. Either every set applies or none does — a failure on
    /// set *k* rolls back sets *0..k* too. Returns the total number of
    /// rows affected.
    ///
    /// This is the set-oriented path the workflow layers use to post N
    /// audit rows or advance N instances in one call, instead of paying
    /// per-statement locking and logging N times.
    pub fn execute_batch(&self, sql: &str, param_sets: &[Vec<Value>]) -> SqlResult<usize> {
        let mark = crate::catalog::draw_mark();
        let result = self.execute_batch_inner(sql, param_sets);
        self.settle_draws(mark, result.is_err());
        self.db.maybe_gc();
        result
    }

    fn execute_batch_inner(&self, sql: &str, param_sets: &[Vec<Value>]) -> SqlResult<usize> {
        if param_sets.is_empty() {
            return Err(SqlError::Semantic(
                "execute_batch requires at least one parameter set".into(),
            ));
        }
        let cached = self.memoized_statement(sql)?;
        if !matches!(
            cached.stmt,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        ) {
            return Err(SqlError::Semantic(
                "execute_batch supports only INSERT, UPDATE, and DELETE".into(),
            ));
        }
        self.fault_gate(&cached.stmt)?;
        self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
        let named: HashMap<String, Value> = HashMap::new();

        // Subquery-free single-table DML batches run on the fast path:
        // shared shape lock, exclusive only on the target table.
        let fast_table = match &cached.stmt {
            Statement::Insert(i) if Self::insert_is_fast(i) => Some(i.table.clone()),
            Statement::Update(u)
                if !u.assignments.iter().any(|(_, e)| e.contains_subquery())
                    && !u
                        .where_clause
                        .as_ref()
                        .is_some_and(|e| e.contains_subquery()) =>
            {
                Some(u.table.clone())
            }
            Statement::Delete(d)
                if !d
                    .where_clause
                    .as_ref()
                    .is_some_and(|e| e.contains_subquery()) =>
            {
                Some(d.table.clone())
            }
            _ => None,
        };

        if let Some(table_name) = fast_table {
            let catalog = self.db.inner.catalog.read();
            // Writer-writer serialization without excluding readers: one
            // write statement per table at a time.
            let _stmt = catalog.table_stmt(&table_name)?;
            let ctx = self.snapshot_ctx();
            let mut table = catalog.table_mut(&table_name)?;
            let mut scratch = UndoLog::with_stamp(ctx.stamp());
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut total = 0;
                for params in param_sets {
                    total += match &cached.stmt {
                        Statement::Insert(s) => crate::exec::dml::run_insert_on(
                            &catalog,
                            &mut table,
                            s,
                            params,
                            &named,
                            &mut scratch,
                        )?,
                        Statement::Update(s) => crate::exec::dml::run_update_on(
                            &catalog,
                            &mut table,
                            s,
                            params,
                            &named,
                            &mut scratch,
                        )?,
                        Statement::Delete(s) => crate::exec::dml::run_delete_on(
                            &catalog,
                            &mut table,
                            s,
                            params,
                            &named,
                            &mut scratch,
                        )?,
                        _ => unreachable!("verb checked above"),
                    };
                }
                Ok(total)
            }))
            .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
            return match result {
                Ok(total) => {
                    self.finish_fast_write(&catalog, &table_name, table, scratch, &ctx)?;
                    Ok(total)
                }
                Err(e) => {
                    // Batch atomicity: every already-applied set unwinds.
                    scratch.rollback_on_table(&mut table);
                    self.db.note_rollback();
                    Err(e)
                }
            };
        }

        // Subquery-bearing batch: the exclusive general path.
        let ctx = self.snapshot_ctx();
        let mut catalog = self.db.inner.catalog.write();
        let mut scratch = UndoLog::with_stamp(ctx.stamp());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut total = 0;
            for params in param_sets {
                total += match &cached.stmt {
                    Statement::Insert(s) => {
                        crate::exec::dml::run_insert(&catalog, s, params, &named, &mut scratch)?
                    }
                    Statement::Update(s) => {
                        crate::exec::dml::run_update(&catalog, s, params, &named, &mut scratch)?
                    }
                    Statement::Delete(s) => {
                        crate::exec::dml::run_delete(&catalog, s, params, &named, &mut scratch)?
                    }
                    _ => unreachable!("verb checked above"),
                };
            }
            Ok(total)
        }))
        .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
        match result {
            Ok(total) => {
                if let Err(e) = self.wal_log_statement(&catalog, &scratch) {
                    scratch.rollback(&mut catalog);
                    self.db.note_rollback();
                    return Err(e);
                }
                if let Some(txn) = self.txn.borrow_mut().as_mut() {
                    txn.absorb(scratch);
                } else {
                    self.db.commit_stamp(&ctx.stamp);
                }
                Ok(total)
            }
            Err(e) => {
                scratch.rollback(&mut catalog);
                self.db.note_rollback();
                Err(e)
            }
        }
    }

    /// Fetch the cached compiled plan for this statement, re-binding it
    /// if the catalog schema epoch moved (any DDL, including
    /// `CREATE INDEX` / `DROP INDEX`, bumps the epoch). Must be called
    /// with a catalog lock held so the epoch cannot move underneath.
    fn compiled_plan(&self, cached: &CachedStmt, catalog: &Catalog) -> Arc<CompiledPlan> {
        let epoch = catalog.epoch();
        let tag = self.db.inner.tag;
        let mut slot = cached.plan.lock();
        if let Some((bound_tag, bound_at, plan)) = slot.as_ref() {
            if *bound_tag == tag && *bound_at == epoch {
                return Arc::clone(plan);
            }
        }
        catalog.note_plan_bind();
        let plan = Arc::new(crate::plan::compile(catalog, &cached.stmt));
        *slot = Some((tag, epoch, Arc::clone(&plan)));
        plan
    }

    /// Log a successful mutating statement to the WAL, before its success
    /// is acknowledged to the caller. Must run while the statement's
    /// exclusive catalog lock is still held, so the after-images derived
    /// from the scratch undo log are exactly what the statement wrote.
    ///
    /// Auto-commit statements append `[Begin, ops…, Commit]` in one
    /// write; statements inside an explicit transaction append their ops
    /// under a lazily allocated transaction id whose `Commit`/`Abort`
    /// arrives with the `COMMIT`/`ROLLBACK` statement.
    ///
    /// Armed crash points fire here: `AfterLog` appends everything then
    /// kills the process (the statement is durable but its caller never
    /// learns); `MidApply` tears the final record mid-write (the log ends
    /// in garbage recovery must discard). An error return means the
    /// caller must treat the statement as failed and undo its in-memory
    /// effects.
    fn wal_log_statement(&self, catalog: &Catalog, scratch: &UndoLog) -> SqlResult<()> {
        self.wal_log_with(catalog, || wal::ops_from_undo(catalog, scratch.ops()))
    }

    /// Fast-path variant of [`Connection::wal_log_statement`]: derives
    /// the redo ops from the *held* table guard instead of re-entering
    /// the catalog's table map (which would self-deadlock). Everything
    /// else — crash points, transaction framing, group commit — is
    /// identical.
    fn wal_log_statement_on(
        &self,
        catalog: &Catalog,
        table: &Table,
        scratch: &UndoLog,
    ) -> SqlResult<()> {
        self.wal_log_with(catalog, || wal::ops_from_undo_on(table, scratch.ops()))
    }

    fn wal_log_with(
        &self,
        catalog: &Catalog,
        derive_ops: impl FnOnce() -> Vec<wal::WalOp>,
    ) -> SqlResult<()> {
        let injector = self.db.inner.injector.lock().clone();
        if let Some(inj) = &injector {
            if inj.frozen() {
                return Err(crashed_error());
            }
        }
        let armed = injector.as_ref().and_then(|i| i.take_armed_crash());
        let Some(wal) = self.db.inner.wal.as_ref() else {
            // No log attached: a crash point still kills the process —
            // there is simply nothing durable to come back to.
            if armed.is_some() {
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                return Err(crashed_error());
            }
            return Ok(());
        };
        let ops = derive_ops();
        if ops.is_empty() && armed.is_none() {
            return Ok(());
        }
        let in_txn = self.txn.borrow().is_some();
        let mut records = Vec::with_capacity(ops.len() + 2);
        let txn_id = if in_txn {
            match self.wal_txn.get() {
                Some(id) => id,
                None => {
                    let id = wal.alloc_txn();
                    self.wal_txn.set(Some(id));
                    records.push(WalRecord::Begin { txn: id });
                    wal.note_txn_open();
                    id
                }
            }
        } else {
            let id = wal.alloc_txn();
            records.push(WalRecord::Begin { txn: id });
            id
        };
        for op in ops {
            records.push(WalRecord::Op { txn: txn_id, op });
        }
        if !in_txn {
            records.push(WalRecord::Commit {
                txn: txn_id,
                epoch: catalog.epoch(),
                sequences: catalog.sequence_states(),
            });
        }
        match armed {
            None => wal.append(&records, AppendMode::Full),
            Some(CrashPoint::AfterLog) => {
                wal.append(&records, AppendMode::Full)?;
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Err(crashed_error())
            }
            Some(CrashPoint::MidApply) => {
                wal.append(&records, AppendMode::Torn)?;
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Err(crashed_error())
            }
            // These are delivered at the statement gate / checkpoint and
            // never reach the armed state; treat defensively as a crash
            // before any append.
            Some(CrashPoint::BeforeLog | CrashPoint::DuringCheckpoint) => {
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Err(crashed_error())
            }
        }
    }

    /// Append the `Abort` terminator for this connection's logged
    /// transaction, if any. Skipped silently when the process is frozen
    /// (crashed): recovery treats the unterminated transaction as a
    /// loser and rolls it back from the log — same outcome.
    fn wal_abort(&self) {
        let Some(wal) = self.db.inner.wal.as_ref() else {
            return;
        };
        if let Some(id) = self.wal_txn.take() {
            let frozen = self
                .db
                .inner
                .injector
                .lock()
                .as_ref()
                .is_some_and(|i| i.frozen());
            if !frozen {
                let _ = wal.append(&[WalRecord::Abort { txn: id }], AppendMode::Full);
            }
            wal.note_txn_closed();
        }
    }

    /// Durability + commit phase shared by the fast write paths.
    ///
    /// Default (MVCC) mode drops the exclusive table guard *before* the
    /// WAL append and re-derives the after-images under a shared guard:
    /// the statement's versions are still unstamped — invisible to every
    /// snapshot — so readers proceed against the pre-statement state
    /// while the append (and any group-commit window) runs. The caller's
    /// per-table statement mutex keeps other writers out, so the rows the
    /// shared guard exposes are exactly what this statement wrote. Only
    /// after the append is acknowledged does the commit stamp (autocommit)
    /// or the enclosing transaction's eventual COMMIT publish the
    /// versions. Legacy mode keeps the PR 5 shape — append under the
    /// statement-long exclusive guard — as a benchmark A/B baseline.
    ///
    /// On append failure the statement's versions are unwound under a
    /// re-taken exclusive guard and the error is returned; nothing was
    /// ever visible.
    fn finish_fast_write(
        &self,
        catalog: &Catalog,
        table_name: &str,
        mut table: crate::sync::TableWriteGuard<'_, Table>,
        scratch: UndoLog,
        ctx: &SnapshotCtx<'_>,
    ) -> SqlResult<()> {
        if self.db.legacy_locking() {
            if let Err(e) = self.wal_log_statement_on(catalog, &table, &scratch) {
                scratch.rollback_on_table(&mut table);
                self.db.note_rollback();
                return Err(e);
            }
            drop(table);
        } else {
            drop(table);
            let read = catalog.table(table_name)?;
            if let Err(e) = self.wal_log_statement_on(catalog, &read, &scratch) {
                drop(read);
                let mut table = catalog.table_mut(table_name)?;
                scratch.rollback_on_table(&mut table);
                self.db.note_rollback();
                return Err(e);
            }
        }
        if let Some(txn) = self.txn.borrow_mut().as_mut() {
            txn.absorb(scratch);
        } else {
            self.db.commit_stamp(&ctx.stamp);
        }
        Ok(())
    }

    /// Execute through the compiled plan when one applies; otherwise
    /// fall back to [`Connection::execute_ast`] (the interpreter).
    fn execute_cached(&self, cached: &CachedStmt, params: &[Value]) -> SqlResult<StatementResult> {
        match &cached.stmt {
            Statement::Select(s) => {
                self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
                let named: HashMap<String, Value> = HashMap::new();
                // Readers resolve row visibility against this snapshot;
                // they take per-table guards only in shared mode and
                // never observe an unstamped (uncommitted) version.
                let _snap = self.snapshot_ctx();
                let catalog = self.db.inner.catalog.read();
                let plan = self.compiled_plan(cached, &catalog);
                if let Err(e) = catalog.fault_bind_complete() {
                    Self::invalidate_plan_slot(cached);
                    return Err(e);
                }
                let rs = match &*plan {
                    CompiledPlan::Select(p) => crate::exec::batch::run_select_batched(
                        &catalog,
                        p,
                        params,
                        &named,
                        &mut self.batch.borrow_mut(),
                    )?,
                    CompiledPlan::Aggregate(p) => crate::exec::batch::run_agg_plan(
                        &catalog,
                        p,
                        params,
                        &named,
                        &mut self.batch.borrow_mut(),
                    )?,
                    _ => crate::exec::select::run_select(&catalog, s, params, &named)?,
                };
                self.db
                    .inner
                    .rows_counter
                    .fetch_add(rs.rows.len() as u64, Ordering::Relaxed);
                Ok(StatementResult::Rows(rs))
            }
            Statement::Update(_) | Statement::Delete(_) => {
                let named: HashMap<String, Value> = HashMap::new();
                // Bind (or fetch) the plan under the *shared* shape lock:
                // a compiled, subquery-free single-table statement runs on
                // the fast path — exclusive only on its own table — so DML
                // on disjoint tables proceeds truly concurrently.
                let catalog = self.db.inner.catalog.read();
                let plan = self.compiled_plan(cached, &catalog);
                let fast_table = match &*plan {
                    CompiledPlan::Update(p) if !p.has_subquery() => {
                        Some(p.table_name().to_string())
                    }
                    CompiledPlan::Delete(p) if !p.has_subquery() => {
                        Some(p.table_name().to_string())
                    }
                    _ => None,
                };
                if let Some(table_name) = fast_table {
                    self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = catalog.fault_bind_complete() {
                        Self::invalidate_plan_slot(cached);
                        return Err(e);
                    }
                    // Writer-writer serialization without excluding
                    // readers: one write statement per table at a time.
                    let _stmt = catalog.table_stmt(&table_name)?;
                    let ctx = self.snapshot_ctx();
                    // The exclusive guard covers only the in-memory
                    // apply; versions stay unstamped (invisible) until
                    // the WAL append is acknowledged, so readers are
                    // never atomicity witnesses.
                    let mut table = catalog.table_mut(&table_name)?;
                    let mut scratch = UndoLog::with_stamp(ctx.stamp());
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &*plan {
                            CompiledPlan::Update(p) => crate::plan::run_update_plan_on(
                                &catalog,
                                &mut table,
                                p,
                                params,
                                &named,
                                &mut scratch,
                            ),
                            CompiledPlan::Delete(p) => crate::plan::run_delete_plan_on(
                                &catalog,
                                &mut table,
                                p,
                                params,
                                &named,
                                &mut scratch,
                            ),
                            _ => unreachable!("eligibility checked above"),
                        }))
                        .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
                    return match result {
                        Ok(n) => {
                            if let Err(e) =
                                self.finish_fast_write(&catalog, &table_name, table, scratch, &ctx)
                            {
                                // The write never became durable; its
                                // in-memory versions were unwound.
                                Self::invalidate_plan_slot(cached);
                                return Err(e);
                            }
                            Ok(StatementResult::Affected(n))
                        }
                        Err(e) => {
                            // Statement atomicity: wipe this statement's
                            // effects, using the guard we still hold.
                            scratch.rollback_on_table(&mut table);
                            self.db.note_rollback();
                            if Self::fault_aborted(&e) {
                                Self::invalidate_plan_slot(cached);
                            }
                            Err(e)
                        }
                    };
                }
                drop(catalog);
                if matches!(&*plan, CompiledPlan::Unsupported) {
                    return self.execute_ast_inner(&cached.stmt, params);
                }
                // Subquery-bearing compiled plan: the exclusive path. The
                // plan must be re-fetched under the write lock — DDL may
                // have moved the epoch in the lock gap.
                let mut catalog = self.db.inner.catalog.write();
                let plan = self.compiled_plan(cached, &catalog);
                if matches!(&*plan, CompiledPlan::Unsupported) {
                    drop(catalog);
                    return self.execute_ast_inner(&cached.stmt, params);
                }
                self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = catalog.fault_bind_complete() {
                    Self::invalidate_plan_slot(cached);
                    return Err(e);
                }
                let ctx = self.snapshot_ctx();
                let mut scratch = UndoLog::with_stamp(ctx.stamp());
                // Contain panics (injected or genuine) so a crashing
                // statement surfaces as an error with its partial work
                // undone instead of poisoning the catalog lock.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &*plan {
                        CompiledPlan::Update(p) => {
                            crate::plan::run_update_plan(&catalog, p, params, &named, &mut scratch)
                        }
                        CompiledPlan::Delete(p) => {
                            crate::plan::run_delete_plan(&catalog, p, params, &named, &mut scratch)
                        }
                        _ => unreachable!("SELECT plans handled above"),
                    }))
                    .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
                match result {
                    Ok(n) => {
                        if let Err(e) = self.wal_log_statement(&catalog, &scratch) {
                            // The write never became durable; statement
                            // atomicity demands its in-memory effects go too.
                            scratch.rollback(&mut catalog);
                            self.db.note_rollback();
                            Self::invalidate_plan_slot(cached);
                            return Err(e);
                        }
                        if let Some(txn) = self.txn.borrow_mut().as_mut() {
                            txn.absorb(scratch);
                        } else {
                            self.db.commit_stamp(&ctx.stamp);
                        }
                        Ok(StatementResult::Affected(n))
                    }
                    Err(e) => {
                        // Statement atomicity: wipe this statement's effects.
                        scratch.rollback(&mut catalog);
                        self.db.note_rollback();
                        if Self::fault_aborted(&e) {
                            Self::invalidate_plan_slot(cached);
                        }
                        Err(e)
                    }
                }
            }
            Statement::Insert(ins) if Self::insert_is_fast(ins) => {
                // Subquery-free `INSERT … VALUES`: runs under the shared
                // shape lock, exclusive only on its target table.
                self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
                let named: HashMap<String, Value> = HashMap::new();
                let catalog = self.db.inner.catalog.read();
                // Writer-writer serialization without excluding readers.
                let _stmt = catalog.table_stmt(&ins.table)?;
                let ctx = self.snapshot_ctx();
                let mut table = catalog.table_mut(&ins.table)?;
                let mut scratch = UndoLog::with_stamp(ctx.stamp());
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::exec::dml::run_insert_on(
                        &catalog,
                        &mut table,
                        ins,
                        params,
                        &named,
                        &mut scratch,
                    )
                }))
                .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
                match result {
                    Ok(n) => {
                        self.finish_fast_write(&catalog, &ins.table, table, scratch, &ctx)?;
                        Ok(StatementResult::Affected(n))
                    }
                    Err(e) => {
                        scratch.rollback_on_table(&mut table);
                        self.db.note_rollback();
                        Err(e)
                    }
                }
            }
            _ => self.execute_ast_inner(&cached.stmt, params),
        }
    }

    /// Execute and require a result grid.
    pub fn query(&self, sql: &str, params: &[Value]) -> SqlResult<QueryResult> {
        match self.execute(sql, params)? {
            StatementResult::Rows(r) => Ok(r),
            other => Err(SqlError::Semantic(format!(
                "statement did not return rows ({other:?})"
            ))),
        }
    }

    /// Execute a semicolon-separated script; returns one result per statement.
    pub fn execute_script(&self, sql: &str) -> SqlResult<Vec<StatementResult>> {
        let stmts = parse_script(sql)?;
        self.db
            .inner
            .parse_counter
            .fetch_add(stmts.len() as u64, Ordering::Relaxed);
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            self.fault_gate(s)?;
            let mark = crate::catalog::draw_mark();
            let result = self.execute_ast_inner(s, &[]);
            self.settle_draws(mark, result.is_err());
            out.push(result?);
        }
        self.db.maybe_gc();
        Ok(out)
    }

    /// Execute an already-parsed statement (public surface; gated by the
    /// fault injector like every other entry point).
    pub fn execute_ast(&self, stmt: &Statement, params: &[Value]) -> SqlResult<StatementResult> {
        self.fault_gate(stmt)?;
        self.execute_ast_inner(stmt, params)
    }

    /// Execute an already-parsed statement.
    ///
    /// `SELECT` runs under a *shared* catalog lock — any number of readers
    /// proceed in parallel — while DDL, `CALL`, subquery-bearing DML, and
    /// rollback take the exclusive lock. Isolation is snapshot-per-
    /// statement (snapshot-per-transaction under BEGIN…COMMIT): every
    /// read resolves row visibility against a commit-timestamped
    /// snapshot, so a reader sees either all of a statement's writes or
    /// none of them, never a torn mix — and never another connection's
    /// uncommitted work.
    fn execute_ast_inner(&self, stmt: &Statement, params: &[Value]) -> SqlResult<StatementResult> {
        self.db.inner.stmt_counter.fetch_add(1, Ordering::Relaxed);
        match stmt {
            Statement::Begin => {
                let mut txn = self.txn.borrow_mut();
                if txn.is_some() {
                    return Err(SqlError::Txn("transaction already open".into()));
                }
                // One snapshot and one write stamp for the whole
                // transaction: repeatable reads, and a single COMMIT-time
                // store publishes every row it wrote.
                let (ts, stamp) = self.db.register_snapshot();
                *txn = Some(UndoLog::with_stamp(Arc::clone(&stamp)));
                *self.txn_stamp.borrow_mut() = Some((stamp, ts));
                Ok(StatementResult::TxnControl)
            }
            Statement::Commit => {
                // A frozen (crashed) process must not acknowledge a
                // commit: the terminator would never reach the log.
                if self
                    .db
                    .inner
                    .injector
                    .lock()
                    .as_ref()
                    .is_some_and(|i| i.frozen())
                {
                    return Err(crashed_error());
                }
                let mut txn = self.txn.borrow_mut();
                if txn.take().is_none() {
                    return Err(SqlError::Txn("COMMIT without open transaction".into()));
                }
                drop(txn);
                self.clear_prepared();
                let finished = self.txn_stamp.borrow_mut().take();
                let appended = (|| -> SqlResult<()> {
                    if let Some(wal) = self.db.inner.wal.as_ref() {
                        if let Some(id) = self.wal_txn.take() {
                            let catalog = self.db.inner.catalog.read();
                            wal.append(
                                &[WalRecord::Commit {
                                    txn: id,
                                    epoch: catalog.epoch(),
                                    sequences: catalog.sequence_states(),
                                }],
                                AppendMode::Full,
                            )?;
                            wal.note_txn_closed();
                        }
                    }
                    Ok(())
                })();
                if let Some((stamp, ts)) = finished {
                    if appended.is_ok() {
                        // The commit point: stamping at WAL-ack makes
                        // every version this transaction wrote visible
                        // in one atomic store, and crash recovery
                        // reconstructs exactly this committed state. A
                        // failed append leaves the versions unstamped —
                        // invisible forever, the same outcome recovery
                        // would produce.
                        self.db.commit_stamp(&stamp);
                    }
                    self.db.release_snapshot(ts);
                }
                appended.map(|_| StatementResult::TxnControl)
            }
            Statement::Rollback => {
                let log = self
                    .txn
                    .borrow_mut()
                    .take()
                    .ok_or_else(|| SqlError::Txn("ROLLBACK without open transaction".into()))?;
                self.clear_prepared();
                let mut catalog = self.db.inner.catalog.write();
                log.rollback(&mut catalog);
                self.db.note_rollback();
                drop(catalog);
                self.wal_abort();
                if let Some((_stamp, ts)) = self.txn_stamp.borrow_mut().take() {
                    self.db.release_snapshot(ts);
                }
                Ok(StatementResult::TxnControl)
            }
            Statement::Select(s) => {
                let named: HashMap<String, Value> = HashMap::new();
                let _snap = self.snapshot_ctx();
                let catalog = self.db.inner.catalog.read();
                let rs = crate::exec::select::run_select(&catalog, s, params, &named)?;
                self.db
                    .inner
                    .rows_counter
                    .fetch_add(rs.rows.len() as u64, Ordering::Relaxed);
                Ok(StatementResult::Rows(rs))
            }
            other => {
                let named: HashMap<String, Value> = HashMap::new();
                let ctx = self.snapshot_ctx();
                let mut catalog = self.db.inner.catalog.write();
                let mut scratch = UndoLog::with_stamp(ctx.stamp());
                // Contain panics so they surface as errors (with this
                // statement's effects undone) instead of poisoning the lock.
                let exec_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::exec::execute(&mut catalog, other, params, &named, &mut scratch)
                }))
                .unwrap_or_else(|payload| Err(Self::panic_error(payload)));
                match exec_result {
                    Ok(result) => {
                        if let Err(e) = self.wal_log_statement(&catalog, &scratch) {
                            // The write never became durable; statement
                            // atomicity demands its in-memory effects go too.
                            scratch.rollback(&mut catalog);
                            self.db.note_rollback();
                            return Err(e);
                        }
                        if let StatementResult::Rows(rs) = &result {
                            self.db
                                .inner
                                .rows_counter
                                .fetch_add(rs.rows.len() as u64, Ordering::Relaxed);
                        }
                        // Track temp tables for drop-on-close.
                        if let Statement::CreateTable(c) = other {
                            if c.temporary {
                                self.temp_tables.borrow_mut().push(c.name.clone());
                            }
                        }
                        if let Statement::DropTable { name, .. } = other {
                            self.temp_tables
                                .borrow_mut()
                                .retain(|t| !t.eq_ignore_ascii_case(name));
                        }
                        if let Some(txn) = self.txn.borrow_mut().as_mut() {
                            txn.absorb(scratch);
                        } else {
                            self.db.commit_stamp(&ctx.stamp);
                        }
                        // DDL invalidates dependent cached plans. For CALL,
                        // the procedure body may itself run DDL; collect its
                        // targets too (one call level deep — nested CALLs
                        // running DDL are not a supported pattern).
                        let mut targets = other.ddl_targets();
                        if let Statement::Call { name, .. } = other {
                            if let Ok(proc) = catalog.procedure(name) {
                                for body_stmt in &proc.body {
                                    targets.extend(body_stmt.ddl_targets());
                                }
                            }
                        }
                        drop(catalog);
                        if !targets.is_empty() {
                            self.db.invalidate_statements(&targets);
                        }
                        Ok(result)
                    }
                    Err(e) => {
                        // Statement atomicity: wipe this statement's effects.
                        scratch.rollback(&mut catalog);
                        self.db.note_rollback();
                        Err(e)
                    }
                }
            }
        }
    }

    /// Roll back any open transaction (no-op otherwise).
    ///
    /// A transaction in the 2PC *prepared* window is not rolled back: the
    /// yes-vote is durable and the transaction's fate belongs to the
    /// coordinator, so unilaterally aborting here would break cross-shard
    /// atomicity (the decision log may already say commit). It is
    /// *detached* instead — the connection forgets it, its snapshot is
    /// released, and the unterminated `Prepare` on the log leaves it
    /// in-doubt for the next recovery to resolve against the decision
    /// log. Its writes stay unstamped (invisible) in this instance, and
    /// the open-transaction and prepared gauges keep blocking checkpoints
    /// so the undecided transaction can never be baked into a snapshot.
    pub fn rollback_if_open(&self) {
        if self.prepared.get() {
            let _ = self.txn.borrow_mut().take();
            if let Some((_stamp, ts)) = self.txn_stamp.borrow_mut().take() {
                self.db.release_snapshot(ts);
            }
            return;
        }
        if let Some(log) = self.txn.borrow_mut().take() {
            self.clear_prepared();
            let mut catalog = self.db.inner.catalog.write();
            log.rollback(&mut catalog);
            self.db.note_rollback();
            drop(catalog);
            self.wal_abort();
            if let Some((_stamp, ts)) = self.txn_stamp.borrow_mut().take() {
                self.db.release_snapshot(ts);
            }
        }
    }

    /// Leave the prepared window, decrementing the WAL gauge that blocks
    /// checkpoints. Idempotent; called by every path that terminates the
    /// transaction (COMMIT, ROLLBACK, rollback-on-drop).
    fn clear_prepared(&self) {
        if self.prepared.replace(false) {
            if let Some(wal) = self.db.inner.wal.as_ref() {
                wal.note_prepared_resolved();
            }
        }
    }

    /// Is this connection's transaction sitting in the prepared window?
    pub fn is_prepared(&self) -> bool {
        self.prepared.get()
    }

    /// Phase 1 of two-phase commit: durably record this participant's
    /// *yes* vote for the open explicit transaction under global
    /// transaction id `gid`. The `Prepare` record carries the catalog
    /// epoch and sequence states a later `Commit` needs, so recovery can
    /// finish the commit from the log alone. After `Ok`, the transaction
    /// is in-doubt: this connection may only [`commit_prepared`]
    /// (coordinator said commit) or [`abort_prepared`] (coordinator said
    /// abort) — and if the process dies first, recovery resolves the
    /// transaction against the coordinator's decision log.
    ///
    /// [`commit_prepared`]: Connection::commit_prepared
    /// [`abort_prepared`]: Connection::abort_prepared
    pub fn prepare_transaction(&self, gid: u64) -> SqlResult<()> {
        let injector = self.db.inner.injector.lock().clone();
        if let Some(inj) = &injector {
            if inj.frozen() {
                return Err(crashed_error());
            }
        }
        if self.txn.borrow().is_none() {
            return Err(SqlError::Txn("PREPARE without open transaction".into()));
        }
        if self.prepared.get() {
            return Err(SqlError::Txn("transaction already prepared".into()));
        }
        let Some(wal) = self.db.inner.wal.as_ref() else {
            return Err(SqlError::Txn(
                "two-phase commit requires a durable (WAL-backed) database".into(),
            ));
        };
        let crash = injector.as_ref().and_then(|i| i.on_prepare());
        if crash == Some(PrepareCrash::Before) {
            // Die before the vote reaches the log: recovery sees an
            // ordinary loser and undoes it; the coordinator sees a dead
            // participant and presumes abort. Consistent either way.
            if let Some(inj) = &injector {
                inj.deliver_crash();
            }
            return Err(crashed_error());
        }
        let mut records = Vec::with_capacity(2);
        let txn_id = match self.wal_txn.get() {
            Some(id) => id,
            None => {
                // A participant that only read still votes; its Prepare
                // must name a logged transaction, so open one now.
                let id = wal.alloc_txn();
                self.wal_txn.set(Some(id));
                records.push(WalRecord::Begin { txn: id });
                wal.note_txn_open();
                id
            }
        };
        {
            let catalog = self.db.inner.catalog.read();
            records.push(WalRecord::Prepare {
                txn: txn_id,
                gid,
                epoch: catalog.epoch(),
                sequences: catalog.sequence_states(),
            });
        }
        match crash {
            Some(PrepareCrash::AfterWrite) => {
                // The vote lands durably but is never acknowledged: the
                // coordinator presumes abort, and recovery must resolve
                // the in-doubt transaction to abort from the decision log.
                wal.append(&records, AppendMode::Full)?;
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Err(crashed_error())
            }
            Some(PrepareCrash::Torn) => {
                // A torn vote is no vote: recovery truncates at the tear
                // and treats the transaction as a loser.
                wal.append(&records, AppendMode::Torn)?;
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Err(crashed_error())
            }
            Some(PrepareCrash::AfterAck) => {
                // The classic in-doubt window: vote cast and acknowledged,
                // then the process dies before phase 2 arrives. The later
                // COMMIT fails `Crashed`; recovery consults the decision
                // log, which may well say commit.
                wal.append(&records, AppendMode::Full)?;
                self.prepared.set(true);
                wal.note_prepared();
                if let Some(inj) = &injector {
                    inj.deliver_crash();
                }
                Ok(())
            }
            Some(PrepareCrash::Before) | None => {
                wal.append(&records, AppendMode::Full)?;
                self.prepared.set(true);
                wal.note_prepared();
                Ok(())
            }
        }
    }

    /// Phase 2, commit side: finish a prepared transaction after the
    /// coordinator logged a commit decision.
    pub fn commit_prepared(&self) -> SqlResult<()> {
        if !self.prepared.get() {
            return Err(SqlError::Txn(
                "COMMIT PREPARED without a prepared transaction".into(),
            ));
        }
        self.execute("COMMIT", &[]).map(|_| ())
    }

    /// Phase 2, abort side: roll a prepared transaction back after the
    /// coordinator decided (or presumed) abort.
    pub fn abort_prepared(&self) -> SqlResult<()> {
        if !self.prepared.get() {
            return Err(SqlError::Txn(
                "ROLLBACK PREPARED without a prepared transaction".into(),
            ));
        }
        self.execute("ROLLBACK", &[]).map(|_| ())
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.rollback_if_open();
        let temp: Vec<String> = self.temp_tables.borrow_mut().drain(..).collect();
        if !temp.is_empty() {
            let mut catalog = self.db.inner.catalog.write();
            for t in &temp {
                let _ = catalog.remove_table(t);
            }
            drop(catalog);
            // Plans over the dead temp tables must not survive either.
            let names: Vec<String> = temp.iter().map(|t| t.to_ascii_lowercase()).collect();
            self.db.invalidate_statements(&names);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Database, Connection) {
        let db = Database::new("test");
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, ItemId TEXT, \
             Quantity INT, Approved BOOL);
             INSERT INTO Orders VALUES
               (1, 'widget', 10, TRUE),
               (2, 'widget', 5, TRUE),
               (3, 'gadget', 7, FALSE),
               (4, 'gadget', 3, TRUE),
               (5, 'sprocket', 2, TRUE);",
        )
        .unwrap();
        (db, conn)
    }

    #[test]
    fn basic_query() {
        let (_db, conn) = setup();
        let rs = conn
            .query("SELECT ItemId, Quantity FROM Orders WHERE OrderId = 1", &[])
            .unwrap();
        assert_eq!(rs.columns, vec!["ItemId", "Quantity"]);
        assert_eq!(rs.rows, vec![vec![Value::text("widget"), Value::Int(10)]]);
    }

    #[test]
    fn the_papers_aggregation_query() {
        // SQL_1 from Figure 4.
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
                 WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId",
                &[],
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::text("gadget"), Value::Int(3)],
                vec![Value::text("sprocket"), Value::Int(2)],
                vec![Value::text("widget"), Value::Int(15)],
            ]
        );
    }

    #[test]
    fn host_parameters() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT OrderId FROM Orders WHERE ItemId = ? AND Quantity > ? ORDER BY OrderId",
                &[Value::text("widget"), Value::Int(4)],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn dml_roundtrip_and_affected_counts() {
        let (_db, conn) = setup();
        let r = conn
            .execute(
                "UPDATE Orders SET Approved = TRUE WHERE Approved = FALSE",
                &[],
            )
            .unwrap();
        assert_eq!(r.affected(), Some(1));
        let r = conn
            .execute("DELETE FROM Orders WHERE Quantity < 5", &[])
            .unwrap();
        assert_eq!(r.affected(), Some(2));
        let rs = conn.query("SELECT COUNT(*) FROM Orders", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(3));
    }

    #[test]
    fn transaction_commit_and_rollback() {
        let (_db, conn) = setup();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("DELETE FROM Orders", &[]).unwrap();
        conn.execute("ROLLBACK", &[]).unwrap();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM Orders", &[])
                .unwrap()
                .single_value()
                .unwrap(),
            &Value::Int(5)
        );

        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("DELETE FROM Orders WHERE OrderId = 1", &[])
            .unwrap();
        conn.execute("COMMIT", &[]).unwrap();
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM Orders", &[])
                .unwrap()
                .single_value()
                .unwrap(),
            &Value::Int(4)
        );
    }

    #[test]
    fn txn_misuse_errors() {
        let (_db, conn) = setup();
        assert_eq!(conn.execute("COMMIT", &[]).unwrap_err().class(), "txn");
        assert_eq!(conn.execute("ROLLBACK", &[]).unwrap_err().class(), "txn");
        conn.execute("BEGIN", &[]).unwrap();
        assert_eq!(conn.execute("BEGIN", &[]).unwrap_err().class(), "txn");
    }

    #[test]
    fn statement_atomicity_on_error() {
        let (_db, conn) = setup();
        // Second row violates the primary key; the first must not stick.
        let err = conn
            .execute(
                "INSERT INTO Orders VALUES (100, 'x', 1, TRUE), (1, 'dup', 1, TRUE)",
                &[],
            )
            .unwrap_err();
        assert_eq!(err.class(), "constraint");
        let rs = conn
            .query("SELECT COUNT(*) FROM Orders WHERE OrderId = 100", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(0));
    }

    #[test]
    fn dropping_connection_rolls_back_open_txn() {
        let (db, conn) = setup();
        {
            let c2 = db.connect();
            c2.execute("BEGIN", &[]).unwrap();
            c2.execute("DELETE FROM Orders", &[]).unwrap();
            // c2 dropped here without COMMIT.
        }
        assert_eq!(
            conn.query("SELECT COUNT(*) FROM Orders", &[])
                .unwrap()
                .single_value()
                .unwrap(),
            &Value::Int(5)
        );
    }

    #[test]
    fn temp_tables_die_with_connection() {
        let (db, _conn) = setup();
        {
            let c2 = db.connect();
            c2.execute("CREATE TEMP TABLE scratch (v INT)", &[])
                .unwrap();
            assert!(db.has_table("scratch"));
        }
        assert!(!db.has_table("scratch"));
    }

    #[test]
    fn prepared_statements_rebind() {
        let (_db, conn) = setup();
        let p = conn
            .prepare("SELECT Quantity FROM Orders WHERE OrderId = ?")
            .unwrap();
        assert_eq!(p.verb(), "SELECT");
        let q1 = conn
            .execute_prepared(&p, &[Value::Int(1)])
            .unwrap()
            .rows()
            .unwrap();
        let q2 = conn
            .execute_prepared(&p, &[Value::Int(4)])
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(q1.single_value().unwrap(), &Value::Int(10));
        assert_eq!(q2.single_value().unwrap(), &Value::Int(3));
    }

    #[test]
    fn stored_procedure_end_to_end() {
        let (_db, conn) = setup();
        conn.execute(
            "CREATE PROCEDURE approve_item(item) AS BEGIN \
               UPDATE Orders SET Approved = TRUE WHERE ItemId = :item; \
               SELECT COUNT(*) AS n FROM Orders WHERE ItemId = :item AND Approved = TRUE; \
             END",
            &[],
        )
        .unwrap();
        let rs = conn
            .execute("CALL approve_item('gadget')", &[])
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(2));
    }

    #[test]
    fn procedure_wrong_arity() {
        let (_db, conn) = setup();
        conn.execute("CREATE PROCEDURE p(a) AS BEGIN SELECT :a; END", &[])
            .unwrap();
        assert_eq!(
            conn.execute("CALL p()", &[]).unwrap_err().class(),
            "semantic"
        );
    }

    #[test]
    fn sequences_via_nextval() {
        let (_db, conn) = setup();
        conn.execute("CREATE SEQUENCE ids START WITH 1000", &[])
            .unwrap();
        let rs = conn.query("SELECT NEXTVAL('ids')", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(1000));
        let rs = conn.query("SELECT NEXTVAL('ids')", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(1001));
    }

    #[test]
    fn joins_inner_left() {
        let (_db, conn) = setup();
        conn.execute_script(
            "CREATE TABLE Items (ItemId TEXT PRIMARY KEY, Price FLOAT);
             INSERT INTO Items VALUES ('widget', 2.5), ('gadget', 4.0);",
        )
        .unwrap();
        let rs = conn
            .query(
                "SELECT o.OrderId, i.Price FROM Orders o JOIN Items i \
                 ON o.ItemId = i.ItemId ORDER BY o.OrderId",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 4); // sprocket has no price
        let rs = conn
            .query(
                "SELECT o.OrderId, i.Price FROM Orders o LEFT JOIN Items i \
                 ON o.ItemId = i.ItemId ORDER BY o.OrderId",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 5);
        assert!(rs.rows[4][1].is_null());
    }

    #[test]
    fn right_join_pads_left() {
        let (_db, conn) = setup();
        conn.execute_script(
            "CREATE TABLE Items (ItemId TEXT PRIMARY KEY, Price FLOAT);
             INSERT INTO Items VALUES ('widget', 2.5), ('unused', 9.9);",
        )
        .unwrap();
        let rs = conn
            .query(
                "SELECT o.OrderId, i.ItemId FROM Orders o RIGHT JOIN Items i \
                 ON o.ItemId = i.ItemId",
                &[],
            )
            .unwrap();
        // widget matches orders 1 and 2; 'unused' padded with NULL left side.
        assert_eq!(rs.rows.len(), 3);
        assert!(rs.rows.iter().any(|r| r[0].is_null()));
    }

    #[test]
    fn derived_tables_and_subqueries() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT t.ItemId FROM (SELECT ItemId, SUM(Quantity) q FROM Orders \
                 GROUP BY ItemId) t WHERE t.q > 10",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::text("widget")]]);

        let rs = conn
            .query(
                "SELECT OrderId FROM Orders WHERE Quantity = (SELECT MAX(Quantity) FROM Orders)",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);

        let rs = conn
            .query(
                "SELECT COUNT(*) FROM Orders WHERE ItemId IN \
                 (SELECT ItemId FROM Orders WHERE Quantity > 6)",
                &[],
            )
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(4));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let (_db, conn) = setup();
        let rs = conn
            .query("SELECT DISTINCT ItemId FROM Orders ORDER BY ItemId", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        let rs = conn
            .query(
                "SELECT OrderId FROM Orders ORDER BY Quantity DESC LIMIT 2 OFFSET 1",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT ItemId, SUM(Quantity) AS total FROM Orders GROUP BY ItemId \
                 ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::text("widget"));
        let rs = conn
            .query(
                "SELECT ItemId, Quantity FROM Orders ORDER BY 2 DESC LIMIT 1",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Int(10));
    }

    #[test]
    fn aggregates_over_empty_input() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT COUNT(*), SUM(Quantity), MIN(Quantity) FROM Orders WHERE OrderId > 999",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
        assert!(rs.rows[0][2].is_null());
    }

    #[test]
    fn count_distinct() {
        let (_db, conn) = setup();
        let rs = conn
            .query("SELECT COUNT(DISTINCT ItemId) FROM Orders", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(3));
    }

    #[test]
    fn insert_from_select() {
        let (_db, conn) = setup();
        conn.execute(
            "CREATE TABLE Summary (ItemId TEXT PRIMARY KEY, Total INT)",
            &[],
        )
        .unwrap();
        let r = conn
            .execute(
                "INSERT INTO Summary SELECT ItemId, SUM(Quantity) FROM Orders \
                 WHERE Approved = TRUE GROUP BY ItemId",
                &[],
            )
            .unwrap();
        assert_eq!(r.affected(), Some(3));
    }

    #[test]
    fn qualified_wildcard() {
        let (_db, conn) = setup();
        let rs = conn
            .query("SELECT o.* FROM Orders o WHERE o.OrderId = 1", &[])
            .unwrap();
        assert_eq!(rs.columns.len(), 4);
    }

    #[test]
    fn grid_rendering() {
        let (_db, conn) = setup();
        let rs = conn
            .query("SELECT ItemId, Quantity FROM Orders WHERE OrderId = 1", &[])
            .unwrap();
        let grid = rs.to_grid();
        assert!(grid.contains("ItemId"));
        assert!(grid.contains("widget"));
    }

    #[test]
    fn stats_count_statements_and_rows() {
        let (db, conn) = setup();
        let before = db.stats();
        conn.query("SELECT * FROM Orders", &[]).unwrap();
        let after = db.stats();
        assert_eq!(after.statements_executed, before.statements_executed + 1);
        assert_eq!(after.rows_returned, before.rows_returned + 5);
    }

    #[test]
    fn cross_connection_visibility() {
        let (db, conn) = setup();
        let c2 = db.connect();
        conn.execute("INSERT INTO Orders VALUES (9, 'x', 1, TRUE)", &[])
            .unwrap();
        assert_eq!(
            c2.query("SELECT COUNT(*) FROM Orders", &[])
                .unwrap()
                .single_value()
                .unwrap(),
            &Value::Int(6)
        );
        assert!(!db.same_as(&Database::new("other")));
        assert!(db.same_as(&db.clone()));
    }

    #[test]
    fn index_ddl_and_usage() {
        let (_db, conn) = setup();
        conn.execute("CREATE INDEX idx_item ON Orders (ItemId)", &[])
            .unwrap();
        assert_eq!(
            conn.execute("CREATE INDEX idx_item ON Orders (ItemId)", &[])
                .unwrap_err()
                .class(),
            "already_exists"
        );
        conn.execute("DROP INDEX idx_item", &[]).unwrap();
        conn.execute("DROP INDEX IF EXISTS idx_item", &[]).unwrap();
    }

    #[test]
    fn index_fast_path_used_for_pk_equality() {
        let (db, conn) = setup();
        let before = db.stats().index_scans;
        let rs = conn
            .query("SELECT ItemId FROM Orders WHERE OrderId = 3", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::text("gadget"));
        assert_eq!(db.stats().index_scans, before + 1);
    }

    #[test]
    fn index_fast_path_with_params_and_reversed_sides() {
        let (db, conn) = setup();
        let before = db.stats().index_scans;
        let rs = conn
            .query(
                "SELECT ItemId FROM Orders WHERE ? = OrderId",
                &[Value::Int(5)],
            )
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::text("sprocket"));
        assert_eq!(db.stats().index_scans, before + 1);
    }

    #[test]
    fn index_fast_path_respects_residual_predicates() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT COUNT(*) FROM Orders WHERE OrderId = 1 AND Approved = FALSE",
                &[],
            )
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(0));
    }

    #[test]
    fn no_index_fast_path_without_index() {
        let (db, conn) = setup();
        let before = db.stats().index_scans;
        conn.query("SELECT OrderId FROM Orders WHERE ItemId = 'widget'", &[])
            .unwrap();
        assert_eq!(db.stats().index_scans, before);
        // After creating a secondary index the same query takes the fast
        // path and returns identical results.
        let slow = conn
            .query(
                "SELECT OrderId FROM Orders WHERE ItemId = 'widget' ORDER BY OrderId",
                &[],
            )
            .unwrap();
        conn.execute("CREATE INDEX idx_item ON Orders (ItemId)", &[])
            .unwrap();
        let fast = conn
            .query(
                "SELECT OrderId FROM Orders WHERE ItemId = 'widget' ORDER BY OrderId",
                &[],
            )
            .unwrap();
        assert_eq!(slow, fast);
        assert_eq!(db.stats().index_scans, before + 1);
    }

    #[test]
    fn index_fast_path_equals_null_is_empty() {
        let (db, conn) = setup();
        let before = db.stats().index_scans;
        let rs = conn
            .query("SELECT * FROM Orders WHERE OrderId = NULL", &[])
            .unwrap();
        assert!(rs.is_empty());
        assert_eq!(db.stats().index_scans, before + 1);
    }

    #[test]
    fn union_and_union_all() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT ItemId FROM Orders WHERE Approved = TRUE                  UNION SELECT ItemId FROM Orders WHERE Quantity > 5                  ORDER BY ItemId",
                &[],
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::text("gadget")],
                vec![Value::text("sprocket")],
                vec![Value::text("widget")],
            ]
        );
        let rs = conn
            .query(
                "SELECT ItemId FROM Orders UNION ALL SELECT ItemId FROM Orders",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 10);
    }

    #[test]
    fn union_order_by_ordinal_and_limit() {
        let (_db, conn) = setup();
        let rs = conn
            .query(
                "SELECT OrderId, Quantity FROM Orders WHERE OrderId <= 2                  UNION SELECT OrderId, Quantity FROM Orders WHERE OrderId >= 4                  ORDER BY 2 DESC LIMIT 2",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Int(10));
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let (_db, conn) = setup();
        let err = conn
            .query(
                "SELECT OrderId FROM Orders UNION SELECT OrderId, Quantity FROM Orders",
                &[],
            )
            .unwrap_err();
        assert_eq!(err.class(), "semantic");
    }

    #[test]
    fn union_order_by_source_expression_rejected() {
        let (_db, conn) = setup();
        let err = conn
            .query(
                "SELECT OrderId FROM Orders UNION SELECT OrderId FROM Orders ORDER BY Quantity",
                &[],
            )
            .unwrap_err();
        assert_eq!(err.class(), "semantic");
    }

    #[test]
    fn views_basic() {
        let (_db, conn) = setup();
        conn.execute(
            "CREATE VIEW approved AS SELECT ItemId, SUM(Quantity) AS Total              FROM Orders WHERE Approved = TRUE GROUP BY ItemId",
            &[],
        )
        .unwrap();
        let rs = conn
            .query("SELECT Total FROM approved WHERE ItemId = 'widget'", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(15));
        // Views see live data.
        conn.execute("INSERT INTO Orders VALUES (10, 'widget', 5, TRUE)", &[])
            .unwrap();
        let rs = conn
            .query("SELECT Total FROM approved WHERE ItemId = 'widget'", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(20));
    }

    #[test]
    fn views_compose_and_alias() {
        let (_db, conn) = setup();
        conn.execute(
            "CREATE VIEW v1 AS SELECT OrderId, Quantity FROM Orders",
            &[],
        )
        .unwrap();
        conn.execute("CREATE VIEW v2 AS SELECT * FROM v1 WHERE Quantity > 4", &[])
            .unwrap();
        let rs = conn
            .query(
                "SELECT a.OrderId FROM v2 a JOIN Orders o ON a.OrderId = o.OrderId",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn view_name_conflicts() {
        let (_db, conn) = setup();
        conn.execute("CREATE VIEW w AS SELECT 1", &[]).unwrap();
        assert_eq!(
            conn.execute("CREATE VIEW w AS SELECT 2", &[])
                .unwrap_err()
                .class(),
            "already_exists"
        );
        assert_eq!(
            conn.execute("CREATE TABLE w (a INT)", &[])
                .unwrap_err()
                .class(),
            "already_exists"
        );
        assert_eq!(
            conn.execute("CREATE VIEW Orders AS SELECT 1", &[])
                .unwrap_err()
                .class(),
            "already_exists"
        );
        conn.execute("CREATE VIEW IF NOT EXISTS w AS SELECT 3", &[])
            .unwrap();
        conn.execute("DROP VIEW w", &[]).unwrap();
        assert_eq!(
            conn.execute("DROP VIEW w", &[]).unwrap_err().class(),
            "not_found"
        );
        conn.execute("DROP VIEW IF EXISTS w", &[]).unwrap();
    }

    #[test]
    fn recursive_views_detected() {
        let (_db, conn) = setup();
        // v3 -> v4 created later -> v3 creates a cycle once both exist.
        conn.execute("CREATE VIEW v4 AS SELECT OrderId FROM Orders", &[])
            .unwrap();
        conn.execute("CREATE VIEW v3 AS SELECT * FROM v4", &[])
            .unwrap();
        conn.execute("DROP VIEW v4", &[]).unwrap();
        conn.execute("CREATE VIEW v4 AS SELECT * FROM v3", &[])
            .unwrap();
        let err = conn.query("SELECT * FROM v3", &[]).unwrap_err();
        assert_eq!(err.class(), "runtime");
    }

    #[test]
    fn view_rollback() {
        let (db, conn) = setup();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("CREATE VIEW tmpv AS SELECT 1", &[]).unwrap();
        conn.execute("ROLLBACK", &[]).unwrap();
        assert_eq!(
            conn.query("SELECT * FROM tmpv", &[]).unwrap_err().class(),
            "not_found"
        );
        let _ = db;
    }

    #[test]
    fn ddl_transactionality() {
        let (db, conn) = setup();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("CREATE TABLE tmp1 (a INT)", &[]).unwrap();
        conn.execute("INSERT INTO tmp1 VALUES (1)", &[]).unwrap();
        conn.execute("ROLLBACK", &[]).unwrap();
        assert!(!db.has_table("tmp1"));
    }

    // ------------------------------------------------------------- WAL

    use crate::wal::MemLogStore;

    fn durable_setup() -> (Database, MemLogStore) {
        let store = MemLogStore::new();
        let db = Database::with_wal("d", Arc::new(store.clone()));
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, ItemId TEXT, Quantity INT);
             INSERT INTO Orders VALUES (1, 'widget', 10), (2, 'gadget', 7);",
        )
        .unwrap();
        (db, store)
    }

    #[test]
    fn recovery_replays_committed_work() {
        let (db, store) = durable_setup();
        let conn = db.connect();
        conn.execute("UPDATE Orders SET Quantity = 99 WHERE OrderId = 1", &[])
            .unwrap();
        conn.execute("DELETE FROM Orders WHERE OrderId = 2", &[])
            .unwrap();
        drop(conn);
        drop(db); // the "crash": in-memory state is gone

        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        assert_eq!(db2.stats().recoveries, 1);
        let c2 = db2.connect();
        let rs = c2
            .query("SELECT OrderId, Quantity FROM Orders ORDER BY OrderId", &[])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(99)]]);
        // Row-id allocation continues where the original left off.
        c2.execute("INSERT INTO Orders VALUES (3, 'sprocket', 1)", &[])
            .unwrap();
        assert_eq!(db2.table_len("Orders").unwrap(), 2);
    }

    #[test]
    fn recovery_rolls_back_open_transaction() {
        let (db, store) = durable_setup();
        let conn = db.connect();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("DELETE FROM Orders", &[]).unwrap();
        conn.execute("INSERT INTO Orders VALUES (9, 'x', 1)", &[])
            .unwrap();
        // No COMMIT: simulate the process dying here by never terminating
        // the logged transaction (std::mem::forget keeps Drop's rollback
        // terminator off the log, exactly like a kill -9).
        std::mem::forget(conn);
        drop(db);

        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        let c2 = db2.connect();
        let rs = c2.query("SELECT COUNT(*) FROM Orders", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(2));
    }

    #[test]
    fn recovery_honours_explicit_commit_and_abort() {
        let (db, store) = durable_setup();
        let conn = db.connect();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("UPDATE Orders SET Quantity = 1 WHERE OrderId = 1", &[])
            .unwrap();
        conn.execute("COMMIT", &[]).unwrap();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("UPDATE Orders SET Quantity = 555 WHERE OrderId = 2", &[])
            .unwrap();
        conn.execute("ROLLBACK", &[]).unwrap();
        drop(conn);
        drop(db);

        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        let c2 = db2.connect();
        let rs = c2
            .query("SELECT Quantity FROM Orders ORDER BY OrderId", &[])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(7)]]);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let (db, store) = durable_setup();
        let size_before = db.log_store().unwrap().size().unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.stats().checkpoints, 1);
        let conn = db.connect();
        conn.execute("INSERT INTO Orders VALUES (3, 's', 4)", &[])
            .unwrap();
        drop(conn);
        drop(db);
        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        assert_eq!(db2.table_len("Orders").unwrap(), 3);
        let _ = size_before;
    }

    #[test]
    fn checkpoint_refused_with_open_transaction() {
        let (db, _store) = durable_setup();
        let conn = db.connect();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("INSERT INTO Orders VALUES (3, 's', 4)", &[])
            .unwrap();
        assert_eq!(db.checkpoint().unwrap_err().class(), "txn");
        conn.execute("COMMIT", &[]).unwrap();
        db.checkpoint().unwrap();
    }

    #[test]
    fn sequences_survive_recovery() {
        let (db, store) = durable_setup();
        let conn = db.connect();
        conn.execute("CREATE SEQUENCE ids START WITH 100", &[])
            .unwrap();
        // Draw two values inside a logged write so the commit record
        // carries the advanced counter.
        conn.execute("INSERT INTO Orders VALUES (NEXTVAL('ids'), 'a', 1)", &[])
            .unwrap();
        conn.execute("INSERT INTO Orders VALUES (NEXTVAL('ids'), 'b', 1)", &[])
            .unwrap();
        drop(conn);
        drop(db);
        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        let c2 = db2.connect();
        // The recovered sequence must not re-issue 100 or 101.
        c2.execute("INSERT INTO Orders VALUES (NEXTVAL('ids'), 'c', 1)", &[])
            .unwrap();
        let rs = c2.query("SELECT MAX(OrderId) FROM Orders", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(102));
    }

    #[test]
    fn temp_tables_not_logged_or_recovered() {
        let (db, store) = durable_setup();
        let conn = db.connect();
        conn.execute("CREATE TEMP TABLE scratch (v INT)", &[])
            .unwrap();
        conn.execute("INSERT INTO scratch VALUES (1)", &[]).unwrap();
        std::mem::forget(conn);
        drop(db);
        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        assert!(!db2.has_table("scratch"));
        assert!(db2.has_table("Orders"));
    }

    #[test]
    fn stale_prepared_plan_rebinds_on_recovered_instance() {
        // Regression (cross-instance plan reuse): a Prepared bound on the
        // pre-crash instance must re-bind — not execute a stale plan —
        // when run against the recovered instance, even if the two
        // catalogs happen to be at the same epoch number.
        let (db, store) = durable_setup();
        let conn = db.connect();
        let p = conn
            .prepare("UPDATE Orders SET Quantity = Quantity + 1 WHERE OrderId = ?")
            .unwrap();
        conn.execute_prepared(&p, &[Value::Int(1)]).unwrap();
        drop(conn);
        drop(db);

        let db2 = Database::recover("d", Arc::new(store)).unwrap();
        let binds_before = db2.stats().plan_binds;
        let c2 = db2.connect();
        c2.execute_prepared(&p, &[Value::Int(1)]).unwrap();
        assert!(db2.stats().plan_binds > binds_before);
        let rs = c2
            .query("SELECT Quantity FROM Orders WHERE OrderId = 1", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(12));
    }

    #[test]
    fn wal_counters_reported() {
        let (db, _store) = durable_setup();
        let stats = db.stats();
        assert!(stats.wal_appends >= 2);
        assert!(stats.wal_bytes > 0);
        assert_eq!(stats.recoveries, 0);
    }

    #[test]
    fn file_backed_database_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "sqlkernel_wal_test_{}_{}",
            std::process::id(),
            GLOBAL_DB_TAG.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.wal");
        {
            let db = Database::open_durable("f", &path).unwrap();
            let conn = db.connect();
            conn.execute("CREATE TABLE T (a INT PRIMARY KEY)", &[])
                .unwrap();
            conn.execute("INSERT INTO T VALUES (1), (2)", &[]).unwrap();
        }
        {
            let db = Database::open_durable("f", &path).unwrap();
            assert_eq!(db.table_len("T").unwrap(), 2);
            let conn = db.connect();
            conn.execute("INSERT INTO T VALUES (3)", &[]).unwrap();
        }
        let db = Database::open_durable("f", &path).unwrap();
        assert_eq!(db.table_len("T").unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
