//! Write-ahead logging and crash recovery.
//!
//! Every mutating statement appends redo records to a pluggable
//! [`LogStore`] *before* its success is acknowledged; a checkpoint
//! compacts the log into one catalog snapshot record; and
//! [`crate::Database::recover`] rebuilds a byte-identical catalog from
//! the log alone — the in-memory database is treated as lost, exactly as
//! a process crash would lose it.
//!
//! ## Log format
//!
//! The log is a flat byte stream of framed records:
//!
//! ```text
//! ┌─────────────┬──────────────┬───────────────────────────────┐
//! │ len: u32 LE │ checksum:u64 │ payload (len bytes)           │
//! ├─────────────┴──────────────┼───────────┬──────┬────────────┤
//! │                            │ lsn: u64  │ type │ body …     │
//! └────────────────────────────┴───────────┴──────┴────────────┘
//! ```
//!
//! The checksum (FNV-1a over the payload) plus the length prefix give
//! torn-tail detection: recovery scans from the start and stops at the
//! first record whose frame is short, whose checksum mismatches, or
//! whose body fails to decode — everything before that point is the
//! durable history, everything after is discarded.
//!
//! ## Record types
//!
//! * `Begin { txn }` — a transaction produced its first logged write.
//! * `Op { txn, op }` — one redo/undo-capable operation: row DML with
//!   before/after images, or DDL with enough state to reverse it.
//! * `Commit { txn, epoch, sequences }` — the transaction is durable.
//!   Carries the schema epoch (plan-cache invalidation across recovery)
//!   and all sequence counters (committed `NEXTVAL` draws must never be
//!   re-issued).
//! * `Abort { txn }` — the transaction rolled back; recovery undoes it.
//! * `Checkpoint { snapshot }` — full catalog image; the log is reset to
//!   just this record.
//!
//! Recovery is redo-committed / undo-uncommitted (ARIES-lite): replay
//! every op in LSN order from the last valid checkpoint, then undo — in
//! reverse LSN order — the ops of transactions with neither commit nor
//! abort on the log.
//!
//! ## Deliberate non-goals
//!
//! Views and stored procedures are **not** crash-durable (their bodies
//! are ASTs; serializing those is out of scope), and temporary tables
//! are session-scoped by definition — all three are skipped by both op
//! logging and checkpoints.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::catalog::{Catalog, Sequence};
use crate::error::{SqlError, SqlResult};
use crate::fault::crashed_error;
use crate::schema::{Column, TableSchema};
use crate::storage::{Row, RowId, Table};
use crate::sync::Mutex;
use crate::txn::UndoOp;
use crate::types::{DataType, Value};

// ---------------------------------------------------------------- checksum

/// FNV-1a 64-bit — tiny, dependency-free, and a single bit flip anywhere
/// in the payload changes the digest.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- log store

/// Where log bytes live. Implementations must make `append` atomic with
/// respect to concurrent appends (the WAL serializes its own callers, so
/// a simple lock or O_APPEND suffices).
pub trait LogStore: std::fmt::Debug + Send + Sync {
    /// Append bytes to the end of the log.
    fn append(&self, bytes: &[u8]) -> SqlResult<()>;
    /// Read the entire log.
    fn read_all(&self) -> SqlResult<Vec<u8>>;
    /// Atomically replace the whole log (checkpoint truncation).
    fn reset(&self, bytes: &[u8]) -> SqlResult<()>;
    /// Current size in bytes.
    fn size(&self) -> SqlResult<u64>;
}

/// In-memory log store for tests: cloning shares the buffer, so a test
/// can keep a handle, "kill" the database, and recover from the bytes
/// the dead instance left behind.
#[derive(Debug, Clone, Default)]
pub struct MemLogStore {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemLogStore {
    /// Empty store.
    pub fn new() -> MemLogStore {
        MemLogStore::default()
    }

    /// A store pre-loaded with existing log bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> MemLogStore {
        MemLogStore {
            buf: Arc::new(Mutex::new(bytes)),
        }
    }

    /// Copy of the current log contents.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().clone()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> SqlResult<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> SqlResult<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn reset(&self, bytes: &[u8]) -> SqlResult<()> {
        let mut buf = self.buf.lock();
        buf.clear();
        buf.extend_from_slice(bytes);
        Ok(())
    }

    fn size(&self) -> SqlResult<u64> {
        Ok(self.buf.lock().len() as u64)
    }
}

fn io_err(e: std::io::Error) -> SqlError {
    // Disk-full and friends are environmental, not logic bugs: surface
    // them as transient so the retry runtime can absorb the failure.
    SqlError::Transient(format!("wal io: {e}"))
}

/// File-backed log store used by [`crate::Database::open_durable`].
/// Appends go through `O_APPEND`; reset writes a sibling temp file and
/// renames it over the log, so a crash mid-reset leaves either the old
/// or the new log intact, never a mix.
#[derive(Debug)]
pub struct FileLogStore {
    path: std::path::PathBuf,
}

impl FileLogStore {
    /// Store backed by the given path (created on first append).
    pub fn new(path: impl Into<std::path::PathBuf>) -> FileLogStore {
        FileLogStore { path: path.into() }
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> SqlResult<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        // Commit-acknowledge durability: the append must survive power
        // loss before the caller reports success.
        f.sync_data().map_err(io_err)
    }

    fn read_all(&self) -> SqlResult<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn reset(&self, bytes: &[u8]) -> SqlResult<()> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(io_err)?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_data())
            .map_err(io_err)?;
        std::fs::rename(&tmp, &self.path).map_err(io_err)
    }

    fn size(&self) -> SqlResult<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(io_err(e)),
        }
    }
}

// ---------------------------------------------------------------- records

/// One secondary-index definition, as serialized into images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    /// Column positions in the owning table's schema.
    pub columns: Vec<u32>,
    pub unique: bool,
    /// Was the index registered in the catalog's index→table map (true
    /// for `CREATE INDEX` indexes, false for auto-created constraint
    /// backings, which `Table::new` rebuilds on its own)?
    pub registered: bool,
}

/// Full image of one table: schema, rows, row-id allocator, and index
/// definitions. Used by checkpoints and by `DROP TABLE` ops (whose undo
/// must restore the whole table).
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    pub schema: TableSchema,
    pub next_row_id: RowId,
    pub rows: Vec<(RowId, Row)>,
    pub indexes: Vec<IndexDef>,
}

/// One logged operation, carrying enough state for both redo and undo.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    Insert {
        table: String,
        row_id: RowId,
        after: Row,
    },
    Update {
        table: String,
        row_id: RowId,
        before: Row,
        after: Row,
    },
    Delete {
        table: String,
        row_id: RowId,
        before: Row,
    },
    CreateTable {
        schema: TableSchema,
    },
    DropTable {
        image: TableImage,
    },
    CreateIndex {
        table: String,
        def: IndexDef,
    },
    DropIndex {
        table: String,
        def: IndexDef,
    },
    CreateSequence {
        name: String,
        current: i64,
        increment: i64,
    },
    DropSequence {
        name: String,
        current: i64,
        increment: i64,
    },
}

/// Full catalog snapshot written by a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSnapshot {
    pub epoch: u64,
    pub tables: Vec<TableImage>,
    /// `(name, current, increment)` per sequence, sorted by name.
    pub sequences: Vec<(String, i64, i64)>,
}

/// One log record (without its frame).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Begin {
        txn: u64,
    },
    Op {
        txn: u64,
        op: WalOp,
    },
    Commit {
        txn: u64,
        epoch: u64,
        sequences: Vec<(String, i64, i64)>,
    },
    Abort {
        txn: u64,
    },
    Checkpoint(CheckpointSnapshot),
    /// Two-phase-commit participant vote: the transaction's ops are
    /// durable and the participant promises to commit or abort on the
    /// coordinator's decision. Carries everything a later `Commit` needs
    /// (epoch, sequence states at prepare time) so recovery can finish
    /// the transaction from the log alone. `gid` is the coordinator's
    /// global transaction id — the key into its decision log.
    Prepare {
        txn: u64,
        gid: u64,
        epoch: u64,
        sequences: Vec<(String, i64, i64)>,
    },
}

// ---------------------------------------------------------------- encoding

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            put_bool(buf, *b);
        }
        Value::Int(i) => {
            buf.push(2);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(3);
            put_u64(buf, f.to_bits());
        }
        Value::Text(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

pub(crate) fn put_schema(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_str(buf, &schema.name);
    put_bool(buf, schema.temporary);
    put_u32(buf, schema.columns.len() as u32);
    for c in &schema.columns {
        put_str(buf, &c.name);
        buf.push(match c.ty {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
        });
        put_bool(buf, c.not_null);
        put_bool(buf, c.primary_key);
        put_bool(buf, c.unique);
        match &c.default {
            None => put_bool(buf, false),
            Some(v) => {
                put_bool(buf, true);
                put_value(buf, v);
            }
        }
    }
}

pub(crate) fn put_index_def(buf: &mut Vec<u8>, def: &IndexDef) {
    put_str(buf, &def.name);
    put_u32(buf, def.columns.len() as u32);
    for c in &def.columns {
        put_u32(buf, *c);
    }
    put_bool(buf, def.unique);
    put_bool(buf, def.registered);
}

fn put_image(buf: &mut Vec<u8>, image: &TableImage) {
    put_schema(buf, &image.schema);
    put_u64(buf, image.next_row_id);
    put_u32(buf, image.rows.len() as u32);
    for (id, row) in &image.rows {
        put_u64(buf, *id);
        put_row(buf, row);
    }
    put_u32(buf, image.indexes.len() as u32);
    for def in &image.indexes {
        put_index_def(buf, def);
    }
}

pub(crate) fn put_sequences(buf: &mut Vec<u8>, seqs: &[(String, i64, i64)]) {
    put_u32(buf, seqs.len() as u32);
    for (name, current, increment) in seqs {
        put_str(buf, name);
        put_i64(buf, *current);
        put_i64(buf, *increment);
    }
}

fn put_op(buf: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert {
            table,
            row_id,
            after,
        } => {
            buf.push(1);
            put_str(buf, table);
            put_u64(buf, *row_id);
            put_row(buf, after);
        }
        WalOp::Update {
            table,
            row_id,
            before,
            after,
        } => {
            buf.push(2);
            put_str(buf, table);
            put_u64(buf, *row_id);
            put_row(buf, before);
            put_row(buf, after);
        }
        WalOp::Delete {
            table,
            row_id,
            before,
        } => {
            buf.push(3);
            put_str(buf, table);
            put_u64(buf, *row_id);
            put_row(buf, before);
        }
        WalOp::CreateTable { schema } => {
            buf.push(4);
            put_schema(buf, schema);
        }
        WalOp::DropTable { image } => {
            buf.push(5);
            put_image(buf, image);
        }
        WalOp::CreateIndex { table, def } => {
            buf.push(6);
            put_str(buf, table);
            put_index_def(buf, def);
        }
        WalOp::DropIndex { table, def } => {
            buf.push(7);
            put_str(buf, table);
            put_index_def(buf, def);
        }
        WalOp::CreateSequence {
            name,
            current,
            increment,
        } => {
            buf.push(8);
            put_str(buf, name);
            put_i64(buf, *current);
            put_i64(buf, *increment);
        }
        WalOp::DropSequence {
            name,
            current,
            increment,
        } => {
            buf.push(9);
            put_str(buf, name);
            put_i64(buf, *current);
            put_i64(buf, *increment);
        }
    }
}

/// Encode one record — frame, checksum, and payload — at the given LSN.
pub fn encode_record(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, lsn);
    match record {
        WalRecord::Begin { txn } => {
            payload.push(1);
            put_u64(&mut payload, *txn);
        }
        WalRecord::Op { txn, op } => {
            payload.push(2);
            put_u64(&mut payload, *txn);
            put_op(&mut payload, op);
        }
        WalRecord::Commit {
            txn,
            epoch,
            sequences,
        } => {
            payload.push(3);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *epoch);
            put_sequences(&mut payload, sequences);
        }
        WalRecord::Abort { txn } => {
            payload.push(4);
            put_u64(&mut payload, *txn);
        }
        WalRecord::Checkpoint(snap) => {
            payload.push(5);
            put_u64(&mut payload, snap.epoch);
            put_u32(&mut payload, snap.tables.len() as u32);
            for t in &snap.tables {
                put_image(&mut payload, t);
            }
            put_sequences(&mut payload, &snap.sequences);
        }
        WalRecord::Prepare {
            txn,
            gid,
            epoch,
            sequences,
        } => {
            payload.push(6);
            put_u64(&mut payload, *txn);
            put_u64(&mut payload, *gid);
            put_u64(&mut payload, *epoch);
            put_sequences(&mut payload, sequences);
        }
    }
    let mut framed = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut framed, payload.len() as u32);
    put_u64(&mut framed, checksum(&payload));
    framed.extend_from_slice(&payload);
    framed
}

// ---------------------------------------------------------------- decoding

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short() -> SqlError {
    SqlError::Runtime("wal: truncated record body".into())
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed — full-consumption checks by out-of-module
    /// decoders (the paged engine's directory/meta codecs).
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SqlResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(short());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> SqlResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> SqlResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> SqlResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> SqlResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> SqlResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SqlError::Runtime(format!("wal: bad bool byte {b}"))),
        }
    }

    fn str(&mut self) -> SqlResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SqlError::Runtime("wal: invalid utf-8 in record".into()))
    }

    fn value(&mut self) -> SqlResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::Text(self.str()?)),
            t => Err(SqlError::Runtime(format!("wal: bad value tag {t}"))),
        }
    }

    pub(crate) fn row(&mut self) -> SqlResult<Row> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            // A row can't have more cells than remaining bytes; reject
            // early so a corrupt length can't trigger a huge allocation.
            return Err(short());
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    pub(crate) fn schema(&mut self) -> SqlResult<TableSchema> {
        let name = self.str()?;
        let temporary = self.bool()?;
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(short());
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let cname = self.str()?;
            let ty = match self.u8()? {
                0 => DataType::Int,
                1 => DataType::Float,
                2 => DataType::Text,
                3 => DataType::Bool,
                t => return Err(SqlError::Runtime(format!("wal: bad type tag {t}"))),
            };
            let mut col = Column::new(cname, ty);
            col.not_null = self.bool()?;
            col.primary_key = self.bool()?;
            col.unique = self.bool()?;
            if self.bool()? {
                col.default = Some(self.value()?);
            }
            columns.push(col);
        }
        TableSchema::new(name, columns, temporary)
    }

    pub(crate) fn index_def(&mut self) -> SqlResult<IndexDef> {
        let name = self.str()?;
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(short());
        }
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            columns.push(self.u32()?);
        }
        let unique = self.bool()?;
        let registered = self.bool()?;
        Ok(IndexDef {
            name,
            columns,
            unique,
            registered,
        })
    }

    fn image(&mut self) -> SqlResult<TableImage> {
        let schema = self.schema()?;
        let next_row_id = self.u64()?;
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(short());
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u64()?;
            rows.push((id, self.row()?));
        }
        let ni = self.u32()? as usize;
        if ni > self.buf.len() - self.pos {
            return Err(short());
        }
        let mut indexes = Vec::with_capacity(ni);
        for _ in 0..ni {
            indexes.push(self.index_def()?);
        }
        Ok(TableImage {
            schema,
            next_row_id,
            rows,
            indexes,
        })
    }

    pub(crate) fn sequences(&mut self) -> SqlResult<Vec<(String, i64, i64)>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(short());
        }
        let mut seqs = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str()?;
            let current = self.i64()?;
            let increment = self.i64()?;
            seqs.push((name, current, increment));
        }
        Ok(seqs)
    }

    fn op(&mut self) -> SqlResult<WalOp> {
        match self.u8()? {
            1 => Ok(WalOp::Insert {
                table: self.str()?,
                row_id: self.u64()?,
                after: self.row()?,
            }),
            2 => Ok(WalOp::Update {
                table: self.str()?,
                row_id: self.u64()?,
                before: self.row()?,
                after: self.row()?,
            }),
            3 => Ok(WalOp::Delete {
                table: self.str()?,
                row_id: self.u64()?,
                before: self.row()?,
            }),
            4 => Ok(WalOp::CreateTable {
                schema: self.schema()?,
            }),
            5 => Ok(WalOp::DropTable {
                image: self.image()?,
            }),
            6 => Ok(WalOp::CreateIndex {
                table: self.str()?,
                def: self.index_def()?,
            }),
            7 => Ok(WalOp::DropIndex {
                table: self.str()?,
                def: self.index_def()?,
            }),
            8 => Ok(WalOp::CreateSequence {
                name: self.str()?,
                current: self.i64()?,
                increment: self.i64()?,
            }),
            9 => Ok(WalOp::DropSequence {
                name: self.str()?,
                current: self.i64()?,
                increment: self.i64()?,
            }),
            t => Err(SqlError::Runtime(format!("wal: bad op tag {t}"))),
        }
    }
}

/// Decode one framed payload (everything after the len+checksum header).
/// Fails — and the scanner treats the log as ending — on any malformed
/// byte or trailing garbage.
pub fn decode_payload(payload: &[u8]) -> SqlResult<(u64, WalRecord)> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let record = match r.u8()? {
        1 => WalRecord::Begin { txn: r.u64()? },
        2 => WalRecord::Op {
            txn: r.u64()?,
            op: r.op()?,
        },
        3 => WalRecord::Commit {
            txn: r.u64()?,
            epoch: r.u64()?,
            sequences: r.sequences()?,
        },
        4 => WalRecord::Abort { txn: r.u64()? },
        5 => {
            let epoch = r.u64()?;
            let nt = r.u32()? as usize;
            if nt > payload.len() {
                return Err(short());
            }
            let mut tables = Vec::with_capacity(nt);
            for _ in 0..nt {
                tables.push(r.image()?);
            }
            let sequences = r.sequences()?;
            WalRecord::Checkpoint(CheckpointSnapshot {
                epoch,
                tables,
                sequences,
            })
        }
        6 => WalRecord::Prepare {
            txn: r.u64()?,
            gid: r.u64()?,
            epoch: r.u64()?,
            sequences: r.sequences()?,
        },
        t => return Err(SqlError::Runtime(format!("wal: bad record tag {t}"))),
    };
    if r.pos != payload.len() {
        return Err(SqlError::Runtime("wal: trailing bytes in record".into()));
    }
    Ok((lsn, record))
}

/// Result of scanning a raw log: the valid record prefix and where it ends.
#[derive(Debug)]
pub struct ScannedLog {
    /// `(lsn, record)` pairs in log order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix.
    pub valid_len: usize,
    /// True when bytes past `valid_len` were discarded (torn tail or
    /// checksum corruption).
    pub truncated: bool,
    /// How many tail bytes were dropped — recorded, not silently lost,
    /// so recovery can report the damage in [`crate::DbStats`].
    pub dropped_bytes: u64,
}

/// Scan a log, stopping at the first record that is short, fails its
/// checksum, or fails to decode. Everything before that point is the
/// durable history.
pub fn scan(bytes: &[u8]) -> ScannedLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 12 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if bytes.len() - pos - 12 < len {
            break; // torn frame
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        if checksum(payload) != sum {
            break; // corrupt payload
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
        pos += 12 + len;
    }
    ScannedLog {
        records,
        valid_len: pos,
        truncated: pos < bytes.len(),
        dropped_bytes: (bytes.len() - pos) as u64,
    }
}

// ------------------------------------------------------------ op derivation

fn row_of(catalog: &Catalog, table: &str, row_id: RowId) -> Option<Row> {
    let t = catalog.table(table).ok()?;
    t.get(row_id).map(|arc| (**arc).clone())
}

fn is_temp(catalog: &Catalog, table: &str) -> bool {
    catalog
        .table(table)
        .map(|t| t.schema.temporary)
        .unwrap_or(false)
}

fn index_defs_of(catalog: &Catalog, table: &Table) -> Vec<IndexDef> {
    table
        .index_iter()
        .map(|i| IndexDef {
            name: i.name.clone(),
            columns: i.columns.iter().map(|&c| c as u32).collect(),
            unique: i.unique,
            registered: catalog.index_table(&i.name).is_some(),
        })
        .collect()
}

pub(crate) fn image_of(catalog: &Catalog, table: &Table) -> TableImage {
    TableImage {
        schema: table.schema.clone(),
        next_row_id: table.next_row_id(),
        rows: table
            .iter()
            .map(|(id, row)| (id, (**row).clone()))
            .collect(),
        indexes: index_defs_of(catalog, table),
    }
}

/// Build a checkpoint snapshot of the catalog (temporary tables excluded —
/// they die with their connection, so they must not be resurrected by
/// recovery).
pub fn snapshot_catalog(catalog: &Catalog) -> CheckpointSnapshot {
    let mut tables = Vec::new();
    for name in catalog.table_names() {
        let t = catalog.table(&name).expect("table listed by catalog");
        if t.schema.temporary {
            continue;
        }
        tables.push(image_of(catalog, &t));
    }
    CheckpointSnapshot {
        epoch: catalog.epoch(),
        tables,
        sequences: catalog.sequence_states(),
    }
}

/// Derive redo records from a successful statement's scratch undo log.
/// Must run while the statement's catalog lock is still held, so the
/// after-images read here are exactly what the statement produced.
///
/// Views and stored procedures are skipped (not crash-durable), as is
/// anything touching a temporary table.
pub fn ops_from_undo(catalog: &Catalog, undo_ops: &[UndoOp]) -> Vec<WalOp> {
    let mut out = Vec::with_capacity(undo_ops.len());
    for op in undo_ops {
        match op {
            UndoOp::Insert { table, row_id } => {
                if is_temp(catalog, table) {
                    continue;
                }
                if let Some(after) = row_of(catalog, table, *row_id) {
                    out.push(WalOp::Insert {
                        table: table.clone(),
                        row_id: *row_id,
                        after,
                    });
                }
            }
            UndoOp::Update { table, row_id, old } => {
                if is_temp(catalog, table) {
                    continue;
                }
                if let Some(after) = row_of(catalog, table, *row_id) {
                    out.push(WalOp::Update {
                        table: table.clone(),
                        row_id: *row_id,
                        before: old.clone(),
                        after,
                    });
                }
            }
            UndoOp::Delete { table, row_id, row } => {
                if is_temp(catalog, table) {
                    continue;
                }
                out.push(WalOp::Delete {
                    table: table.clone(),
                    row_id: *row_id,
                    before: row.clone(),
                });
            }
            UndoOp::CreateTable { name } => {
                if let Ok(t) = catalog.table(name) {
                    if !t.schema.temporary {
                        out.push(WalOp::CreateTable {
                            schema: t.schema.clone(),
                        });
                    }
                }
            }
            UndoOp::DropTable { table } => {
                if table.schema.temporary {
                    continue;
                }
                out.push(WalOp::DropTable {
                    // The table is out of the catalog now; `registered`
                    // is reconstructed as "non-auto" (`CREATE INDEX`
                    // registers, constraint backings don't).
                    image: TableImage {
                        schema: table.schema.clone(),
                        next_row_id: table.next_row_id(),
                        rows: table
                            .iter()
                            .map(|(id, row)| (id, (**row).clone()))
                            .collect(),
                        indexes: table
                            .index_iter()
                            .map(|i| IndexDef {
                                name: i.name.clone(),
                                columns: i.columns.iter().map(|&c| c as u32).collect(),
                                unique: i.unique,
                                registered: !is_auto_index(&table.schema, &i.name),
                            })
                            .collect(),
                    },
                });
            }
            UndoOp::CreateIndex { table, index } => {
                if is_temp(catalog, table) {
                    continue;
                }
                if let Ok(t) = catalog.table(table) {
                    if let Some(i) = t.index_iter().find(|i| i.name.eq_ignore_ascii_case(index)) {
                        out.push(WalOp::CreateIndex {
                            table: table.clone(),
                            def: IndexDef {
                                name: i.name.clone(),
                                columns: i.columns.iter().map(|&c| c as u32).collect(),
                                unique: i.unique,
                                registered: catalog.index_table(&i.name).is_some(),
                            },
                        });
                    }
                }
            }
            UndoOp::DropIndex { table, index } => {
                if is_temp(catalog, table) {
                    continue;
                }
                out.push(WalOp::DropIndex {
                    table: table.clone(),
                    def: IndexDef {
                        name: index.name.clone(),
                        columns: index.columns.iter().map(|&c| c as u32).collect(),
                        unique: index.unique,
                        // Only registered indexes are reachable by DROP INDEX.
                        registered: true,
                    },
                });
            }
            UndoOp::CreateSequence { name } => {
                if let Ok(s) = catalog.sequence(name) {
                    out.push(WalOp::CreateSequence {
                        name: s.name.clone(),
                        current: s.peek(),
                        increment: s.increment,
                    });
                }
            }
            UndoOp::DropSequence { seq } => {
                out.push(WalOp::DropSequence {
                    name: seq.name.clone(),
                    current: seq.peek(),
                    increment: seq.increment,
                });
            }
            // Not crash-durable: procedure and view bodies are ASTs.
            UndoOp::CreateProcedure { .. }
            | UndoOp::DropProcedure { .. }
            | UndoOp::CreateView { .. }
            | UndoOp::DropView { .. } => {}
            // No redo needed: the Commit record's sequence snapshot
            // carries the cursor; draws only matter for in-memory undo.
            UndoOp::SequenceDraw { .. } => {}
        }
    }
    out
}

/// Fast-path variant of [`ops_from_undo`]: the after-images are read
/// from the caller's *held* table guard instead of re-entering the
/// catalog's table map (which would self-deadlock on the per-table
/// lock). Only row operations can occur on that path — the fast path is
/// restricted to single-table, subquery-free DML — so any other entry is
/// a logic error.
pub fn ops_from_undo_on(table: &Table, undo_ops: &[UndoOp]) -> Vec<WalOp> {
    if table.schema.temporary {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(undo_ops.len());
    for op in undo_ops {
        match op {
            UndoOp::Insert {
                table: name,
                row_id,
            } => {
                if let Some(after) = table.get(*row_id) {
                    out.push(WalOp::Insert {
                        table: name.clone(),
                        row_id: *row_id,
                        after: (**after).clone(),
                    });
                }
            }
            UndoOp::Update {
                table: name,
                row_id,
                old,
            } => {
                if let Some(after) = table.get(*row_id) {
                    out.push(WalOp::Update {
                        table: name.clone(),
                        row_id: *row_id,
                        before: old.clone(),
                        after: (**after).clone(),
                    });
                }
            }
            UndoOp::Delete {
                table: name,
                row_id,
                row,
            } => {
                out.push(WalOp::Delete {
                    table: name.clone(),
                    row_id: *row_id,
                    before: row.clone(),
                });
            }
            _ => debug_assert!(false, "fast-path undo log holds only row ops"),
        }
    }
    out
}

/// Is this index one that `Table::new` re-creates automatically from the
/// schema (primary-key or single-column UNIQUE backing)?
fn is_auto_index(schema: &TableSchema, index_name: &str) -> bool {
    if index_name.eq_ignore_ascii_case(&format!("{}_pk", schema.name)) {
        return true;
    }
    schema.columns.iter().any(|c| {
        c.unique
            && !c.primary_key
            && index_name.eq_ignore_ascii_case(&format!("{}_{}_unique", schema.name, c.name))
    })
}

// ---------------------------------------------------------------- replay

fn column_names(schema: &TableSchema, positions: &[u32]) -> Vec<String> {
    positions
        .iter()
        .filter_map(|&p| schema.columns.get(p as usize).map(|c| c.name.clone()))
        .collect()
}

pub(crate) fn install_image(catalog: &mut Catalog, image: &TableImage) {
    if catalog.has_table(&image.schema.name) {
        return;
    }
    let mut t = Table::new(image.schema.clone());
    for def in &image.indexes {
        if t.has_index(&def.name) {
            continue; // auto-created by Table::new
        }
        let cols = column_names(&image.schema, &def.columns);
        let _ = t.create_index(def.name.clone(), &cols, def.unique);
    }
    for (id, row) in &image.rows {
        t.restore(*id, row.clone());
    }
    t.set_next_row_id(image.next_row_id);
    let name = image.schema.name.clone();
    if catalog.add_table(t).is_ok() {
        for def in &image.indexes {
            if def.registered {
                let _ = catalog.register_index(&def.name, &name);
            }
        }
    }
}

/// Apply one op forward (redo). Individual failures are ignored: redo is
/// idempotent over already-present state by construction.
pub(crate) fn apply_redo(catalog: &mut Catalog, op: &WalOp) {
    match op {
        WalOp::Insert {
            table,
            row_id,
            after,
        } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                t.restore(*row_id, after.clone());
            }
        }
        WalOp::Update {
            table,
            row_id,
            after,
            ..
        } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                t.raw_replace(*row_id, after.clone());
            }
        }
        WalOp::Delete { table, row_id, .. } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                let _ = t.delete(*row_id);
            }
        }
        WalOp::CreateTable { schema } => {
            let _ = catalog.add_table(Table::new(schema.clone()));
        }
        WalOp::DropTable { image } => {
            let _ = catalog.remove_table(&image.schema.name);
        }
        WalOp::CreateIndex { table, def } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                if !t.has_index(&def.name) {
                    let cols = column_names(&t.schema, &def.columns);
                    let _ = t.create_index(def.name.clone(), &cols, def.unique);
                }
            }
            if def.registered {
                let _ = catalog.register_index(&def.name, table);
            }
        }
        WalOp::DropIndex { table, def } => {
            catalog.unregister_index(&def.name);
            if let Ok(mut t) = catalog.table_mut(table) {
                let _ = t.drop_index(&def.name);
            }
        }
        WalOp::CreateSequence {
            name,
            current,
            increment,
        } => {
            let _ = catalog.add_sequence(Sequence::new(name.clone(), *current, *increment));
        }
        WalOp::DropSequence { name, .. } => {
            let _ = catalog.remove_sequence(name);
        }
    }
}

/// Apply one op backward (undo of an uncommitted/aborted transaction).
fn apply_undo(catalog: &mut Catalog, op: &WalOp) {
    match op {
        WalOp::Insert { table, row_id, .. } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                let _ = t.delete(*row_id);
            }
        }
        WalOp::Update {
            table,
            row_id,
            before,
            ..
        } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                t.raw_replace(*row_id, before.clone());
            }
        }
        WalOp::Delete {
            table,
            row_id,
            before,
        } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                t.restore(*row_id, before.clone());
            }
        }
        WalOp::CreateTable { schema } => {
            let _ = catalog.remove_table(&schema.name);
        }
        WalOp::DropTable { image } => {
            install_image(catalog, image);
        }
        WalOp::CreateIndex { table, def } => {
            catalog.unregister_index(&def.name);
            if let Ok(mut t) = catalog.table_mut(table) {
                let _ = t.drop_index(&def.name);
            }
        }
        WalOp::DropIndex { table, def } => {
            if let Ok(mut t) = catalog.table_mut(table) {
                if !t.has_index(&def.name) {
                    let cols = column_names(&t.schema, &def.columns);
                    let _ = t.create_index(def.name.clone(), &cols, def.unique);
                }
            }
            if def.registered {
                let _ = catalog.register_index(&def.name, table);
            }
        }
        WalOp::CreateSequence { name, .. } => {
            let _ = catalog.remove_sequence(name);
        }
        WalOp::DropSequence {
            name,
            current,
            increment,
        } => {
            let _ = catalog.add_sequence(Sequence::new(name.clone(), *current, *increment));
        }
    }
}

/// Rebuild a catalog from a snapshot.
fn catalog_from_snapshot(snap: &CheckpointSnapshot) -> Catalog {
    let mut catalog = Catalog::new();
    for image in &snap.tables {
        install_image(&mut catalog, image);
    }
    for (name, current, increment) in &snap.sequences {
        let _ = catalog.add_sequence(Sequence::new(name.clone(), *current, *increment));
    }
    catalog
}

/// A transaction the crash interrupted *after* its `Prepare` record but
/// before a decision terminator: its ops are durable (and stay applied
/// in the replayed catalog) but only the coordinator's decision log
/// knows whether they stand. [`resolve_in_doubt`] finishes the job.
#[derive(Debug, Clone)]
pub struct InDoubtTxn {
    /// Participant-local transaction id.
    pub txn: u64,
    /// Coordinator's global transaction id (decision-log key).
    pub gid: u64,
    /// Catalog epoch carried by the prepare record.
    pub epoch: u64,
    /// Sequence states at prepare time — applied only on commit.
    pub sequences: Vec<(String, i64, i64)>,
    /// The transaction's redone ops, in LSN order, still applied in the
    /// replayed catalog. An abort decision undoes them in reverse.
    pub ops: Vec<(u64, WalOp)>,
}

/// Everything [`crate::Database::recover`] needs to resurrect a database.
#[derive(Debug)]
pub struct RecoveryOutcome {
    pub catalog: Catalog,
    /// First LSN the revived WAL should assign.
    pub next_lsn: u64,
    /// First transaction id the revived WAL should assign.
    pub next_txn: u64,
    /// Byte length of the valid log prefix.
    pub valid_len: usize,
    /// True when a torn tail or corrupt record was discarded.
    pub truncated: bool,
    /// Committed transactions replayed.
    pub committed: u64,
    /// Uncommitted or aborted transactions rolled back.
    pub rolled_back: u64,
    /// Individual ops redone during replay.
    pub replayed_ops: u64,
    /// Prepared-but-undecided transactions awaiting a coordinator
    /// decision. Their ops are applied in `catalog`; the caller MUST run
    /// [`resolve_in_doubt`] before serving traffic from it.
    pub in_doubt: Vec<InDoubtTxn>,
    /// Torn-tail bytes dropped by the scan, surfaced for observability.
    pub dropped_bytes: u64,
}

/// Replay a raw log: load the last valid checkpoint, redo every op after
/// it in LSN order, then undo — in reverse LSN order — the ops of
/// transactions that neither committed nor aborted.
pub fn replay(bytes: &[u8]) -> RecoveryOutcome {
    let scanned = scan(bytes);
    let checkpoint_at = scanned
        .records
        .iter()
        .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint(_)));
    let (catalog, max_epoch, anchor_lsn) = match checkpoint_at {
        Some(i) => {
            let WalRecord::Checkpoint(snap) = &scanned.records[i].1 else {
                unreachable!("rposition matched a checkpoint");
            };
            // Records at or before the checkpoint's LSN are folded into
            // the snapshot; the byte order of a log is its LSN order, so
            // the LSN gate below is exactly the old index gate.
            (
                catalog_from_snapshot(snap),
                snap.epoch,
                scanned.records[i].0,
            )
        }
        None => (Catalog::new(), 0, 0),
    };
    replay_scanned(catalog, max_epoch, &scanned, anchor_lsn)
}

/// Replay a scanned log on top of an externally loaded base catalog —
/// the paged engine's recovery path, where the base comes from the page
/// store's last checkpoint epoch rather than an in-log snapshot. Only
/// records with `lsn > anchor_lsn` are redone; everything at or before
/// the anchor is already folded into `base`.
pub fn replay_onto(
    base: Catalog,
    base_epoch: u64,
    scanned: &ScannedLog,
    anchor_lsn: u64,
) -> RecoveryOutcome {
    replay_scanned(base, base_epoch, scanned, anchor_lsn)
}

fn replay_scanned(
    mut catalog: Catalog,
    mut max_epoch: u64,
    scanned: &ScannedLog,
    anchor_lsn: u64,
) -> RecoveryOutcome {
    let mut open: HashMap<u64, Vec<(u64, WalOp)>> = HashMap::new();
    // gid, epoch, and the prepare-time sequence states, keyed by txn id.
    type PreparedState = (u64, u64, Vec<(String, i64, i64)>);
    let mut prepared: HashMap<u64, PreparedState> = HashMap::new();
    let mut max_lsn = 0u64;
    let mut max_txn = 0u64;
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    let mut replayed_ops = 0u64;

    for (lsn, record) in scanned.records.iter() {
        max_lsn = max_lsn.max(*lsn);
        match record {
            WalRecord::Checkpoint(_) => {}
            WalRecord::Begin { txn } => {
                max_txn = max_txn.max(*txn);
            }
            WalRecord::Op { txn, op } => {
                max_txn = max_txn.max(*txn);
                // Ops at or before the anchor are already folded into
                // the base image; only replay past it.
                if *lsn <= anchor_lsn {
                    continue;
                }
                apply_redo(&mut catalog, op);
                replayed_ops += 1;
                open.entry(*txn).or_default().push((*lsn, op.clone()));
            }
            WalRecord::Commit {
                txn,
                epoch,
                sequences,
            } => {
                max_txn = max_txn.max(*txn);
                max_epoch = max_epoch.max(*epoch);
                prepared.remove(txn);
                if open.remove(txn).is_some() {
                    committed += 1;
                }
                if *lsn <= anchor_lsn {
                    // Pre-anchor sequence states are older than the base
                    // image's; applying them would regress the counters.
                    continue;
                }
                for (name, current, _inc) in sequences {
                    if let Ok(s) = catalog.sequence(name) {
                        s.set_current(*current);
                    }
                }
            }
            WalRecord::Abort { txn } => {
                max_txn = max_txn.max(*txn);
                prepared.remove(txn);
                if let Some(mut ops) = open.remove(txn) {
                    rolled_back += 1;
                    while let Some((_, op)) = ops.pop() {
                        apply_undo(&mut catalog, &op);
                    }
                }
            }
            WalRecord::Prepare {
                txn,
                gid,
                epoch,
                sequences,
            } => {
                max_txn = max_txn.max(*txn);
                max_epoch = max_epoch.max(*epoch);
                prepared.insert(*txn, (*gid, *epoch, sequences.clone()));
            }
        }
    }

    // Prepared-but-undecided transactions are NOT losers: their ops stay
    // applied and the caller resolves them against the coordinator's
    // decision log ([`resolve_in_doubt`]). Everything else without a
    // terminator is a loser and gets undone below.
    let mut in_doubt = Vec::new();
    for (txn, (gid, epoch, sequences)) in prepared {
        let ops = open.remove(&txn).unwrap_or_default();
        in_doubt.push(InDoubtTxn {
            txn,
            gid,
            epoch,
            sequences,
            ops,
        });
    }
    // Deterministic resolution order regardless of hash-map iteration.
    in_doubt.sort_by_key(|t| t.txn);

    // Loser transactions: no commit, no abort — the crash interrupted
    // them. Undo all their ops in reverse global LSN order.
    let mut losers: Vec<(u64, WalOp)> = open.into_values().flatten().collect();
    if !losers.is_empty() {
        rolled_back += 1;
        losers.sort_by_key(|(lsn, _)| *lsn);
        for (_, op) in losers.iter().rev() {
            apply_undo(&mut catalog, op);
        }
    }

    // The recovered epoch must exceed anything a pre-crash plan could
    // have been bound against. `max_epoch` covers committed history;
    // replay's own bumps cover the rest; the +1 makes it strict.
    let epoch_floor = max_epoch.max(catalog.epoch()) + 1;
    catalog.force_epoch(epoch_floor);

    RecoveryOutcome {
        catalog,
        next_lsn: max_lsn + 1,
        next_txn: max_txn + 1,
        valid_len: scanned.valid_len,
        truncated: scanned.truncated,
        committed,
        rolled_back,
        replayed_ops,
        in_doubt,
        dropped_bytes: scanned.dropped_bytes,
    }
}

/// What [`resolve_in_doubt`] did, plus the decision terminators the
/// caller must append to the revived log so the next recovery finds
/// every transaction decided.
#[derive(Debug, Default)]
pub struct InDoubtResolution {
    /// `Commit` / `Abort` terminators to append, in resolution order.
    pub records: Vec<WalRecord>,
    /// In-doubt transactions resolved to commit.
    pub committed: u64,
    /// In-doubt transactions resolved to abort (presumed abort included).
    pub aborted: u64,
}

/// Resolve replay's in-doubt transactions against a coordinator
/// decision: `decide` returns `true` to commit (the 2PC presumed-abort
/// rule means "no decision on record" must map to `false`). Commit
/// applies the prepare-time sequence states; abort undoes the
/// transactions' ops in reverse global LSN order. An error from `decide`
/// (e.g. the decision log is unreachable after retries) aborts the whole
/// recovery — guessing would break cross-shard atomicity.
pub fn resolve_in_doubt(
    catalog: &mut Catalog,
    in_doubt: Vec<InDoubtTxn>,
    mut decide: impl FnMut(&InDoubtTxn) -> SqlResult<bool>,
) -> SqlResult<InDoubtResolution> {
    let mut out = InDoubtResolution::default();
    let mut abort_ops: Vec<(u64, WalOp)> = Vec::new();
    for txn in in_doubt {
        if decide(&txn)? {
            for (name, current, _inc) in &txn.sequences {
                if let Ok(s) = catalog.sequence(name) {
                    s.set_current(*current);
                }
            }
            out.records.push(WalRecord::Commit {
                txn: txn.txn,
                epoch: txn.epoch,
                sequences: txn.sequences,
            });
            out.committed += 1;
        } else {
            abort_ops.extend(txn.ops);
            out.records.push(WalRecord::Abort { txn: txn.txn });
            out.aborted += 1;
        }
    }
    abort_ops.sort_by_key(|(lsn, _)| *lsn);
    for (_, op) in abort_ops.iter().rev() {
        apply_undo(catalog, op);
    }
    Ok(out)
}

// ---------------------------------------------------------------- manager

/// How much of an append actually reaches the store — crash faults chop
/// the buffer to model a process dying mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendMode {
    /// All records, fully framed.
    Full,
    /// All but roughly half of the final record's bytes: a torn tail.
    Torn,
}

/// Shared state of the group-commit sequencer. All LSN assignment and
/// byte accumulation happens under this mutex, so the byte order of the
/// log always equals LSN order.
#[derive(Debug, Default)]
struct GroupState {
    /// Encoded, framed bytes of the generation currently accumulating.
    buf: Vec<u8>,
    /// Commit records contained in `buf` (for the commits counter).
    buf_commits: u64,
    /// Generation currently accumulating; bumped when a leader takes the
    /// buffer to flush it.
    gen: u64,
    /// Is a leader currently flushing a taken generation?
    flushing: bool,
    /// Highest generation whose flush has completed (ok or failed).
    done_gen: u64,
    /// Generations whose flush failed: every member of such a generation
    /// must report failure so its caller rolls back its in-memory
    /// effects. Only ever populated by genuine store errors, so growth is
    /// not a concern.
    failed: Vec<u64>,
}

/// The per-database WAL manager: assigns LSNs and transaction ids,
/// encodes and appends records, and writes checkpoints.
///
/// Appends go through a *group-commit sequencer*: records arriving from
/// concurrent statements are coalesced into one store append per flush
/// window. The window is measured in scheduler yields (virtual ticks,
/// like the fault clock) so single-threaded behavior is untouched at the
/// default window of 0 — an uncontended append with an empty buffer
/// bypasses grouping entirely and hits the store directly.
#[derive(Debug)]
pub struct Wal {
    store: Arc<dyn LogStore>,
    next_lsn: AtomicU64,
    next_txn: AtomicU64,
    appends: AtomicU64,
    bytes_written: AtomicU64,
    checkpoints: AtomicU64,
    /// Commit records appended (the denominator of appends-per-commit).
    commits: AtomicU64,
    /// Explicit transactions with a logged `Begin` but no terminator yet.
    active_txns: AtomicU64,
    /// Transactions sitting in the 2PC prepared window: a `Prepare`
    /// record is on the log but the coordinator's decision has not been
    /// applied yet. Checkpointing while this is non-zero would bake an
    /// undecided transaction into the snapshot, so `Database::checkpoint`
    /// refuses while it is non-zero.
    prepared_txns: AtomicU64,
    /// Cumulative `Prepare` records appended (monotonic counter).
    prepares: AtomicU64,
    /// Flush window in scheduler yields a group-commit leader waits
    /// before taking the buffer. 0 disables the wait (but concurrent
    /// arrivals during a flush still coalesce into the next generation).
    group_window: AtomicU64,
    group: Mutex<GroupState>,
    /// Signalled when a flush generation completes or a leader steps down.
    group_done: std::sync::Condvar,
    /// Set (under the group mutex) once a torn append has put its
    /// truncated tail on the log: the modeled process is dead and the
    /// tear must stay the *last* bytes of the stream. Recovery stops
    /// scanning at the tear, so any append accepted after it would be
    /// acknowledged to its caller and then silently discarded — a
    /// durability violation. Concurrent appends that passed the
    /// injector's frozen check before the crash landed are refused here
    /// instead.
    sealed: AtomicBool,
}

impl Wal {
    /// Manager over `store`, continuing from the given counters.
    pub fn new(store: Arc<dyn LogStore>, next_lsn: u64, next_txn: u64) -> Wal {
        Wal {
            store,
            next_lsn: AtomicU64::new(next_lsn.max(1)),
            next_txn: AtomicU64::new(next_txn.max(1)),
            appends: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            active_txns: AtomicU64::new(0),
            prepared_txns: AtomicU64::new(0),
            prepares: AtomicU64::new(0),
            group_window: AtomicU64::new(0),
            group: Mutex::new(GroupState::default()),
            group_done: std::sync::Condvar::new(),
            sealed: AtomicBool::new(false),
        }
    }

    /// The backing store.
    pub fn store(&self) -> Arc<dyn LogStore> {
        Arc::clone(&self.store)
    }

    /// Highest LSN handed out so far (0 if none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Seal the log: refuse every further append, as if the process died
    /// with this tail. Used when a paged checkpoint is killed mid-flight.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Relaxed);
    }

    /// Drop every record with `lsn <= keep_after_lsn` from the head of
    /// the log — the paged engine's incremental checkpoint: once a page
    /// epoch is durable at anchor A(N), only the tail past the *previous*
    /// anchor is still needed (the extra window backs torn-page repair).
    /// Walks whole frames so the retained suffix stays self-framing.
    pub fn truncate_before(&self, keep_after_lsn: u64) -> SqlResult<()> {
        let _guard = self.group.lock();
        if self.sealed.load(Ordering::Relaxed) {
            return Err(crashed_error());
        }
        let bytes = self.store.read_all()?;
        let mut pos = 0usize;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if bytes.len() - pos - 12 < len || len < 8 {
                break; // torn or undecodable frame: keep it and the rest
            }
            let lsn = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
            if lsn > keep_after_lsn {
                break;
            }
            pos += 12 + len;
        }
        self.store.reset(&bytes[pos..])?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Allocate a transaction id.
    pub fn alloc_txn(&self) -> u64 {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// An explicit transaction logged its `Begin`.
    pub fn note_txn_open(&self) {
        self.active_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// An explicit transaction logged its `Commit`/`Abort`.
    pub fn note_txn_closed(&self) {
        self.active_txns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Explicit transactions currently open on the log.
    pub fn active_txns(&self) -> u64 {
        self.active_txns.load(Ordering::Relaxed)
    }

    /// A transaction logged its `Prepare` and entered the in-doubt window.
    pub fn note_prepared(&self) {
        self.prepared_txns.fetch_add(1, Ordering::Relaxed);
        self.prepares.fetch_add(1, Ordering::Relaxed);
    }

    /// A prepared transaction was decided (committed or aborted).
    pub fn note_prepared_resolved(&self) {
        self.prepared_txns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Transactions currently sitting in the prepared (in-doubt) window.
    pub fn prepared_txns(&self) -> u64 {
        self.prepared_txns.load(Ordering::Relaxed)
    }

    /// `Prepare` records appended so far.
    pub fn prepares(&self) -> u64 {
        self.prepares.load(Ordering::Relaxed)
    }

    /// Append batches appended so far.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Checkpoints completed so far.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Commit records appended so far (group members included).
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Set the group-commit flush window, in scheduler yields a leader
    /// waits before taking the buffer. 0 (the default) disables grouping
    /// for uncontended appends entirely.
    pub fn set_group_window(&self, window: u64) {
        self.group_window.store(window, Ordering::Relaxed);
    }

    /// The configured group-commit flush window.
    pub fn group_window(&self) -> u64 {
        self.group_window.load(Ordering::Relaxed)
    }

    /// Encode `records` with fresh LSNs. Must be called with the group
    /// mutex held so byte order in the log equals LSN order. Returns the
    /// framed bytes and the framed length of the final record.
    fn encode_all_locked(&self, records: &[WalRecord]) -> (Vec<u8>, usize) {
        let mut buf = Vec::new();
        let mut last_len = 0usize;
        for r in records {
            let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
            let framed = encode_record(lsn, r);
            last_len = framed.len();
            buf.extend_from_slice(&framed);
        }
        (buf, last_len)
    }

    /// One physical store append, with counter upkeep.
    fn store_write(&self, bytes: &[u8]) -> SqlResult<()> {
        self.store.append(bytes)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Encode `records` with fresh LSNs and append them. `Torn` mode
    /// chops the final record to model a mid-write crash.
    ///
    /// `Full` appends run through the group-commit sequencer: if other
    /// appends are pending or in flight, this one coalesces into a
    /// *generation* that a single leader thread writes with one store
    /// append, acknowledging every member once the shared write lands.
    /// A failed generation write fails every member, whose callers each
    /// roll back their own in-memory effects — all-or-nothing per
    /// member transaction is preserved because each member's records are
    /// individually framed and terminated (recovery never sees a group
    /// boundary; it replays the stream record by record).
    pub fn append(&self, records: &[WalRecord], mode: AppendMode) -> SqlResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        let n_commits = records
            .iter()
            .filter(|r| matches!(r, WalRecord::Commit { .. }))
            .count() as u64;
        match mode {
            AppendMode::Torn => self.append_torn(records),
            AppendMode::Full => self.append_grouped(records, n_commits),
        }
    }

    /// A torn append models the process dying mid-write, so its bytes
    /// must be the *last* thing on the log: any pending generation is
    /// flushed first (those members' records are complete and committed),
    /// then the truncated tail goes down. Recovery stops at the tear, so
    /// the group members stay durable and only the torn transaction is
    /// discarded — all-or-nothing per member.
    fn append_torn(&self, records: &[WalRecord]) -> SqlResult<()> {
        let mut state = self.group.lock();
        if self.sealed.load(Ordering::Relaxed) {
            return Err(crashed_error());
        }
        while state.flushing {
            state = self
                .group_done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if !state.buf.is_empty() {
            let bytes = std::mem::take(&mut state.buf);
            let commits = std::mem::take(&mut state.buf_commits);
            let gen = state.gen;
            state.gen += 1;
            state.done_gen = gen;
            // Holding the lock across the write is fine here: the
            // process is about to freeze, so throughput is irrelevant.
            if self.store_write(&bytes).is_err() {
                state.failed.push(gen);
            } else {
                self.commits.fetch_add(commits, Ordering::Relaxed);
            }
            self.group_done.notify_all();
        }
        let (mut buf, last_len) = self.encode_all_locked(records);
        // Keep a strict, non-empty prefix of the final record (every
        // framed record is ≥ 21 bytes, so half is always both).
        let keep = buf.len() - last_len + last_len / 2;
        buf.truncate(keep);
        let res = self.store_write(&buf);
        // The tear is the last thing this "process" ever writes: seal
        // the log (still under the group mutex) so concurrent appends
        // that raced past the injector's frozen check cannot land bytes
        // after it — recovery stops at the tear and would silently drop
        // them despite their callers having been acknowledged.
        self.sealed.store(true, Ordering::Relaxed);
        drop(state);
        res
    }

    fn append_grouped(&self, records: &[WalRecord], n_commits: u64) -> SqlResult<()> {
        let window = self.group_window.load(Ordering::Relaxed);
        let mut state = self.group.lock();
        // Checked under the group mutex: a torn append seals the log
        // before releasing it, so an append that arrives here after a
        // modeled process death is refused rather than written past the
        // tear (where recovery would never see it).
        if self.sealed.load(Ordering::Relaxed) {
            return Err(crashed_error());
        }

        // Window 0, nothing pending: append directly under the mutex.
        // This is the single-threaded path — byte-for-byte and
        // count-for-count identical to an ungrouped WAL.
        if window == 0 && !state.flushing && state.buf.is_empty() {
            let (buf, _) = self.encode_all_locked(records);
            let res = self.store_write(&buf);
            if res.is_ok() {
                self.commits.fetch_add(n_commits, Ordering::Relaxed);
            }
            return res;
        }

        // Join the accumulating generation.
        let my_gen = state.gen;
        let (bytes, _) = self.encode_all_locked(records);
        state.buf.extend_from_slice(&bytes);
        state.buf_commits += n_commits;

        if state.flushing {
            // A leader is writing the previous generation; it keeps
            // flushing while the buffer refills, so it will pick this
            // generation up. Wait to be acknowledged.
            while state.done_gen < my_gen {
                state = self
                    .group_done
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            return if state.failed.contains(&my_gen) {
                Err(SqlError::Runtime("wal group append failed".into()))
            } else {
                Ok(())
            };
        }

        // Become the leader: hold the flush window open so concurrent
        // arrivals coalesce, then write generation after generation until
        // the buffer stays empty.
        state.flushing = true;
        drop(state);
        for _ in 0..window {
            std::thread::yield_now();
        }
        let mut my_result = Ok(());
        let mut state = self.group.lock();
        loop {
            let bytes = std::mem::take(&mut state.buf);
            let commits = std::mem::take(&mut state.buf_commits);
            let gen = state.gen;
            state.gen += 1;
            drop(state);
            let res = self.store_write(&bytes);
            if res.is_ok() {
                self.commits.fetch_add(commits, Ordering::Relaxed);
            }
            state = self.group.lock();
            state.done_gen = gen;
            if res.is_err() {
                state.failed.push(gen);
            }
            if gen == my_gen {
                my_result = res;
            }
            self.group_done.notify_all();
            if state.buf.is_empty() {
                state.flushing = false;
                drop(state);
                // Wake torn appends waiting for the flusher to step down.
                self.group_done.notify_all();
                return my_result;
            }
        }
    }

    /// Write a checkpoint: snapshot the catalog and atomically replace
    /// the log with the single snapshot record. With `partial` set (the
    /// `DuringCheckpoint` crash), roughly half of the record is instead
    /// *appended* after the existing log — the old history stays intact,
    /// exactly like a crash before the atomic rename, and recovery falls
    /// back to it.
    pub fn write_checkpoint(&self, catalog: &Catalog, partial: bool) -> SqlResult<()> {
        // Serialized against appends so the checkpoint cannot interleave
        // with a group flush, and so the sealed flag is read consistently
        // (a torn tail must stay the last bytes on the log).
        let state = self.group.lock();
        if self.sealed.load(Ordering::Relaxed) {
            return Err(crashed_error());
        }
        let snap = snapshot_catalog(catalog);
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let framed = encode_record(lsn, &WalRecord::Checkpoint(snap));
        if partial {
            // A mid-write checkpoint crash is a tear like any other:
            // the half-record is the last thing this process writes.
            let keep = (framed.len() / 2).max(1);
            let res = self.store.append(&framed[..keep]);
            self.sealed.store(true, Ordering::Relaxed);
            drop(state);
            return res.map(|_| ());
        }
        drop(state);
        self.store.reset(&framed)?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        let schema = TableSchema::new(
            "t",
            vec![
                {
                    let mut c = Column::new("id", DataType::Int);
                    c.primary_key = true;
                    c
                },
                Column::new("v", DataType::Text),
            ],
            false,
        )
        .unwrap();
        vec![
            WalOp::CreateTable {
                schema: schema.clone(),
            },
            WalOp::Insert {
                table: "t".into(),
                row_id: 1,
                after: vec![Value::Int(1), Value::text("a")],
            },
            WalOp::Update {
                table: "t".into(),
                row_id: 1,
                before: vec![Value::Int(1), Value::text("a")],
                after: vec![Value::Int(1), Value::text("b")],
            },
            WalOp::Delete {
                table: "t".into(),
                row_id: 1,
                before: vec![Value::Int(1), Value::text("b")],
            },
            WalOp::CreateSequence {
                name: "s".into(),
                current: 10,
                increment: 2,
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let ops = sample_ops();
        let mut recs: Vec<WalRecord> = vec![WalRecord::Begin { txn: 7 }];
        for op in ops {
            recs.push(WalRecord::Op { txn: 7, op });
        }
        recs.push(WalRecord::Commit {
            txn: 7,
            epoch: 3,
            sequences: vec![("s".into(), 12, 2)],
        });
        recs.push(WalRecord::Abort { txn: 8 });
        let mut log = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, r));
        }
        let scanned = scan(&log);
        assert!(!scanned.truncated);
        assert_eq!(scanned.valid_len, log.len());
        assert_eq!(scanned.records.len(), recs.len());
        for (i, (lsn, rec)) in scanned.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(rec, &recs[i]);
        }
    }

    #[test]
    fn bit_flip_truncates_at_corrupt_record() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(1, &WalRecord::Begin { txn: 1 }));
        let keep = log.len();
        log.extend_from_slice(&encode_record(2, &WalRecord::Abort { txn: 1 }));
        // Flip one bit inside the second record's payload.
        let flip_at = keep + 13;
        log[flip_at] ^= 0x10;
        let scanned = scan(&log);
        assert!(scanned.truncated);
        assert_eq!(scanned.valid_len, keep);
        assert_eq!(scanned.records.len(), 1);
    }

    #[test]
    fn torn_tail_detected() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(1, &WalRecord::Begin { txn: 1 }));
        let keep = log.len();
        let second = encode_record(
            2,
            &WalRecord::Commit {
                txn: 1,
                epoch: 0,
                sequences: vec![],
            },
        );
        log.extend_from_slice(&second[..second.len() / 2]);
        let scanned = scan(&log);
        assert!(scanned.truncated);
        assert_eq!(scanned.valid_len, keep);
    }

    #[test]
    fn replay_redo_commit_undo_loser() {
        let schema = TableSchema::new(
            "t",
            vec![{
                let mut c = Column::new("id", DataType::Int);
                c.primary_key = true;
                c
            }],
            false,
        )
        .unwrap();
        let mut log = Vec::new();
        let mut lsn = 0u64;
        let mut push = |log: &mut Vec<u8>, r: &WalRecord| {
            lsn += 1;
            log.extend_from_slice(&encode_record(lsn, r));
        };
        // txn 1 commits: create table + insert row 1.
        push(&mut log, &WalRecord::Begin { txn: 1 });
        push(
            &mut log,
            &WalRecord::Op {
                txn: 1,
                op: WalOp::CreateTable {
                    schema: schema.clone(),
                },
            },
        );
        push(
            &mut log,
            &WalRecord::Op {
                txn: 1,
                op: WalOp::Insert {
                    table: "t".into(),
                    row_id: 1,
                    after: vec![Value::Int(1)],
                },
            },
        );
        push(
            &mut log,
            &WalRecord::Commit {
                txn: 1,
                epoch: 2,
                sequences: vec![],
            },
        );
        // txn 2 never terminates: its insert must be undone.
        push(&mut log, &WalRecord::Begin { txn: 2 });
        push(
            &mut log,
            &WalRecord::Op {
                txn: 2,
                op: WalOp::Insert {
                    table: "t".into(),
                    row_id: 2,
                    after: vec![Value::Int(2)],
                },
            },
        );
        let outcome = replay(&log);
        assert_eq!(outcome.committed, 1);
        assert_eq!(outcome.rolled_back, 1);
        let t = outcome.catalog.table("t").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get(1).is_some());
        assert!(t.get(2).is_none());
        assert!(outcome.next_txn >= 3);
        assert!(outcome.catalog.epoch() > 2);
    }

    #[test]
    fn checkpoint_snapshot_roundtrip() {
        let mut catalog = Catalog::new();
        let schema = TableSchema::new(
            "o",
            vec![
                {
                    let mut c = Column::new("id", DataType::Int);
                    c.primary_key = true;
                    c
                },
                Column::new("x", DataType::Float),
            ],
            false,
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        t.create_index("o_x", &["x".into()], false).unwrap();
        catalog.add_table(t).unwrap();
        catalog.register_index("o_x", "o").unwrap();
        catalog.add_sequence(Sequence::new("s", 5, 1)).unwrap();

        let snap = snapshot_catalog(&catalog);
        let log = encode_record(1, &WalRecord::Checkpoint(snap));
        let outcome = replay(&log);
        let t2 = outcome.catalog.table("o").unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.next_row_id(), 3);
        assert!(t2.has_index("o_x"));
        assert!(t2.has_index("o_pk"));
        assert_eq!(outcome.catalog.index_table("o_x"), Some("o"));
        assert_eq!(outcome.catalog.sequence("s").unwrap().peek(), 5);
    }

    #[test]
    fn empty_log_recovers_empty_catalog() {
        let outcome = replay(&[]);
        assert!(outcome.catalog.table_names().is_empty());
        assert!(!outcome.truncated);
        assert_eq!(outcome.next_lsn, 1);
    }
}
