//! Compiled statement plans.
//!
//! [`compile`] turns a parsed `SELECT`, `UPDATE`, or `DELETE` into a
//! [`CompiledPlan`]: column references resolved to row ordinals
//! ([`BoundExpr`]), constants folded, the access path (point lookup,
//! range walk, whole-index walk, or full scan) chosen once, and the
//! projection / ORDER BY shape fixed. Executing a compiled plan skips
//! name resolution entirely — the per-row work is ordinal loads and
//! value operations.
//!
//! Compilation is best-effort and *must not change semantics*. Anything
//! the compiler does not understand — joins, grouping, views, unions,
//! aggregates, unresolvable names — yields [`CompiledPlan::Unsupported`]
//! and the caller falls back to the tree-walking interpreter, which
//! reports errors canonically. Crucially, the compiler chooses the
//! access path with the *same* helper functions the interpreter uses
//! (`find_eq_candidate`, `find_range_candidate`, `naive_order_hint`), so
//! for any statement both executors emit rows in the same order; the
//! differential tests in `tests/plan_cache.rs` hold them byte-identical.
//!
//! Plans are cached per statement, keyed by the catalog's schema
//! [`epoch`](crate::catalog::Catalog::epoch). Any DDL — including
//! `CREATE INDEX` / `DROP INDEX`, which silently change the best access
//! path — bumps the epoch and forces a re-bind on next execution.

use std::collections::HashMap;

use crate::ast::{
    DeleteStmt, Expr, OrderItem, SelectItem, SelectStmt, Statement, TableSource, UpdateStmt,
};
use crate::bound::{bind, eval_bound, eval_bound_predicate, BoundCtx, BoundExpr};
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::exec::select::{
    collect_aggregates, find_eq_candidate, find_range_candidate, flatten_and, naive_order_hint,
    order_targets_column, projection_plan,
};
use crate::expr::{aggregate_key, is_aggregate_name, RowSchema};
use crate::storage::{RowId, Table};
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// Synthetic binding under which aggregate results appear in the virtual
/// row schema of an [`AggPlan`]. Contains `#`, which the parser cannot
/// produce in an identifier, so it can never capture a user column.
pub(crate) const AGG_BINDING: &str = "#agg";

/// How a compiled single-table `SELECT` reaches its rows.
#[derive(Debug)]
pub(crate) enum Access {
    /// Walk the whole table in rowid order.
    Full,
    /// Point lookup: `col = key` over a single-column index.
    IndexEq { col: usize, key: BoundExpr },
    /// Range walk over a single-column index. Bounds are
    /// `(expr, inclusive)`; `rev` walks the key order backwards.
    IndexRange {
        col: usize,
        lower: Option<(BoundExpr, bool)>,
        upper: Option<(BoundExpr, bool)>,
        rev: bool,
    },
    /// Whole-index walk taken purely for `ORDER BY` key order
    /// (NULL keys included in their sort position).
    IndexOrder { col: usize, desc: bool },
}

/// Where one ORDER BY sort key comes from, resolved at compile time
/// following the interpreter's rules: ordinal literal → output column;
/// bare name matching an output alias → output column; anything else →
/// expression over the source row.
#[derive(Debug)]
pub(crate) enum OrderKey {
    /// The already-projected output value at this position.
    Output(usize),
    /// An expression evaluated against the source row.
    Row(BoundExpr),
}

/// A compiled single-table `SELECT`. Executed batch-at-a-time by
/// [`crate::exec::batch::run_select_batched`].
#[derive(Debug)]
pub struct SelectPlan {
    pub(crate) table: String,
    pub(crate) access: Access,
    /// The full WHERE clause; always re-checked, so the access path is
    /// purely an optimization.
    pub(crate) filter: Option<BoundExpr>,
    pub(crate) columns: Vec<String>,
    pub(crate) projections: Vec<BoundExpr>,
    pub(crate) distinct: bool,
    /// `(key source, descending)` per ORDER BY item.
    pub(crate) order: Vec<(OrderKey, bool)>,
    /// Does the access path already emit rows in ORDER BY order?
    pub(crate) order_served: bool,
    pub(crate) limit: Option<BoundExpr>,
    pub(crate) offset: Option<BoundExpr>,
}

/// One aggregate call site of an [`AggPlan`], argument pre-bound against
/// the base row. `arg == None` encodes `COUNT(*)`; lowering declines
/// `*` under any other aggregate so the interpreter raises its canonical
/// error.
#[derive(Debug)]
pub(crate) struct BoundAggSpec {
    /// Upper-cased aggregate name (the parser canonicalizes case).
    pub(crate) name: String,
    pub(crate) arg: Option<BoundExpr>,
    pub(crate) distinct: bool,
}

/// A compiled single-table grouped `SELECT`, executed through the
/// one-pass hash aggregator in [`crate::exec::batch::run_agg_plan`].
///
/// Aggregate call sites in the projection / HAVING / ORDER BY are
/// rewritten at compile time into references to *synthetic columns*
/// appended after the base row: the executor materializes one virtual
/// row per group — representative base row values followed by one slot
/// per aggregate — and every downstream expression is bound against
/// that widened schema. This reproduces the interpreter's "pre-computed
/// aggregates map" semantics with plain ordinal loads.
#[derive(Debug)]
pub struct AggPlan {
    pub(crate) table: String,
    pub(crate) access: Access,
    pub(crate) filter: Option<BoundExpr>,
    /// GROUP BY key expressions over the base row.
    pub(crate) group_by: Vec<BoundExpr>,
    /// Aggregate call sites in the interpreter's discovery order
    /// (projections, then HAVING, then ORDER BY), deduplicated by call
    /// site; slot `i` of the virtual row tail holds spec `i`'s value.
    pub(crate) specs: Vec<BoundAggSpec>,
    /// Width of the base row; aggregate slots start here.
    pub(crate) base_width: usize,
    /// HAVING over the virtual row (aggregates already rewritten).
    pub(crate) having: Option<BoundExpr>,
    pub(crate) columns: Vec<String>,
    pub(crate) projections: Vec<BoundExpr>,
    pub(crate) distinct: bool,
    pub(crate) order: Vec<(OrderKey, bool)>,
    pub(crate) limit: Option<BoundExpr>,
    pub(crate) offset: Option<BoundExpr>,
}

/// A compiled `UPDATE`: filter plus `(column ordinal, value)` pairs.
#[derive(Debug)]
pub struct UpdatePlan {
    table: String,
    filter: Option<BoundExpr>,
    assignments: Vec<(usize, BoundExpr)>,
}

impl UpdatePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does any filter or assignment expression run a subquery? If so
    /// the statement must not take the fast single-table-guard path.
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
            || self.assignments.iter().any(|(_, e)| e.contains_subquery())
    }
}

/// A compiled `DELETE`.
#[derive(Debug)]
pub struct DeletePlan {
    table: String,
    filter: Option<BoundExpr>,
}

impl DeletePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does the filter run a subquery? See [`UpdatePlan::has_subquery`].
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
    }
}

/// The result of compiling one statement against one catalog epoch.
#[derive(Debug)]
pub enum CompiledPlan {
    /// Boxed: a `SelectPlan` is an order of magnitude larger than the
    /// other variants, and plans are built once then executed many times.
    Select(Box<SelectPlan>),
    /// Grouped/aggregating `SELECT`, run through the hash aggregator.
    Aggregate(Box<AggPlan>),
    Update(UpdatePlan),
    Delete(DeletePlan),
    /// Compilation declined; execute through the interpreter.
    Unsupported,
}

/// Compile a statement against the current catalog state. Never fails:
/// anything outside the compilable subset (or that would error at bind
/// time where the interpreter errors at run time) is `Unsupported`.
pub fn compile(catalog: &Catalog, stmt: &Statement) -> CompiledPlan {
    match stmt {
        Statement::Select(s) => compile_select(catalog, s).unwrap_or(CompiledPlan::Unsupported),
        Statement::Update(u) => compile_update(catalog, u).unwrap_or(CompiledPlan::Unsupported),
        Statement::Delete(d) => compile_delete(catalog, d).unwrap_or(CompiledPlan::Unsupported),
        _ => CompiledPlan::Unsupported,
    }
}

/// Row schema of a base-table scan: every column under the scan binding.
fn table_row_schema(table: &Table, binding: &str) -> RowSchema {
    RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.to_string()), c.name.clone()))
            .collect(),
    )
}

fn bind_opt(expr: Option<&crate::ast::Expr>, schema: &RowSchema) -> Option<Option<BoundExpr>> {
    match expr {
        Some(e) => match bind(e, schema) {
            Ok(b) => Some(Some(b)),
            Err(_) => None,
        },
        None => Some(None),
    }
}

/// Choose the access path exactly as the interpreter's `try_index_scan`
/// does — same candidate search over the same flattened conjunct list —
/// so both executors emit rows in the same physical order. Returns the
/// access plus `(col, desc)` when the path serves that key order.
/// `None` when a bound expression fails to bind (decline compilation).
fn choose_access(
    where_clause: Option<&Expr>,
    order_by: &[OrderItem],
    binding: &str,
    table: &Table,
    schema: &RowSchema,
) -> Option<(Access, Option<(usize, bool)>)> {
    let mut conjuncts = Vec::new();
    if let Some(pred) = where_clause {
        flatten_and(pred, &mut conjuncts);
    }
    let order_hint = naive_order_hint(order_by, binding, table);
    if let Some((col, value_expr)) = find_eq_candidate(&conjuncts, binding, table) {
        let key = bind(value_expr, schema).ok()?;
        Some((Access::IndexEq { col, key }, None))
    } else if let Some(spec) = find_range_candidate(&conjuncts, binding, table) {
        let rev = order_hint.is_some_and(|(c, desc)| c == spec.col && desc);
        let bind_bound = |b: Option<(&Expr, bool)>| match b {
            Some((e, inc)) => bind(e, schema).ok().map(|be| Some((be, inc))),
            None => Some(None),
        };
        Some((
            Access::IndexRange {
                col: spec.col,
                lower: bind_bound(spec.lower)?,
                upper: bind_bound(spec.upper)?,
                rev,
            },
            Some((spec.col, rev)),
        ))
    } else if let Some((col, desc)) =
        order_hint.filter(|(col, _)| table.find_index(&[*col]).is_some())
    {
        Some((Access::IndexOrder { col, desc }, Some((col, desc))))
    } else {
        Some((Access::Full, None))
    }
}

/// Resolve one ORDER BY item the way the interpreter's `order_key`
/// resolves it: in-range ordinal literal → output column; bare name
/// matching an output alias → output column; anything else → bound
/// expression over the (virtual) source row. An out-of-range ordinal
/// declines compilation — the interpreter only errors when a row
/// actually reaches the sort.
fn compile_order_key(
    item_expr: &Expr,
    columns: &[String],
    n_outputs: usize,
    bind_row: impl Fn(&Expr) -> Option<BoundExpr>,
) -> Option<OrderKey> {
    match item_expr {
        Expr::Literal(Value::Int(n)) => {
            if *n >= 1 && (*n as usize) <= n_outputs {
                Some(OrderKey::Output(*n as usize - 1))
            } else {
                None
            }
        }
        Expr::Column { table: None, name } => {
            match columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                Some(i) => Some(OrderKey::Output(i)),
                None => Some(OrderKey::Row(bind_row(item_expr)?)),
            }
        }
        e => Some(OrderKey::Row(bind_row(e)?)),
    }
}

fn compile_select(catalog: &Catalog, stmt: &SelectStmt) -> Option<CompiledPlan> {
    // The compilable subset: one named base table, no set operations.
    if !stmt.unions.is_empty() {
        return None;
    }
    // Grouping machinery — mirror the interpreter's `needs_grouping`
    // test exactly, then lower through the hash-aggregate path.
    let needs_grouping = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());
    if needs_grouping {
        return compile_select_agg(catalog, stmt);
    }
    // HAVING without grouping: rare and interpreter-defined; decline.
    if stmt.having.is_some() {
        return None;
    }
    let from = stmt.from.as_ref()?;
    if !from.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &from.base.source else {
        return None;
    };
    if catalog.has_view(name) {
        return None;
    }
    let table = catalog.table(name).ok()?;
    let binding = from.base.binding_name().unwrap_or(name).to_string();
    let schema = table_row_schema(&table, &binding);

    // Projection expansion + binding. Aggregates fail `bind`, sending
    // anything the grouping test above missed to the interpreter.
    let (columns, proj_exprs) = projection_plan(stmt, &schema).ok()?;
    let projections: Vec<BoundExpr> = proj_exprs
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    let (access, index_order) = choose_access(
        stmt.where_clause.as_ref(),
        &stmt.order_by,
        &binding,
        &table,
        &schema,
    )?;

    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;

    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        let key = compile_order_key(&item.expr, &columns, projections.len(), |e| {
            bind(e, &schema).ok()
        })?;
        order.push((key, item.desc));
    }

    let order_served = stmt.order_by.len() == 1
        && index_order.is_some_and(|(col, rev)| {
            stmt.order_by[0].desc == rev
                && order_targets_column(&stmt.order_by[0].expr, &columns, &proj_exprs, &schema, col)
        });

    // LIMIT/OFFSET are row-independent; bind against the empty schema.
    let empty = RowSchema::empty();
    let limit = bind_opt(stmt.limit.as_ref(), &empty)?;
    let offset = bind_opt(stmt.offset.as_ref(), &empty)?;

    Some(CompiledPlan::Select(Box::new(SelectPlan {
        table: name.clone(),
        access,
        filter,
        columns,
        projections,
        distinct: stmt.distinct,
        order,
        order_served,
        limit,
        offset,
    })))
}

/// Replace every aggregate call site in `e` with a reference to its
/// synthetic column (`"#agg"."#<i>"`, where `i` is the spec's slot).
/// Call sites were deduplicated by [`aggregate_key`], so textually equal
/// aggregates share a slot — exactly the interpreter's pre-computed-map
/// behavior. Subqueries are left untouched (their aggregates are their
/// own; the AST walk that collected specs does not descend either).
fn rewrite_aggs(e: &Expr, keys: &[String]) -> Expr {
    if let Expr::Function { name, .. } = e {
        if is_aggregate_name(name) {
            let key = aggregate_key(e);
            let i = keys
                .iter()
                .position(|k| *k == key)
                .expect("every aggregate call site was collected");
            return Expr::Column {
                table: Some(AGG_BINDING.to_string()),
                name: format!("#{i}"),
            };
        }
    }
    match e {
        Expr::Literal(_)
        | Expr::Column { .. }
        | Expr::Param(_)
        | Expr::NamedParam(_)
        | Expr::Exists { .. }
        | Expr::ScalarSubquery(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggs(expr, keys)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_aggs(left, keys)),
            op: *op,
            right: Box::new(rewrite_aggs(right, keys)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_aggs(expr, keys)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggs(expr, keys)),
            list: list.iter().map(|x| rewrite_aggs(x, keys)).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(rewrite_aggs(expr, keys)),
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggs(expr, keys)),
            low: Box::new(rewrite_aggs(low, keys)),
            high: Box::new(rewrite_aggs(high, keys)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_aggs(expr, keys)),
            pattern: Box::new(rewrite_aggs(pattern, keys)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rewrite_aggs(o, keys))),
            branches: branches
                .iter()
                .map(|(w, t)| (rewrite_aggs(w, keys), rewrite_aggs(t, keys)))
                .collect(),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(rewrite_aggs(e, keys))),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_aggs(a, keys)).collect(),
            distinct: *distinct,
            star: *star,
        },
    }
}

/// Lower a grouped/aggregating single-table `SELECT` into an [`AggPlan`].
/// Declines (→ interpreter) on joins, views, nested aggregates, `*` under
/// non-COUNT aggregates, unresolvable names, and anything whose canonical
/// error the interpreter must report.
fn compile_select_agg(catalog: &Catalog, stmt: &SelectStmt) -> Option<CompiledPlan> {
    let from = stmt.from.as_ref()?;
    if !from.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &from.base.source else {
        return None;
    };
    if catalog.has_view(name) {
        return None;
    }
    let table = catalog.table(name).ok()?;
    let binding = from.base.binding_name().unwrap_or(name).to_string();
    let schema = table_row_schema(&table, &binding);

    // Aggregate call sites, discovered in the interpreter's walk order
    // (projections, HAVING, ORDER BY; deduplicated by call-site key).
    let ast_specs = collect_aggregates(stmt);
    let mut specs = Vec::with_capacity(ast_specs.len());
    for s in &ast_specs {
        let arg = match &s.arg {
            Some(e) => {
                // Nested aggregates error at runtime in the interpreter;
                // let it report that canonically.
                if e.contains_aggregate() {
                    return None;
                }
                Some(bind(e, &schema).ok()?)
            }
            None => {
                // `*` under non-COUNT raises per-group in the
                // interpreter; decline rather than re-implement it.
                if s.name != "COUNT" {
                    return None;
                }
                None
            }
        };
        specs.push(BoundAggSpec {
            name: s.name.clone(),
            arg,
            distinct: s.distinct,
        });
    }
    let spec_keys: Vec<String> = ast_specs.into_iter().map(|s| s.key).collect();

    // GROUP BY keys evaluate against the base row. Aggregates inside
    // GROUP BY fail `bind` here → interpreter's canonical error.
    let group_by: Vec<BoundExpr> = stmt
        .group_by
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    // WHERE also sees only the base row (aggregates fail bind →
    // interpreter raises "aggregates are not allowed in WHERE").
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;

    // Everything downstream of grouping sees the virtual row: the base
    // columns followed by one synthetic column per aggregate slot.
    let mut virt_cols = schema.columns().to_vec();
    for i in 0..specs.len() {
        virt_cols.push((Some(AGG_BINDING.to_string()), format!("#{i}")));
    }
    let virt_schema = RowSchema::new(virt_cols);

    let (columns, proj_exprs) = projection_plan(stmt, &schema).ok()?;
    let projections: Vec<BoundExpr> = proj_exprs
        .iter()
        .map(|e| bind(&rewrite_aggs(e, &spec_keys), &virt_schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    let having = match &stmt.having {
        Some(h) => Some(bind(&rewrite_aggs(h, &spec_keys), &virt_schema).ok()?),
        None => None,
    };

    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        let key = compile_order_key(&item.expr, &columns, projections.len(), |e| {
            bind(&rewrite_aggs(e, &spec_keys), &virt_schema).ok()
        })?;
        order.push((key, item.desc));
    }

    // Access path: shared with the plain-select compiler so group
    // first-seen order matches the interpreter's row arrival order.
    // (`order_served` never applies to grouped queries.)
    let (access, _) = choose_access(
        stmt.where_clause.as_ref(),
        &stmt.order_by,
        &binding,
        &table,
        &schema,
    )?;

    let empty = RowSchema::empty();
    let limit = bind_opt(stmt.limit.as_ref(), &empty)?;
    let offset = bind_opt(stmt.offset.as_ref(), &empty)?;

    Some(CompiledPlan::Aggregate(Box::new(AggPlan {
        table: name.clone(),
        access,
        filter,
        group_by,
        specs,
        base_width: schema.len(),
        having,
        columns,
        projections,
        distinct: stmt.distinct,
        order,
        limit,
        offset,
    })))
}

fn compile_update(catalog: &Catalog, stmt: &UpdateStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    // The interpreter binds the scan under the table's declared name.
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let mut assignments = Vec::with_capacity(stmt.assignments.len());
    for (col, e) in &stmt.assignments {
        let pos = table.schema.resolve(col).ok()?;
        assignments.push((pos, bind(e, &schema).ok()?));
    }
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Update(UpdatePlan {
        table: stmt.table.clone(),
        filter,
        assignments,
    }))
}

fn compile_delete(catalog: &Catalog, stmt: &DeleteStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Delete(DeletePlan {
        table: stmt.table.clone(),
        filter,
    }))
}

// ---------------------------------------------------------------- execution

/// Bound-evaluation tally for one statement, flushed to the catalog's
/// `bound_evals` counter in one atomic add at the end.
pub(crate) struct Evals(pub(crate) u64);

impl Evals {
    pub(crate) fn eval(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<Value> {
        self.0 += 1;
        eval_bound(e, ctx)
    }

    pub(crate) fn pred(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<bool> {
        self.0 += 1;
        eval_bound_predicate(e, ctx)
    }
}

pub(crate) fn bound_usize(
    e: &BoundExpr,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    what: &str,
) -> SqlResult<usize> {
    match evals.eval(e, ctx)? {
        Value::Int(n) if n >= 0 => Ok(n as usize),
        other => Err(SqlError::Semantic(format!(
            "{what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

// Compiled `SELECT` execution lives in [`crate::exec::batch`]: both the
// plain plan (`run_select_batched`) and the aggregate plan
// (`run_agg_plan`) run batch-at-a-time over borrowed storage rows.

/// Collect phase of a compiled `UPDATE`: evaluate filter + assignments
/// against an immutable snapshot (avoiding the Halloween problem).
fn collect_update(
    catalog: &Catalog,
    table: &Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<(RowId, Vec<Value>)>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut changes = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let rc = BoundCtx {
            row: Some(row),
            ..ctx
        };
        let hit = match &plan.filter {
            Some(pred) => evals.pred(pred, &rc)?,
            None => true,
        };
        if !hit {
            continue;
        }
        let mut new_row = (**row).clone();
        for (pos, e) in &plan.assignments {
            new_row[*pos] = evals.eval(e, &rc)?;
        }
        changes.push((id, new_row));
    }
    catalog.note_full_scan_rows(walked);
    Ok(changes)
}

/// Apply phase of a compiled `UPDATE`: write the precomputed rows under
/// the caller's exclusive table guard, recording undo for atomicity.
fn apply_update(
    catalog: &Catalog,
    table: &mut Table,
    changes: Vec<(RowId, Vec<Value>)>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for (id, new_row) in changes {
        let old = table.update(id, new_row)?;
        undo.record(UndoOp::Update {
            table: table_name.clone(),
            row_id: id,
            old,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `UPDATE` in the interpreter's two phases: collect
/// under a shared table guard (subqueries in the filter may re-read this
/// very table), then apply under the exclusive guard. The guard gap is
/// harmless: this path runs with the catalog-shape lock held exclusively,
/// so no other statement can slip in between.
pub fn run_update_plan(
    catalog: &Catalog,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = {
        let table = catalog.table(&plan.table)?;
        collect_update(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_update(catalog, &mut table, changes, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_update_plan`]: both phases run against a
/// table guard the *caller* already holds, so the whole statement is one
/// atomic unit even under the shared catalog-shape lock. Callers must
/// have checked [`UpdatePlan::has_subquery`] — a subquery would re-enter
/// the catalog's table map and self-deadlock on the held guard.
pub fn run_update_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = collect_update(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_update(catalog, table, changes, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Collect phase of a compiled `DELETE`: gather victim row ids against
/// an immutable snapshot.
fn collect_delete(
    catalog: &Catalog,
    table: &Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<RowId>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut out = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let hit = match &plan.filter {
            Some(pred) => {
                let rc = BoundCtx {
                    row: Some(row),
                    ..ctx
                };
                evals.pred(pred, &rc)?
            }
            None => true,
        };
        if hit {
            out.push(id);
        }
    }
    catalog.note_full_scan_rows(walked);
    Ok(out)
}

/// Apply phase of a compiled `DELETE` under the caller's table guard.
fn apply_delete(
    catalog: &Catalog,
    table: &mut Table,
    victims: Vec<RowId>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for id in victims {
        let row = table.delete(id)?;
        undo.record(UndoOp::Delete {
            table: table_name.clone(),
            row_id: id,
            row,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `DELETE` (two-phase, like the interpreter; see
/// [`run_update_plan`] for the guard discipline).
pub fn run_delete_plan(
    catalog: &Catalog,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = {
        let table = catalog.table(&plan.table)?;
        collect_delete(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_delete(catalog, &mut table, victims, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_delete_plan`] against a held table guard;
/// see [`run_update_plan_on`] for the subquery-freedom requirement.
pub fn run_delete_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = collect_delete(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_delete(catalog, table, victims, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}
