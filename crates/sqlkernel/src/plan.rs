//! Compiled statement plans.
//!
//! [`compile`] turns a parsed `SELECT`, `UPDATE`, or `DELETE` into a
//! [`CompiledPlan`]: column references resolved to row ordinals
//! ([`BoundExpr`]), constants folded, the access path (point lookup,
//! range walk, whole-index walk, or full scan) chosen once, and the
//! projection / ORDER BY shape fixed. Executing a compiled plan skips
//! name resolution entirely — the per-row work is ordinal loads and
//! value operations.
//!
//! Compilation is best-effort and *must not change semantics*. Anything
//! the compiler does not understand — joins, grouping, views, unions,
//! aggregates, unresolvable names — yields [`CompiledPlan::Unsupported`]
//! and the caller falls back to the tree-walking interpreter, which
//! reports errors canonically. Crucially, the compiler chooses the
//! access path with the *same* helper functions the interpreter uses
//! (`find_eq_candidate`, `find_range_candidate`, `naive_order_hint`), so
//! for any statement both executors emit rows in the same order; the
//! differential tests in `tests/plan_cache.rs` hold them byte-identical.
//!
//! Plans are cached per statement, keyed by the catalog's schema
//! [`epoch`](crate::catalog::Catalog::epoch). Any DDL — including
//! `CREATE INDEX` / `DROP INDEX`, which silently change the best access
//! path — bumps the epoch and forces a re-bind on next execution.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{DeleteStmt, SelectStmt, Statement, TableSource, UpdateStmt};
use crate::bound::{bind, eval_bound, eval_bound_predicate, BoundCtx, BoundExpr};
use crate::catalog::Catalog;
use crate::db::QueryResult;
use crate::error::{SqlError, SqlResult};
use crate::exec::select::{
    cmp_keys, find_eq_candidate, find_range_candidate, flatten_and, naive_order_hint,
    order_targets_column, projection_plan, TopK,
};
use crate::expr::RowSchema;
use crate::storage::{Row, RowId, SortKey, Table};
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// How a compiled single-table `SELECT` reaches its rows.
#[derive(Debug)]
enum Access {
    /// Walk the whole table in rowid order.
    Full,
    /// Point lookup: `col = key` over a single-column index.
    IndexEq { col: usize, key: BoundExpr },
    /// Range walk over a single-column index. Bounds are
    /// `(expr, inclusive)`; `rev` walks the key order backwards.
    IndexRange {
        col: usize,
        lower: Option<(BoundExpr, bool)>,
        upper: Option<(BoundExpr, bool)>,
        rev: bool,
    },
    /// Whole-index walk taken purely for `ORDER BY` key order
    /// (NULL keys included in their sort position).
    IndexOrder { col: usize, desc: bool },
}

/// Where one ORDER BY sort key comes from, resolved at compile time
/// following the interpreter's rules: ordinal literal → output column;
/// bare name matching an output alias → output column; anything else →
/// expression over the source row.
#[derive(Debug)]
enum OrderKey {
    /// The already-projected output value at this position.
    Output(usize),
    /// An expression evaluated against the source row.
    Row(BoundExpr),
}

/// A compiled single-table `SELECT`.
#[derive(Debug)]
pub struct SelectPlan {
    table: String,
    access: Access,
    /// The full WHERE clause; always re-checked, so the access path is
    /// purely an optimization.
    filter: Option<BoundExpr>,
    columns: Vec<String>,
    projections: Vec<BoundExpr>,
    distinct: bool,
    /// `(key source, descending)` per ORDER BY item.
    order: Vec<(OrderKey, bool)>,
    /// Does the access path already emit rows in ORDER BY order?
    order_served: bool,
    limit: Option<BoundExpr>,
    offset: Option<BoundExpr>,
}

/// A compiled `UPDATE`: filter plus `(column ordinal, value)` pairs.
#[derive(Debug)]
pub struct UpdatePlan {
    table: String,
    filter: Option<BoundExpr>,
    assignments: Vec<(usize, BoundExpr)>,
}

impl UpdatePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does any filter or assignment expression run a subquery? If so
    /// the statement must not take the fast single-table-guard path.
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
            || self.assignments.iter().any(|(_, e)| e.contains_subquery())
    }
}

/// A compiled `DELETE`.
#[derive(Debug)]
pub struct DeletePlan {
    table: String,
    filter: Option<BoundExpr>,
}

impl DeletePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does the filter run a subquery? See [`UpdatePlan::has_subquery`].
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
    }
}

/// The result of compiling one statement against one catalog epoch.
#[derive(Debug)]
pub enum CompiledPlan {
    /// Boxed: a `SelectPlan` is an order of magnitude larger than the
    /// other variants, and plans are built once then executed many times.
    Select(Box<SelectPlan>),
    Update(UpdatePlan),
    Delete(DeletePlan),
    /// Compilation declined; execute through the interpreter.
    Unsupported,
}

/// Compile a statement against the current catalog state. Never fails:
/// anything outside the compilable subset (or that would error at bind
/// time where the interpreter errors at run time) is `Unsupported`.
pub fn compile(catalog: &Catalog, stmt: &Statement) -> CompiledPlan {
    match stmt {
        Statement::Select(s) => compile_select(catalog, s).unwrap_or(CompiledPlan::Unsupported),
        Statement::Update(u) => compile_update(catalog, u).unwrap_or(CompiledPlan::Unsupported),
        Statement::Delete(d) => compile_delete(catalog, d).unwrap_or(CompiledPlan::Unsupported),
        _ => CompiledPlan::Unsupported,
    }
}

/// Row schema of a base-table scan: every column under the scan binding.
fn table_row_schema(table: &Table, binding: &str) -> RowSchema {
    RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.to_string()), c.name.clone()))
            .collect(),
    )
}

fn bind_opt(expr: Option<&crate::ast::Expr>, schema: &RowSchema) -> Option<Option<BoundExpr>> {
    match expr {
        Some(e) => match bind(e, schema) {
            Ok(b) => Some(Some(b)),
            Err(_) => None,
        },
        None => Some(None),
    }
}

fn compile_select(catalog: &Catalog, stmt: &SelectStmt) -> Option<CompiledPlan> {
    // The compilable subset: one named base table, no set operations, no
    // grouping machinery. Everything else runs interpreted.
    if !stmt.unions.is_empty()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate())
    {
        return None;
    }
    let from = stmt.from.as_ref()?;
    if !from.joins.is_empty() {
        return None;
    }
    let TableSource::Named(name) = &from.base.source else {
        return None;
    };
    if catalog.has_view(name) {
        return None;
    }
    let table = catalog.table(name).ok()?;
    let binding = from.base.binding_name().unwrap_or(name).to_string();
    let schema = table_row_schema(&table, &binding);

    // Projection expansion + binding. Aggregates fail `bind`, sending
    // grouped queries to the interpreter.
    let (columns, proj_exprs) = projection_plan(stmt, &schema).ok()?;
    let projections: Vec<BoundExpr> = proj_exprs
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    // Access path: the same candidate search as the interpreter's
    // `try_index_scan`, over the same flattened conjunct list.
    let mut conjuncts = Vec::new();
    if let Some(pred) = &stmt.where_clause {
        flatten_and(pred, &mut conjuncts);
    }
    let order_hint = naive_order_hint(&stmt.order_by, &binding, &table);
    let (access, index_order) =
        if let Some((col, value_expr)) = find_eq_candidate(&conjuncts, &binding, &table) {
            let key = bind(value_expr, &schema).ok()?;
            (Access::IndexEq { col, key }, None)
        } else if let Some(spec) = find_range_candidate(&conjuncts, &binding, &table) {
            let rev = order_hint.is_some_and(|(c, desc)| c == spec.col && desc);
            let bind_bound = |b: Option<(&crate::ast::Expr, bool)>| match b {
                Some((e, inc)) => bind(e, &schema).ok().map(|be| Some((be, inc))),
                None => Some(None),
            };
            (
                Access::IndexRange {
                    col: spec.col,
                    lower: bind_bound(spec.lower)?,
                    upper: bind_bound(spec.upper)?,
                    rev,
                },
                Some((spec.col, rev)),
            )
        } else if let Some((col, desc)) =
            order_hint.filter(|(col, _)| table.find_index(&[*col]).is_some())
        {
            (Access::IndexOrder { col, desc }, Some((col, desc)))
        } else {
            (Access::Full, None)
        };

    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;

    // ORDER BY keys, resolved the way `order_key` resolves them. An
    // out-of-range ordinal is left to the interpreter: it only errors
    // when a row actually reaches the sort.
    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        let key = match &item.expr {
            crate::ast::Expr::Literal(Value::Int(n)) => {
                if *n >= 1 && (*n as usize) <= projections.len() {
                    OrderKey::Output(*n as usize - 1)
                } else {
                    return None;
                }
            }
            crate::ast::Expr::Column { table: None, name } => {
                match columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                    Some(i) => OrderKey::Output(i),
                    None => OrderKey::Row(bind(&item.expr, &schema).ok()?),
                }
            }
            e => OrderKey::Row(bind(e, &schema).ok()?),
        };
        order.push((key, item.desc));
    }

    let order_served = stmt.order_by.len() == 1
        && index_order.is_some_and(|(col, rev)| {
            stmt.order_by[0].desc == rev
                && order_targets_column(&stmt.order_by[0].expr, &columns, &proj_exprs, &schema, col)
        });

    // LIMIT/OFFSET are row-independent; bind against the empty schema.
    let empty = RowSchema::empty();
    let limit = bind_opt(stmt.limit.as_ref(), &empty)?;
    let offset = bind_opt(stmt.offset.as_ref(), &empty)?;

    Some(CompiledPlan::Select(Box::new(SelectPlan {
        table: name.clone(),
        access,
        filter,
        columns,
        projections,
        distinct: stmt.distinct,
        order,
        order_served,
        limit,
        offset,
    })))
}

fn compile_update(catalog: &Catalog, stmt: &UpdateStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    // The interpreter binds the scan under the table's declared name.
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let mut assignments = Vec::with_capacity(stmt.assignments.len());
    for (col, e) in &stmt.assignments {
        let pos = table.schema.resolve(col).ok()?;
        assignments.push((pos, bind(e, &schema).ok()?));
    }
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Update(UpdatePlan {
        table: stmt.table.clone(),
        filter,
        assignments,
    }))
}

fn compile_delete(catalog: &Catalog, stmt: &DeleteStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Delete(DeletePlan {
        table: stmt.table.clone(),
        filter,
    }))
}

// ---------------------------------------------------------------- execution

/// Bound-evaluation tally for one statement, flushed to the catalog's
/// `bound_evals` counter in one atomic add at the end.
struct Evals(u64);

impl Evals {
    fn eval(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<Value> {
        self.0 += 1;
        eval_bound(e, ctx)
    }

    fn pred(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<bool> {
        self.0 += 1;
        eval_bound_predicate(e, ctx)
    }
}

fn bound_usize(
    e: &BoundExpr,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    what: &str,
) -> SqlResult<usize> {
    match evals.eval(e, ctx)? {
        Value::Int(n) if n >= 0 => Ok(n as usize),
        other => Err(SqlError::Semantic(format!(
            "{what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

/// Execute a compiled `SELECT`. Mirrors `run_select`'s single-table
/// pipeline stage for stage; counters (`index_scans`, `range_scans`,
/// `full_scans`, `topk_sorts`) tick exactly as on the interpreted path.
pub fn run_select_plan(
    catalog: &Catalog,
    plan: &SelectPlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<QueryResult> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut evals = Evals(0);

    // OFFSET/LIMIT once per statement, before any row work.
    let offset = match &plan.offset {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "OFFSET")?),
        None => None,
    };
    let limit = match &plan.limit {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "LIMIT")?),
        None => None,
    };

    let table = catalog.table(&plan.table)?;

    // Access path.
    let rows: Vec<Arc<Row>> = match &plan.access {
        Access::Full => {
            catalog.note_full_scan();
            table.iter().map(|(_, r)| Arc::clone(r)).collect()
        }
        Access::IndexEq { col, key } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let key = evals.eval(key, &ctx)?;
            catalog.note_index_scan();
            if key.is_null() {
                Vec::new()
            } else {
                index
                    .lookup(&SortKey(vec![key]))
                    .filter_map(|id| table.get(id).cloned())
                    .collect()
            }
        }
        Access::IndexRange {
            col,
            lower,
            upper,
            rev,
        } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let lower = match lower {
                Some((e, inc)) => Some((evals.eval(e, &ctx)?, *inc)),
                None => None,
            };
            let upper = match upper {
                Some((e, inc)) => Some((evals.eval(e, &ctx)?, *inc)),
                None => None,
            };
            let ids = index.lookup_range(
                lower.as_ref().map(|(v, i)| (v, *i)),
                upper.as_ref().map(|(v, i)| (v, *i)),
                *rev,
                false,
            );
            catalog.note_range_scan();
            ids.iter()
                .filter_map(|id| table.get(*id).cloned())
                .collect()
        }
        Access::IndexOrder { col, desc } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let mut ids = index.lookup_range(None, None, *desc, true);
            // Limit pushdown into the walk itself: with no filter, the
            // id→row mapping is 1:1, so rows past OFFSET+LIMIT can never
            // reach the output when the walk serves the ORDER BY.
            if plan.filter.is_none() && plan.order_served && !plan.distinct {
                if let Some(n) = limit {
                    ids.truncate(n.saturating_add(offset.unwrap_or(0)));
                }
            }
            catalog.note_range_scan();
            ids.iter()
                .filter_map(|id| table.get(*id).cloned())
                .collect()
        }
    };

    // Residual WHERE — always the full predicate.
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows {
        let keep = match &plan.filter {
            Some(pred) => {
                let rc = BoundCtx {
                    row: Some(&row),
                    ..ctx
                };
                evals.pred(pred, &rc)?
            }
            None => true,
        };
        if keep {
            kept.push(row);
        }
    }

    // Limit pushdown (mirrors the interpreter): with the order served by
    // the walk and no DISTINCT, only the first OFFSET+LIMIT survivors can
    // reach the output.
    if plan.order_served && !plan.distinct {
        if let Some(n) = limit {
            kept.truncate(n.saturating_add(offset.unwrap_or(0)));
        }
    }

    // Projection + ORDER BY keys, optionally through the top-K heap.
    let descs: Vec<bool> = plan.order.iter().map(|(_, d)| *d).collect();
    let mut topk = match limit {
        Some(n) if !plan.order.is_empty() && !plan.order_served && !plan.distinct => {
            catalog.note_topk_sort();
            Some(TopK::new(
                n.saturating_add(offset.unwrap_or(0)),
                descs.clone(),
            ))
        }
        _ => None,
    };

    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(kept.len());
    for (seq, row) in kept.iter().enumerate() {
        let rc = BoundCtx {
            row: Some(row),
            ..ctx
        };
        let mut out = Vec::with_capacity(plan.projections.len());
        for e in &plan.projections {
            out.push(evals.eval(e, &rc)?);
        }
        let mut keys = Vec::with_capacity(plan.order.len());
        for (key, _) in &plan.order {
            keys.push(match key {
                OrderKey::Output(i) => out[*i].clone(),
                OrderKey::Row(e) => evals.eval(e, &rc)?,
            });
        }
        match &mut topk {
            Some(t) => t.push(keys, seq, out),
            None => out_rows.push((out, keys)),
        }
    }

    if plan.distinct {
        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        out_rows.retain(|(r, _)| seen.insert(r.clone()));
    }

    let mut rows: Vec<Vec<Value>> = match topk {
        Some(t) => t.into_sorted_rows(),
        None => {
            if !plan.order.is_empty() && !plan.order_served {
                out_rows.sort_by(|(_, ka), (_, kb)| cmp_keys(ka, kb, &descs));
            }
            out_rows.into_iter().map(|(r, _)| r).collect()
        }
    };

    if let Some(n) = offset {
        rows = rows.into_iter().skip(n).collect();
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }

    catalog.note_bound_evals(evals.0);
    Ok(QueryResult {
        columns: plan.columns.clone(),
        rows,
    })
}

/// Collect phase of a compiled `UPDATE`: evaluate filter + assignments
/// against an immutable snapshot (avoiding the Halloween problem).
fn collect_update(
    catalog: &Catalog,
    table: &Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<(RowId, Vec<Value>)>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut changes = Vec::new();
    for (id, row) in table.iter() {
        let rc = BoundCtx {
            row: Some(row),
            ..ctx
        };
        let hit = match &plan.filter {
            Some(pred) => evals.pred(pred, &rc)?,
            None => true,
        };
        if !hit {
            continue;
        }
        let mut new_row = (**row).clone();
        for (pos, e) in &plan.assignments {
            new_row[*pos] = evals.eval(e, &rc)?;
        }
        changes.push((id, new_row));
    }
    Ok(changes)
}

/// Apply phase of a compiled `UPDATE`: write the precomputed rows under
/// the caller's exclusive table guard, recording undo for atomicity.
fn apply_update(
    catalog: &Catalog,
    table: &mut Table,
    changes: Vec<(RowId, Vec<Value>)>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for (id, new_row) in changes {
        let old = table.update(id, new_row)?;
        undo.record(UndoOp::Update {
            table: table_name.clone(),
            row_id: id,
            old,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `UPDATE` in the interpreter's two phases: collect
/// under a shared table guard (subqueries in the filter may re-read this
/// very table), then apply under the exclusive guard. The guard gap is
/// harmless: this path runs with the catalog-shape lock held exclusively,
/// so no other statement can slip in between.
pub fn run_update_plan(
    catalog: &Catalog,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = {
        let table = catalog.table(&plan.table)?;
        collect_update(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_update(catalog, &mut table, changes, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_update_plan`]: both phases run against a
/// table guard the *caller* already holds, so the whole statement is one
/// atomic unit even under the shared catalog-shape lock. Callers must
/// have checked [`UpdatePlan::has_subquery`] — a subquery would re-enter
/// the catalog's table map and self-deadlock on the held guard.
pub fn run_update_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = collect_update(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_update(catalog, table, changes, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Collect phase of a compiled `DELETE`: gather victim row ids against
/// an immutable snapshot.
fn collect_delete(
    catalog: &Catalog,
    table: &Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<RowId>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut out = Vec::new();
    for (id, row) in table.iter() {
        let hit = match &plan.filter {
            Some(pred) => {
                let rc = BoundCtx {
                    row: Some(row),
                    ..ctx
                };
                evals.pred(pred, &rc)?
            }
            None => true,
        };
        if hit {
            out.push(id);
        }
    }
    Ok(out)
}

/// Apply phase of a compiled `DELETE` under the caller's table guard.
fn apply_delete(
    catalog: &Catalog,
    table: &mut Table,
    victims: Vec<RowId>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for id in victims {
        let row = table.delete(id)?;
        undo.record(UndoOp::Delete {
            table: table_name.clone(),
            row_id: id,
            row,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `DELETE` (two-phase, like the interpreter; see
/// [`run_update_plan`] for the guard discipline).
pub fn run_delete_plan(
    catalog: &Catalog,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = {
        let table = catalog.table(&plan.table)?;
        collect_delete(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_delete(catalog, &mut table, victims, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_delete_plan`] against a held table guard;
/// see [`run_update_plan_on`] for the subquery-freedom requirement.
pub fn run_delete_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = collect_delete(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_delete(catalog, table, victims, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}
