//! Compiled statement plans.
//!
//! [`compile`] turns a parsed `SELECT`, `UPDATE`, or `DELETE` into a
//! [`CompiledPlan`]: column references resolved to row ordinals
//! ([`BoundExpr`]), constants folded, the access path (point lookup,
//! range walk, whole-index walk, or full scan) chosen once, and the
//! projection / ORDER BY shape fixed. Executing a compiled plan skips
//! name resolution entirely — the per-row work is ordinal loads and
//! value operations.
//!
//! Compilation is best-effort and *must not change semantics*. Anything
//! the compiler does not understand — joins, grouping, views, unions,
//! aggregates, unresolvable names — yields [`CompiledPlan::Unsupported`]
//! and the caller falls back to the tree-walking interpreter, which
//! reports errors canonically. Crucially, the compiler chooses the
//! access path with the *same* helper functions the interpreter uses
//! (`find_eq_candidate`, `find_range_candidate`, `naive_order_hint`), so
//! for any statement both executors emit rows in the same order; the
//! differential tests in `tests/plan_cache.rs` hold them byte-identical.
//!
//! Plans are cached per statement, keyed by the catalog's schema
//! [`epoch`](crate::catalog::Catalog::epoch). Any DDL — including
//! `CREATE INDEX` / `DROP INDEX`, which silently change the best access
//! path — bumps the epoch and forces a re-bind on next execution.

use std::collections::HashMap;

use crate::ast::{
    BinOp, DeleteStmt, Expr, FromClause, JoinKind, OrderItem, SelectItem, SelectStmt, Statement,
    TableSource, UpdateStmt,
};
use crate::bound::{
    as_col_cmps, bind, eval_bound, eval_bound_predicate, infallible_predicate, BoundCtx, BoundExpr,
    OwnedColCmp,
};
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::exec::select::{
    collect_aggregates, find_eq_candidate, find_range_candidate, flatten_and, naive_order_hint,
    order_targets_column, projection_plan, split_equi_join,
};
use crate::expr::{aggregate_key, is_aggregate_name, RowSchema};
use crate::storage::{RowId, Table};
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// Synthetic binding under which aggregate results appear in the virtual
/// row schema of an [`AggPlan`]. Contains `#`, which the parser cannot
/// produce in an identifier, so it can never capture a user column.
pub(crate) const AGG_BINDING: &str = "#agg";

/// How a compiled single-table `SELECT` reaches its rows.
#[derive(Debug)]
pub(crate) enum Access {
    /// Walk the whole table in rowid order.
    Full,
    /// Point lookup: `col = key` over a single-column index.
    IndexEq { col: usize, key: BoundExpr },
    /// Range walk over a single-column index. Bounds are
    /// `(expr, inclusive)`; `rev` walks the key order backwards.
    IndexRange {
        col: usize,
        lower: Option<(BoundExpr, bool)>,
        upper: Option<(BoundExpr, bool)>,
        rev: bool,
    },
    /// Whole-index walk taken purely for `ORDER BY` key order
    /// (NULL keys included in their sort position).
    IndexOrder { col: usize, desc: bool },
}

/// One base-table side of a compiled join: how to scan it and which
/// pushed-down conjuncts to apply while gathering. Pushing never removes
/// a conjunct from the WHERE clause or an ON residual — the prefilter is
/// purely an optimization, so the retained copies keep the output (and
/// its error positions) byte-identical to the interpreter's.
#[derive(Debug)]
pub(crate) struct JoinSide {
    /// Catalog table name, as written.
    pub(crate) table: String,
    /// Access path chosen from the pushed conjuncts (never `IndexOrder`:
    /// join sides are re-sorted to rowid order, so order is irrelevant
    /// and every key below is a plan constant).
    pub(crate) access: Access,
    /// Pushed conjuncts, column ordinals local to this side's schema.
    pub(crate) prefilter: Vec<OwnedColCmp>,
    /// Number of columns this side contributes to the combined row.
    pub(crate) width: usize,
}

/// One join step: combines the accumulated left rows (sides `0..=i`)
/// with side `i+1`. Pair extraction reuses the interpreter's
/// `split_equi_join`, so both executors hash on the same keys and
/// evaluate the same residual conjuncts in the same order.
#[derive(Debug)]
pub(crate) struct JoinStep {
    pub(crate) kind: JoinKind,
    /// `(ordinal in accumulated left row, ordinal local to the new side)`
    /// equi-key pairs; empty means nested loop over the full `ON`.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Non-equi `ON` conjuncts, bound against the combined row, in the
    /// interpreter's flatten order.
    pub(crate) residual: Vec<BoundExpr>,
    /// The new side has a single-column index on the lone equi-key, and
    /// the join kind allows probing it (INNER/LEFT): the executor may
    /// run this step as an index nested loop when the outer side is
    /// small. RIGHT would still need the full scan for its end pads.
    pub(crate) inl_eligible: bool,
    /// Width of the accumulated left row entering this step.
    pub(crate) left_width: usize,
}

/// A compiled multi-table `FROM`: base-table sides joined left-to-right.
#[derive(Debug)]
pub(crate) struct JoinPlan {
    /// `sides[0]` is the base table; `steps[i]` joins `sides[i + 1]`.
    pub(crate) sides: Vec<JoinSide>,
    /// Total conjuncts pushed into side scans (for `pushed_predicates`).
    pub(crate) pushed: u64,
    pub(crate) steps: Vec<JoinStep>,
}

/// Where a compiled `SELECT` gets its input rows: one base table scan,
/// or a chain of joins over base tables.
#[derive(Debug)]
pub(crate) enum InputPlan {
    Single { table: String, access: Access },
    Join(JoinPlan),
}

/// Where one ORDER BY sort key comes from, resolved at compile time
/// following the interpreter's rules: ordinal literal → output column;
/// bare name matching an output alias → output column; anything else →
/// expression over the source row.
#[derive(Debug)]
pub(crate) enum OrderKey {
    /// The already-projected output value at this position.
    Output(usize),
    /// An expression evaluated against the source row.
    Row(BoundExpr),
}

/// A compiled `SELECT` over one table or a join chain. Executed
/// batch-at-a-time by [`crate::exec::batch::run_select_batched`].
#[derive(Debug)]
pub struct SelectPlan {
    pub(crate) input: InputPlan,
    /// The full WHERE clause; always re-checked, so the access path is
    /// purely an optimization.
    pub(crate) filter: Option<BoundExpr>,
    pub(crate) columns: Vec<String>,
    pub(crate) projections: Vec<BoundExpr>,
    pub(crate) distinct: bool,
    /// `(key source, descending)` per ORDER BY item.
    pub(crate) order: Vec<(OrderKey, bool)>,
    /// Does the access path already emit rows in ORDER BY order?
    pub(crate) order_served: bool,
    pub(crate) limit: Option<BoundExpr>,
    pub(crate) offset: Option<BoundExpr>,
}

/// One aggregate call site of an [`AggPlan`], argument pre-bound against
/// the base row. `arg == None` encodes `COUNT(*)`; lowering declines
/// `*` under any other aggregate so the interpreter raises its canonical
/// error.
#[derive(Debug)]
pub(crate) struct BoundAggSpec {
    /// Upper-cased aggregate name (the parser canonicalizes case).
    pub(crate) name: String,
    pub(crate) arg: Option<BoundExpr>,
    pub(crate) distinct: bool,
}

/// A compiled single-table grouped `SELECT`, executed through the
/// one-pass hash aggregator in [`crate::exec::batch::run_agg_plan`].
///
/// Aggregate call sites in the projection / HAVING / ORDER BY are
/// rewritten at compile time into references to *synthetic columns*
/// appended after the base row: the executor materializes one virtual
/// row per group — representative base row values followed by one slot
/// per aggregate — and every downstream expression is bound against
/// that widened schema. This reproduces the interpreter's "pre-computed
/// aggregates map" semantics with plain ordinal loads.
#[derive(Debug)]
pub struct AggPlan {
    pub(crate) input: InputPlan,
    pub(crate) filter: Option<BoundExpr>,
    /// GROUP BY key expressions over the base row.
    pub(crate) group_by: Vec<BoundExpr>,
    /// Aggregate call sites in the interpreter's discovery order
    /// (projections, then HAVING, then ORDER BY), deduplicated by call
    /// site; slot `i` of the virtual row tail holds spec `i`'s value.
    pub(crate) specs: Vec<BoundAggSpec>,
    /// Width of the base row; aggregate slots start here.
    pub(crate) base_width: usize,
    /// HAVING over the virtual row (aggregates already rewritten).
    pub(crate) having: Option<BoundExpr>,
    pub(crate) columns: Vec<String>,
    pub(crate) projections: Vec<BoundExpr>,
    pub(crate) distinct: bool,
    pub(crate) order: Vec<(OrderKey, bool)>,
    pub(crate) limit: Option<BoundExpr>,
    pub(crate) offset: Option<BoundExpr>,
}

/// A compiled `UPDATE`: filter plus `(column ordinal, value)` pairs.
#[derive(Debug)]
pub struct UpdatePlan {
    table: String,
    filter: Option<BoundExpr>,
    assignments: Vec<(usize, BoundExpr)>,
}

impl UpdatePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does any filter or assignment expression run a subquery? If so
    /// the statement must not take the fast single-table-guard path.
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
            || self.assignments.iter().any(|(_, e)| e.contains_subquery())
    }
}

/// A compiled `DELETE`.
#[derive(Debug)]
pub struct DeletePlan {
    table: String,
    filter: Option<BoundExpr>,
}

impl DeletePlan {
    /// The target table, as written in the statement.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Does the filter run a subquery? See [`UpdatePlan::has_subquery`].
    pub fn has_subquery(&self) -> bool {
        self.filter
            .as_ref()
            .is_some_and(BoundExpr::contains_subquery)
    }
}

/// The result of compiling one statement against one catalog epoch.
#[derive(Debug)]
pub enum CompiledPlan {
    /// Boxed: a `SelectPlan` is an order of magnitude larger than the
    /// other variants, and plans are built once then executed many times.
    Select(Box<SelectPlan>),
    /// Grouped/aggregating `SELECT`, run through the hash aggregator.
    Aggregate(Box<AggPlan>),
    Update(UpdatePlan),
    Delete(DeletePlan),
    /// Compilation declined; execute through the interpreter.
    Unsupported,
}

/// Compile a statement against the current catalog state. Never fails:
/// anything outside the compilable subset (or that would error at bind
/// time where the interpreter errors at run time) is `Unsupported`.
pub fn compile(catalog: &Catalog, stmt: &Statement) -> CompiledPlan {
    match stmt {
        Statement::Select(s) => compile_select(catalog, s).unwrap_or(CompiledPlan::Unsupported),
        Statement::Update(u) => compile_update(catalog, u).unwrap_or(CompiledPlan::Unsupported),
        Statement::Delete(d) => compile_delete(catalog, d).unwrap_or(CompiledPlan::Unsupported),
        _ => CompiledPlan::Unsupported,
    }
}

/// Row schema of a base-table scan: every column under the scan binding.
fn table_row_schema(table: &Table, binding: &str) -> RowSchema {
    RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.to_string()), c.name.clone()))
            .collect(),
    )
}

fn bind_opt(expr: Option<&crate::ast::Expr>, schema: &RowSchema) -> Option<Option<BoundExpr>> {
    match expr {
        Some(e) => match bind(e, schema) {
            Ok(b) => Some(Some(b)),
            Err(_) => None,
        },
        None => Some(None),
    }
}

/// Choose the access path exactly as the interpreter's `try_index_scan`
/// does — same candidate search over the same flattened conjunct list —
/// so both executors emit rows in the same physical order. Returns the
/// access plus `(col, desc)` when the path serves that key order.
/// `None` when a bound expression fails to bind (decline compilation).
fn choose_access(
    where_clause: Option<&Expr>,
    order_by: &[OrderItem],
    binding: &str,
    table: &Table,
    schema: &RowSchema,
) -> Option<(Access, Option<(usize, bool)>)> {
    let mut conjuncts = Vec::new();
    if let Some(pred) = where_clause {
        flatten_and(pred, &mut conjuncts);
    }
    let order_hint = naive_order_hint(order_by, binding, table);
    if let Some((col, value_expr)) = find_eq_candidate(&conjuncts, binding, table) {
        let key = bind(value_expr, schema).ok()?;
        Some((Access::IndexEq { col, key }, None))
    } else if let Some(spec) = find_range_candidate(&conjuncts, binding, table) {
        let rev = order_hint.is_some_and(|(c, desc)| c == spec.col && desc);
        let bind_bound = |b: Option<(&Expr, bool)>| match b {
            Some((e, inc)) => bind(e, schema).ok().map(|be| Some((be, inc))),
            None => Some(None),
        };
        Some((
            Access::IndexRange {
                col: spec.col,
                lower: bind_bound(spec.lower)?,
                upper: bind_bound(spec.upper)?,
                rev,
            },
            Some((spec.col, rev)),
        ))
    } else if let Some((col, desc)) =
        order_hint.filter(|(col, _)| table.find_index(&[*col]).is_some())
    {
        Some((Access::IndexOrder { col, desc }, Some((col, desc))))
    } else {
        Some((Access::Full, None))
    }
}

/// Does any expression position of this statement run a subquery?
/// Compiled joins hold several table guards at once; a subquery would
/// re-enter the executor (and the catalog's table map) under those
/// guards, so join compilation declines the whole statement instead.
fn stmt_contains_subquery(stmt: &SelectStmt) -> bool {
    stmt.projections.iter().any(|p| match p {
        SelectItem::Expr { expr, .. } => expr.contains_subquery(),
        _ => false,
    }) || stmt
        .where_clause
        .as_ref()
        .is_some_and(Expr::contains_subquery)
        || stmt.group_by.iter().any(Expr::contains_subquery)
        || stmt.having.as_ref().is_some_and(Expr::contains_subquery)
        || stmt.order_by.iter().any(|o| o.expr.contains_subquery())
        || stmt.limit.as_ref().is_some_and(Expr::contains_subquery)
        || stmt.offset.as_ref().is_some_and(Expr::contains_subquery)
        || stmt.from.as_ref().is_some_and(|f| {
            f.joins
                .iter()
                .any(|j| j.on.as_ref().is_some_and(Expr::contains_subquery))
        })
}

/// A compiled FROM clause: the input plan, the combined row schema
/// every downstream expression binds against, and the single-table
/// index-order hint (`(col, desc)`) consumed by the `order_served`
/// check — join inputs never serve an order.
type CompiledInput = (InputPlan, RowSchema, Option<(usize, bool)>);

/// Compile the FROM clause into an input plan plus the combined row
/// schema every downstream expression binds against.
fn compile_input(catalog: &Catalog, stmt: &SelectStmt, from: &FromClause) -> Option<CompiledInput> {
    let TableSource::Named(name) = &from.base.source else {
        return None;
    };
    if catalog.has_view(name) {
        return None;
    }
    if from.joins.is_empty() {
        let table = catalog.table(name).ok()?;
        let binding = from.base.binding_name().unwrap_or(name).to_string();
        let schema = table_row_schema(&table, &binding);
        let (access, index_order) = choose_access(
            stmt.where_clause.as_ref(),
            &stmt.order_by,
            &binding,
            &table,
            &schema,
        )?;
        return Some((
            InputPlan::Single {
                table: name.clone(),
                access,
            },
            schema,
            index_order,
        ));
    }
    let (join, schema) = compile_join(catalog, stmt, from)?;
    Some((InputPlan::Join(join), schema, None))
}

/// The side whose column range contains every cmp ordinal, if exactly
/// one side does. Ordinals are in combined-row space here; the caller
/// rebases them to the side's local schema when pushing.
fn side_of(cmps: &[OwnedColCmp], offsets: &[usize], widths: &[usize]) -> Option<usize> {
    let first = cmps.first()?.col;
    let s = offsets.partition_point(|o| *o <= first) - 1;
    cmps.iter()
        .all(|c| c.col >= offsets[s] && c.col < offsets[s] + widths[s])
        .then_some(s)
}

/// Choose a join side's access path from its pushed conjuncts. Join
/// sides are re-sorted to rowid order after gathering, so unlike the
/// single-table chooser this one owes the interpreter no particular
/// physical order — any index that serves part of the prefilter is fair
/// game (the full prefilter still runs over whatever the index yields).
/// Keys are plan constants, so the scan itself can never raise an
/// evaluation error the interpreter would not.
fn access_from_cmps(table: &Table, cmps: &[OwnedColCmp]) -> Access {
    for c in cmps {
        if c.op == BinOp::Eq && table.find_index(&[c.col]).is_some() {
            return Access::IndexEq {
                col: c.col,
                key: BoundExpr::Const(c.key.clone()),
            };
        }
    }
    for c in cmps {
        if !matches!(c.op, BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
            || table.find_index(&[c.col]).is_none()
        {
            continue;
        }
        let mut lower = None;
        let mut upper = None;
        for c2 in cmps.iter().filter(|c2| c2.col == c.col) {
            let bound = Some((
                BoundExpr::Const(c2.key.clone()),
                matches!(c2.op, BinOp::LtEq | BinOp::GtEq),
            ));
            match c2.op {
                BinOp::Gt | BinOp::GtEq if lower.is_none() => lower = bound,
                BinOp::Lt | BinOp::LtEq if upper.is_none() => upper = bound,
                _ => {}
            }
        }
        return Access::IndexRange {
            col: c.col,
            lower,
            upper,
            rev: false,
        };
    }
    Access::Full
}

/// Compile a joined FROM clause. Declines (→ interpreter) on views or
/// derived tables anywhere, subqueries in any expression position, bind
/// failures, and LEFT/RIGHT joins with no equi-pairs (nested-loop outer
/// padding stays interpreter-canonical).
///
/// Pushdown analysis: a WHERE or residual-ON conjunct of the
/// `column <cmp> constant` family whose columns land in exactly one side
/// may run as that side's scan prefilter — WHERE conjuncts into any
/// side, an ON conjunct of step `i` into the step's new side only for
/// INNER/LEFT (a RIGHT join must still end-pad the rows it would have
/// removed) and into a left-part side only for INNER/RIGHT (mirror
/// argument). Nothing is ever *removed* from the WHERE or a residual,
/// and no conjunct is pushed unless the whole WHERE and every residual
/// are structurally infallible, so the engines cannot diverge on output
/// rows or on which row surfaces an evaluation error first.
fn compile_join(
    catalog: &Catalog,
    stmt: &SelectStmt,
    from: &FromClause,
) -> Option<(JoinPlan, RowSchema)> {
    if stmt_contains_subquery(stmt) {
        return None;
    }

    // Every side must be a named base table.
    let mut refs = vec![&from.base];
    refs.extend(from.joins.iter().map(|j| &j.table));
    let mut names: Vec<String> = Vec::with_capacity(refs.len());
    let mut side_schemas: Vec<RowSchema> = Vec::with_capacity(refs.len());
    for r in &refs {
        let TableSource::Named(n) = &r.source else {
            return None;
        };
        if catalog.has_view(n) {
            return None;
        }
        let table = catalog.table(n).ok()?;
        side_schemas.push(table_row_schema(&table, r.binding_name().unwrap_or(n)));
        names.push(n.clone());
    }
    let widths: Vec<usize> = side_schemas.iter().map(RowSchema::len).collect();
    let mut offsets = Vec::with_capacity(widths.len());
    let mut acc = 0usize;
    for w in &widths {
        offsets.push(acc);
        acc += w;
    }

    // Accumulated prefix schemas: `prefixes[i]` covers sides `0..=i`,
    // matching the interpreter's left schema entering step `i`. Step
    // `i`'s expressions bind against `prefixes[i + 1]`; a prefix is a
    // prefix of the combined schema, so ordinals agree everywhere.
    let mut prefixes: Vec<RowSchema> = Vec::with_capacity(side_schemas.len());
    let mut cols: Vec<(Option<String>, String)> = Vec::new();
    for s in &side_schemas {
        cols.extend(s.columns().iter().cloned());
        prefixes.push(RowSchema::new(cols.clone()));
    }
    let schema = prefixes.last()?.clone();

    let mut steps = Vec::with_capacity(from.joins.len());
    for (i, j) in from.joins.iter().enumerate() {
        let (pairs, residual_ast) = match (j.kind, &j.on) {
            (JoinKind::Cross, _) => (Vec::new(), Vec::new()),
            (_, Some(on)) => split_equi_join(on, &prefixes[i], &side_schemas[i + 1]),
            (_, None) => return None, // parser enforces ON for non-cross
        };
        if pairs.is_empty() && matches!(j.kind, JoinKind::Left | JoinKind::Right) {
            return None;
        }
        let residual: Vec<BoundExpr> = residual_ast
            .iter()
            .map(|e| bind(e, &prefixes[i + 1]))
            .collect::<SqlResult<_>>()
            .ok()?;
        steps.push(JoinStep {
            kind: j.kind,
            // Index presence for INL is checked below, guard in hand.
            inl_eligible: matches!(j.kind, JoinKind::Inner | JoinKind::Left) && pairs.len() == 1,
            pairs,
            residual,
            left_width: offsets[i + 1],
        });
    }

    // Pushdown gate: pushing changes which intermediate rows exist, so
    // evaluation errors must be impossible everywhere they could surface
    // differently — the whole WHERE and every step's residual.
    let mut where_conjs: Vec<Expr> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        flatten_and(w, &mut where_conjs);
    }
    let bound_where: Vec<BoundExpr> = where_conjs
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;
    let pushdown_ok = bound_where.iter().all(infallible_predicate)
        && steps
            .iter()
            .flat_map(|s| s.residual.iter())
            .all(infallible_predicate);

    let mut prefilters: Vec<Vec<OwnedColCmp>> = vec![Vec::new(); names.len()];
    let mut pushed = 0u64;
    if pushdown_ok {
        for b in &bound_where {
            let Some(cmps) = as_col_cmps(b) else { continue };
            let Some(s) = side_of(&cmps, &offsets, &widths) else {
                continue;
            };
            pushed += 1;
            for mut c in cmps {
                c.col -= offsets[s];
                prefilters[s].push(c);
            }
        }
        for (i, step) in steps.iter().enumerate() {
            for b in &step.residual {
                let Some(cmps) = as_col_cmps(b) else { continue };
                let Some(s) = side_of(&cmps, &offsets, &widths) else {
                    continue;
                };
                let allowed = if s == i + 1 {
                    matches!(step.kind, JoinKind::Inner | JoinKind::Left)
                } else {
                    matches!(step.kind, JoinKind::Inner | JoinKind::Right)
                };
                if !allowed {
                    continue;
                }
                pushed += 1;
                for mut c in cmps {
                    c.col -= offsets[s];
                    prefilters[s].push(c);
                }
            }
        }
    }

    let mut sides = Vec::with_capacity(names.len());
    for (s, n) in names.iter().enumerate() {
        let table = catalog.table(n).ok()?;
        if s > 0 {
            let step = &mut steps[s - 1];
            if step.inl_eligible {
                step.inl_eligible = step
                    .pairs
                    .first()
                    .is_some_and(|(_, rc)| table.find_index(&[*rc]).is_some());
            }
        }
        sides.push(JoinSide {
            table: n.clone(),
            access: access_from_cmps(&table, &prefilters[s]),
            prefilter: std::mem::take(&mut prefilters[s]),
            width: widths[s],
        });
    }

    Some((
        JoinPlan {
            sides,
            pushed,
            steps,
        },
        schema,
    ))
}

/// Resolve one ORDER BY item the way the interpreter's `order_key`
/// resolves it: in-range ordinal literal → output column; bare name
/// matching an output alias → output column; anything else → bound
/// expression over the (virtual) source row. An out-of-range ordinal
/// declines compilation — the interpreter only errors when a row
/// actually reaches the sort.
fn compile_order_key(
    item_expr: &Expr,
    columns: &[String],
    n_outputs: usize,
    bind_row: impl Fn(&Expr) -> Option<BoundExpr>,
) -> Option<OrderKey> {
    match item_expr {
        Expr::Literal(Value::Int(n)) => {
            if *n >= 1 && (*n as usize) <= n_outputs {
                Some(OrderKey::Output(*n as usize - 1))
            } else {
                None
            }
        }
        Expr::Column { table: None, name } => {
            match columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                Some(i) => Some(OrderKey::Output(i)),
                None => Some(OrderKey::Row(bind_row(item_expr)?)),
            }
        }
        e => Some(OrderKey::Row(bind_row(e)?)),
    }
}

fn compile_select(catalog: &Catalog, stmt: &SelectStmt) -> Option<CompiledPlan> {
    // The compilable subset: one named base table, no set operations.
    if !stmt.unions.is_empty() {
        return None;
    }
    // Grouping machinery — mirror the interpreter's `needs_grouping`
    // test exactly, then lower through the hash-aggregate path.
    let needs_grouping = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());
    if needs_grouping {
        return compile_select_agg(catalog, stmt);
    }
    // HAVING without grouping: rare and interpreter-defined; decline.
    if stmt.having.is_some() {
        return None;
    }
    let from = stmt.from.as_ref()?;
    let (input, schema, index_order) = compile_input(catalog, stmt, from)?;

    // Projection expansion + binding. Aggregates fail `bind`, sending
    // anything the grouping test above missed to the interpreter.
    let (columns, proj_exprs) = projection_plan(stmt, &schema).ok()?;
    let projections: Vec<BoundExpr> = proj_exprs
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;

    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        let key = compile_order_key(&item.expr, &columns, projections.len(), |e| {
            bind(e, &schema).ok()
        })?;
        order.push((key, item.desc));
    }

    let order_served = stmt.order_by.len() == 1
        && index_order.is_some_and(|(col, rev)| {
            stmt.order_by[0].desc == rev
                && order_targets_column(&stmt.order_by[0].expr, &columns, &proj_exprs, &schema, col)
        });

    // LIMIT/OFFSET are row-independent; bind against the empty schema.
    let empty = RowSchema::empty();
    let limit = bind_opt(stmt.limit.as_ref(), &empty)?;
    let offset = bind_opt(stmt.offset.as_ref(), &empty)?;

    Some(CompiledPlan::Select(Box::new(SelectPlan {
        input,
        filter,
        columns,
        projections,
        distinct: stmt.distinct,
        order,
        order_served,
        limit,
        offset,
    })))
}

/// Replace every aggregate call site in `e` with a reference to its
/// synthetic column (`"#agg"."#<i>"`, where `i` is the spec's slot).
/// Call sites were deduplicated by [`aggregate_key`], so textually equal
/// aggregates share a slot — exactly the interpreter's pre-computed-map
/// behavior. Subqueries are left untouched (their aggregates are their
/// own; the AST walk that collected specs does not descend either).
fn rewrite_aggs(e: &Expr, keys: &[String]) -> Expr {
    if let Expr::Function { name, .. } = e {
        if is_aggregate_name(name) {
            let key = aggregate_key(e);
            let i = keys
                .iter()
                .position(|k| *k == key)
                .expect("every aggregate call site was collected");
            return Expr::Column {
                table: Some(AGG_BINDING.to_string()),
                name: format!("#{i}"),
            };
        }
    }
    match e {
        Expr::Literal(_)
        | Expr::Column { .. }
        | Expr::Param(_)
        | Expr::NamedParam(_)
        | Expr::Exists { .. }
        | Expr::ScalarSubquery(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggs(expr, keys)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_aggs(left, keys)),
            op: *op,
            right: Box::new(rewrite_aggs(right, keys)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_aggs(expr, keys)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggs(expr, keys)),
            list: list.iter().map(|x| rewrite_aggs(x, keys)).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(rewrite_aggs(expr, keys)),
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggs(expr, keys)),
            low: Box::new(rewrite_aggs(low, keys)),
            high: Box::new(rewrite_aggs(high, keys)),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_aggs(expr, keys)),
            pattern: Box::new(rewrite_aggs(pattern, keys)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rewrite_aggs(o, keys))),
            branches: branches
                .iter()
                .map(|(w, t)| (rewrite_aggs(w, keys), rewrite_aggs(t, keys)))
                .collect(),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(rewrite_aggs(e, keys))),
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_aggs(a, keys)).collect(),
            distinct: *distinct,
            star: *star,
        },
    }
}

/// Lower a grouped/aggregating single-table `SELECT` into an [`AggPlan`].
/// Declines (→ interpreter) on joins, views, nested aggregates, `*` under
/// non-COUNT aggregates, unresolvable names, and anything whose canonical
/// error the interpreter must report.
fn compile_select_agg(catalog: &Catalog, stmt: &SelectStmt) -> Option<CompiledPlan> {
    let from = stmt.from.as_ref()?;
    // Access-path choice (for the single-table case) is shared with the
    // plain-select compiler so group first-seen order matches the
    // interpreter's row arrival order. (`order_served` never applies to
    // grouped queries, so the index-order hint is dropped.)
    let (input, schema, _) = compile_input(catalog, stmt, from)?;

    // Aggregate call sites, discovered in the interpreter's walk order
    // (projections, HAVING, ORDER BY; deduplicated by call-site key).
    let ast_specs = collect_aggregates(stmt);
    let mut specs = Vec::with_capacity(ast_specs.len());
    for s in &ast_specs {
        let arg = match &s.arg {
            Some(e) => {
                // Nested aggregates error at runtime in the interpreter;
                // let it report that canonically.
                if e.contains_aggregate() {
                    return None;
                }
                Some(bind(e, &schema).ok()?)
            }
            None => {
                // `*` under non-COUNT raises per-group in the
                // interpreter; decline rather than re-implement it.
                if s.name != "COUNT" {
                    return None;
                }
                None
            }
        };
        specs.push(BoundAggSpec {
            name: s.name.clone(),
            arg,
            distinct: s.distinct,
        });
    }
    let spec_keys: Vec<String> = ast_specs.into_iter().map(|s| s.key).collect();

    // GROUP BY keys evaluate against the base row. Aggregates inside
    // GROUP BY fail `bind` here → interpreter's canonical error.
    let group_by: Vec<BoundExpr> = stmt
        .group_by
        .iter()
        .map(|e| bind(e, &schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    // WHERE also sees only the base row (aggregates fail bind →
    // interpreter raises "aggregates are not allowed in WHERE").
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;

    // Everything downstream of grouping sees the virtual row: the base
    // columns followed by one synthetic column per aggregate slot.
    let mut virt_cols = schema.columns().to_vec();
    for i in 0..specs.len() {
        virt_cols.push((Some(AGG_BINDING.to_string()), format!("#{i}")));
    }
    let virt_schema = RowSchema::new(virt_cols);

    let (columns, proj_exprs) = projection_plan(stmt, &schema).ok()?;
    let projections: Vec<BoundExpr> = proj_exprs
        .iter()
        .map(|e| bind(&rewrite_aggs(e, &spec_keys), &virt_schema))
        .collect::<SqlResult<_>>()
        .ok()?;

    let having = match &stmt.having {
        Some(h) => Some(bind(&rewrite_aggs(h, &spec_keys), &virt_schema).ok()?),
        None => None,
    };

    let mut order = Vec::with_capacity(stmt.order_by.len());
    for item in &stmt.order_by {
        let key = compile_order_key(&item.expr, &columns, projections.len(), |e| {
            bind(&rewrite_aggs(e, &spec_keys), &virt_schema).ok()
        })?;
        order.push((key, item.desc));
    }

    let empty = RowSchema::empty();
    let limit = bind_opt(stmt.limit.as_ref(), &empty)?;
    let offset = bind_opt(stmt.offset.as_ref(), &empty)?;

    Some(CompiledPlan::Aggregate(Box::new(AggPlan {
        input,
        filter,
        group_by,
        specs,
        base_width: schema.len(),
        having,
        columns,
        projections,
        distinct: stmt.distinct,
        order,
        limit,
        offset,
    })))
}

fn compile_update(catalog: &Catalog, stmt: &UpdateStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    // The interpreter binds the scan under the table's declared name.
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let mut assignments = Vec::with_capacity(stmt.assignments.len());
    for (col, e) in &stmt.assignments {
        let pos = table.schema.resolve(col).ok()?;
        assignments.push((pos, bind(e, &schema).ok()?));
    }
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Update(UpdatePlan {
        table: stmt.table.clone(),
        filter,
        assignments,
    }))
}

fn compile_delete(catalog: &Catalog, stmt: &DeleteStmt) -> Option<CompiledPlan> {
    let table = catalog.table(&stmt.table).ok()?;
    let schema = table_row_schema(&table, &table.schema.name.clone());
    let filter = bind_opt(stmt.where_clause.as_ref(), &schema)?;
    Some(CompiledPlan::Delete(DeletePlan {
        table: stmt.table.clone(),
        filter,
    }))
}

// ---------------------------------------------------------------- execution

/// Bound-evaluation tally for one statement, flushed to the catalog's
/// `bound_evals` counter in one atomic add at the end.
pub(crate) struct Evals(pub(crate) u64);

impl Evals {
    pub(crate) fn eval(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<Value> {
        self.0 += 1;
        eval_bound(e, ctx)
    }

    pub(crate) fn pred(&mut self, e: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<bool> {
        self.0 += 1;
        eval_bound_predicate(e, ctx)
    }
}

pub(crate) fn bound_usize(
    e: &BoundExpr,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    what: &str,
) -> SqlResult<usize> {
    match evals.eval(e, ctx)? {
        Value::Int(n) if n >= 0 => Ok(n as usize),
        other => Err(SqlError::Semantic(format!(
            "{what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

// Compiled `SELECT` execution lives in [`crate::exec::batch`]: both the
// plain plan (`run_select_batched`) and the aggregate plan
// (`run_agg_plan`) run batch-at-a-time over borrowed storage rows.

/// Collect phase of a compiled `UPDATE`: evaluate filter + assignments
/// against an immutable snapshot (avoiding the Halloween problem).
fn collect_update(
    catalog: &Catalog,
    table: &Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<(RowId, Vec<Value>)>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut changes = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let rc = BoundCtx {
            row: Some(row),
            ..ctx
        };
        let hit = match &plan.filter {
            Some(pred) => evals.pred(pred, &rc)?,
            None => true,
        };
        if !hit {
            continue;
        }
        let mut new_row = (**row).clone();
        for (pos, e) in &plan.assignments {
            new_row[*pos] = evals.eval(e, &rc)?;
        }
        changes.push((id, new_row));
    }
    catalog.note_full_scan_rows(walked);
    Ok(changes)
}

/// Apply phase of a compiled `UPDATE`: write the precomputed rows under
/// the caller's exclusive table guard, recording undo for atomicity.
fn apply_update(
    catalog: &Catalog,
    table: &mut Table,
    changes: Vec<(RowId, Vec<Value>)>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for (id, new_row) in changes {
        let old = table.update(id, new_row)?;
        undo.record(UndoOp::Update {
            table: table_name.clone(),
            row_id: id,
            old,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `UPDATE` in the interpreter's two phases: collect
/// under a shared table guard (subqueries in the filter may re-read this
/// very table), then apply under the exclusive guard. The guard gap is
/// harmless: this path runs with the catalog-shape lock held exclusively,
/// so no other statement can slip in between.
pub fn run_update_plan(
    catalog: &Catalog,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = {
        let table = catalog.table(&plan.table)?;
        collect_update(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_update(catalog, &mut table, changes, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_update_plan`]: both phases run against a
/// table guard the *caller* already holds, so the whole statement is one
/// atomic unit even under the shared catalog-shape lock. Callers must
/// have checked [`UpdatePlan::has_subquery`] — a subquery would re-enter
/// the catalog's table map and self-deadlock on the held guard.
pub fn run_update_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &UpdatePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let changes = collect_update(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_update(catalog, table, changes, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Collect phase of a compiled `DELETE`: gather victim row ids against
/// an immutable snapshot.
fn collect_delete(
    catalog: &Catalog,
    table: &Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    evals: &mut Evals,
) -> SqlResult<Vec<RowId>> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut out = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let hit = match &plan.filter {
            Some(pred) => {
                let rc = BoundCtx {
                    row: Some(row),
                    ..ctx
                };
                evals.pred(pred, &rc)?
            }
            None => true,
        };
        if hit {
            out.push(id);
        }
    }
    catalog.note_full_scan_rows(walked);
    Ok(out)
}

/// Apply phase of a compiled `DELETE` under the caller's table guard.
fn apply_delete(
    catalog: &Catalog,
    table: &mut Table,
    victims: Vec<RowId>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for id in victims {
        let row = table.delete(id)?;
        undo.record(UndoOp::Delete {
            table: table_name.clone(),
            row_id: id,
            row,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a compiled `DELETE` (two-phase, like the interpreter; see
/// [`run_update_plan`] for the guard discipline).
pub fn run_delete_plan(
    catalog: &Catalog,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = {
        let table = catalog.table(&plan.table)?;
        collect_delete(catalog, &table, plan, params, named_params, &mut evals)?
    };
    let mut table = catalog.table_mut(&plan.table)?;
    let n = apply_delete(catalog, &mut table, victims, undo)?;
    drop(table);
    catalog.note_bound_evals(evals.0);
    Ok(n)
}

/// Fast-path variant of [`run_delete_plan`] against a held table guard;
/// see [`run_update_plan_on`] for the subquery-freedom requirement.
pub fn run_delete_plan_on(
    catalog: &Catalog,
    table: &mut Table,
    plan: &DeletePlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let mut evals = Evals(0);
    let victims = collect_delete(catalog, table, plan, params, named_params, &mut evals)?;
    let n = apply_delete(catalog, table, victims, undo)?;
    catalog.note_bound_evals(evals.0);
    Ok(n)
}
