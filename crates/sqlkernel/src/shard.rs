//! Sharded multi-engine execution with crash-tolerant two-phase commit.
//!
//! A [`ShardedDatabase`] hash-partitions state across N independent
//! [`Database`] engines — each with its own WAL, table locks, and MVCC
//! clock — plus one coordinator engine holding the 2PC decision log.
//! Single-shard statements route directly to their shard by key
//! ([`shard_of`]); cross-shard writes run through a two-phase commit
//! riding the existing WAL:
//!
//! 1. **Phase 1 (prepare).** Every participant durably appends a
//!    `Prepare` record carrying the global transaction id and everything
//!    a later `Commit` needs (epoch, sequence states), then votes yes.
//!    Any failed or dead participant vetoes: the coordinator aborts the
//!    survivors and *presumes abort* for the dead one — its unterminated
//!    (or merely prepared) transaction resolves to abort at recovery.
//! 2. **Decision.** The coordinator inserts a commit row into its
//!    `TWO_PC_DECISIONS` table; the row's durability *is* the decision
//!    point, riding the ordinary WAL commit of the `INSERT`. Presumed
//!    abort means no row is ever written for aborts.
//! 3. **Phase 2 (notify).** Participants finish with `COMMIT`. A
//!    participant that dies in the window between its acknowledged
//!    prepare and the notify is *in-doubt*: recovery finds the
//!    unterminated `Prepare` on its log and resolves it against the
//!    decision log ([`ShardedDatabase::recover`]) — commit if the
//!    decision row exists, abort otherwise — with seeded retry/backoff
//!    when the coordinator answers transiently, and a hard error (never
//!    a guess) when it stays unreachable.
//!
//! The coordinator itself can die between logging the decision and
//! notifying anyone: its own recovery replays the decision `INSERT`, so
//! the in-doubt participants still learn the truth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::db::{Connection, Database, StatementResult};
use crate::error::{SqlError, SqlResult};
use crate::fault::SplitMix64;
use crate::types::Value;
use crate::wal::{InDoubtTxn, LogStore};

/// Attempts the in-doubt resolver makes against a transiently failing
/// coordinator before giving up (and failing the recovery).
const IN_DOUBT_RETRY_ATTEMPTS: u64 = 6;

/// Stable, unseeded FNV-1a shard router: the same key maps to the same
/// shard on every host, every run, every shard-count-N deployment. Keep
/// this canonical — FLOW_INSTANCES placement and every routed statement
/// depend on it.
pub fn shard_of(key: &str, n: usize) -> usize {
    debug_assert!(n > 0, "shard_of over zero shards");
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % n as u64) as usize
}

/// The coordinator's decision table. A row `(gid, 'commit')` is the
/// durable commit decision for global transaction `gid`; absence of a
/// row means abort (presumed abort — aborts are never logged).
const DECISIONS_TABLE: &str = "TWO_PC_DECISIONS";

struct ShardedInner {
    name: String,
    shards: Vec<Database>,
    coordinator: Database,
    /// Next global transaction id; recovered past every decision and
    /// in-doubt gid so ids never collide across restarts.
    next_gid: AtomicU64,
    /// Cross-shard transactions driven through the full 2PC protocol.
    cross_shard_commits: AtomicU64,
    /// Transactions that touched one shard and took the plain-commit
    /// fast path (no prepare, no decision row).
    single_shard_commits: AtomicU64,
}

/// N independent engines plus a 2PC coordinator, routed by key hash.
/// Cloning is cheap (`Arc`); all clones drive the same shards.
#[derive(Clone)]
pub struct ShardedDatabase {
    inner: Arc<ShardedInner>,
}

impl std::fmt::Debug for ShardedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDatabase")
            .field("name", &self.inner.name)
            .field("shards", &self.inner.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedDatabase {
    /// Recover (or bootstrap — the stores may be empty) a sharded
    /// database from its logs. Recovery order matters: the coordinator
    /// first, so its decision table reflects every durable decision,
    /// then each shard with an in-doubt resolver that consults it.
    /// `seed` drives the resolver's retry/backoff jitter.
    pub fn recover(
        name: impl Into<String>,
        stores: &[Arc<dyn LogStore>],
        coord_store: Arc<dyn LogStore>,
        seed: u64,
    ) -> SqlResult<ShardedDatabase> {
        let name = name.into();
        if stores.is_empty() {
            return Err(SqlError::Connection(
                "a sharded database needs at least one shard store".into(),
            ));
        }
        let coordinator = Database::recover(format!("{name}.coord"), coord_store)?;
        if !coordinator.has_table(DECISIONS_TABLE) {
            coordinator.connect().execute(
                "CREATE TABLE TWO_PC_DECISIONS (Gid INT PRIMARY KEY, Decision TEXT)",
                &[],
            )?;
        }
        // Highest gid anywhere on durable record: decision rows plus the
        // in-doubt gids the shard resolvers surface below.
        let mut max_gid: u64 = 0;
        {
            let rs = coordinator
                .connect()
                .query("SELECT Gid FROM TWO_PC_DECISIONS", &[])?;
            for row in &rs.rows {
                if let Value::Int(g) = &row[0] {
                    max_gid = max_gid.max(*g as u64);
                }
            }
        }
        let max_in_doubt = AtomicU64::new(0);
        let mut shards = Vec::with_capacity(stores.len());
        for (i, store) in stores.iter().enumerate() {
            let shard = Database::recover_resolving(
                format!("{name}#{i}"),
                Arc::clone(store),
                |txn: &InDoubtTxn| {
                    max_in_doubt.fetch_max(txn.gid, Ordering::Relaxed);
                    decide_with_retry(&coordinator, seed, txn)
                },
            )?;
            shards.push(shard);
        }
        max_gid = max_gid.max(max_in_doubt.load(Ordering::Relaxed));
        Ok(ShardedDatabase {
            inner: Arc::new(ShardedInner {
                name,
                shards,
                coordinator,
                next_gid: AtomicU64::new(max_gid + 1),
                cross_shard_commits: AtomicU64::new(0),
                single_shard_commits: AtomicU64::new(0),
            }),
        })
    }

    /// The sharded database's name (shards are `name#i`, the coordinator
    /// `name.coord`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard engines, in shard order.
    pub fn shards(&self) -> &[Database] {
        &self.inner.shards
    }

    /// The shard a key routes to.
    pub fn shard_for(&self, key: &str) -> usize {
        shard_of(key, self.inner.shards.len())
    }

    /// Engine for shard `i`.
    pub fn shard(&self, i: usize) -> &Database {
        &self.inner.shards[i]
    }

    /// Engine the given key routes to — the single-shard fast path:
    /// connect here and run ordinary statements, no 2PC involved.
    pub fn shard_db_for(&self, key: &str) -> &Database {
        &self.inner.shards[self.shard_for(key)]
    }

    /// The coordinator engine holding the decision log.
    pub fn coordinator(&self) -> &Database {
        &self.inner.coordinator
    }

    /// Publish every shard (`name#i`) and the coordinator (`name.coord`)
    /// in the shared DSN registry, so the workflow stacks reach shards
    /// through their existing `Database::lookup` fallback.
    pub fn publish(&self) {
        for shard in &self.inner.shards {
            shard.publish();
        }
        self.inner.coordinator.publish();
    }

    /// Checkpoint every shard and the coordinator. Fails if any engine
    /// refuses (open transactions, prepared window, crashed).
    pub fn checkpoint_all(&self) -> SqlResult<()> {
        for shard in &self.inner.shards {
            shard.checkpoint()?;
        }
        self.inner.coordinator.checkpoint()
    }

    /// Cross-shard transactions committed through the full 2PC protocol.
    pub fn cross_shard_commits(&self) -> u64 {
        self.inner.cross_shard_commits.load(Ordering::Relaxed)
    }

    /// Transactions that touched one shard and skipped the protocol.
    pub fn single_shard_commits(&self) -> u64 {
        self.inner.single_shard_commits.load(Ordering::Relaxed)
    }

    /// Run `body` as one atomic transaction across however many shards
    /// it touches. Statements route by key through the [`CrossShardTxn`]
    /// handle; a shard's transaction is begun lazily on first touch.
    /// One participant commits plainly; two or more go through
    /// prepare → decision → notify. On any error the transaction is
    /// aborted everywhere it *can* be — a dead participant is left for
    /// presumed-abort recovery, and a coordinator that crashed while
    /// logging the decision leaves the participants prepared (in-doubt)
    /// because the decision may have landed: only recovery against the
    /// actual decision log can tell.
    pub fn transact<T>(
        &self,
        body: impl FnOnce(&mut CrossShardTxn<'_>) -> SqlResult<T>,
    ) -> SqlResult<T> {
        let mut txn = CrossShardTxn {
            sdb: self,
            conns: (0..self.inner.shards.len()).map(|_| None).collect(),
        };
        let value = match body(&mut txn) {
            Ok(v) => v,
            Err(e) => {
                // Nothing is prepared yet: plain rollback everywhere.
                for conn in txn.conns.iter().flatten() {
                    conn.rollback_if_open();
                }
                return Err(e);
            }
        };
        let participants: Vec<&Connection> = txn.conns.iter().flatten().collect();
        match participants.len() {
            0 => Ok(value),
            1 => {
                participants[0].execute("COMMIT", &[])?;
                self.inner
                    .single_shard_commits
                    .fetch_add(1, Ordering::Relaxed);
                Ok(value)
            }
            _ => {
                self.commit_two_phase(&participants)?;
                self.inner
                    .cross_shard_commits
                    .fetch_add(1, Ordering::Relaxed);
                Ok(value)
            }
        }
    }

    /// The 2PC driver for `transact`. Participants all have open
    /// transactions; on return they are all terminated, detached
    /// in-doubt, or dead.
    fn commit_two_phase(&self, participants: &[&Connection]) -> SqlResult<()> {
        let gid = self.inner.next_gid.fetch_add(1, Ordering::Relaxed);

        // Phase 1: collect yes-votes. First veto aborts every live
        // participant — prepared ones via phase-2 abort, unprepared ones
        // via plain rollback; a dead one is left for presumed-abort
        // recovery (no decision row will ever exist for this gid).
        for (i, conn) in participants.iter().enumerate() {
            if let Err(e) = conn.prepare_transaction(gid) {
                for peer in &participants[..i] {
                    let _ = peer.abort_prepared();
                }
                for peer in &participants[i..] {
                    peer.rollback_if_open();
                }
                return Err(e);
            }
        }

        // Decision point: the INSERT's WAL commit is the moment the
        // global transaction commits.
        let decided = self.inner.coordinator.connect().execute(
            "INSERT INTO TWO_PC_DECISIONS VALUES (?, 'commit')",
            &[Value::Int(gid as i64)],
        );
        match decided {
            Ok(_) => {}
            Err(SqlError::Crashed(_)) => {
                // The coordinator died *while logging the decision* — the
                // row may or may not be durable, so neither committing nor
                // aborting here is safe. Leave every participant prepared:
                // dropping the connections detaches (never aborts) them,
                // and recovery resolves against whatever the decision log
                // actually holds.
                return Err(SqlError::Crashed(
                    "2PC coordinator crashed at the decision point; participants left in doubt"
                        .into(),
                ));
            }
            Err(e) => {
                // The decision never reached the log (e.g. transient):
                // presumed abort, told to everyone still alive.
                for peer in participants {
                    let _ = peer.abort_prepared();
                }
                return Err(e);
            }
        }

        // Phase 2: notify. A participant that died in the window stays
        // in-doubt on its own log; recovery finds the decision row and
        // finishes the commit — the global transaction is already
        // committed either way, so a dead shard is not an error here.
        let mut failure = None;
        for conn in participants {
            match conn.commit_prepared() {
                Ok(()) | Err(SqlError::Crashed(_)) => {}
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// The routing handle `ShardedDatabase::transact` passes to its body:
/// statements route by key, and each shard's transaction is begun
/// lazily the first time a key lands on it.
pub struct CrossShardTxn<'a> {
    sdb: &'a ShardedDatabase,
    conns: Vec<Option<Connection>>,
}

impl CrossShardTxn<'_> {
    /// The shard the given key routes to.
    pub fn shard_for(&self, key: &str) -> usize {
        self.sdb.shard_for(key)
    }

    fn conn_for_shard(&mut self, shard: usize) -> SqlResult<&Connection> {
        if self.conns[shard].is_none() {
            let conn = self.sdb.inner.shards[shard].connect();
            conn.execute("BEGIN", &[])?;
            self.conns[shard] = Some(conn);
        }
        Ok(self.conns[shard].as_ref().expect("just installed"))
    }

    /// Execute a statement on the shard the key routes to.
    pub fn execute(
        &mut self,
        key: &str,
        sql: &str,
        params: &[Value],
    ) -> SqlResult<StatementResult> {
        let shard = self.shard_for(key);
        self.execute_on(shard, sql, params)
    }

    /// Execute a statement on an explicit shard (for callers that
    /// already resolved routing).
    pub fn execute_on(
        &mut self,
        shard: usize,
        sql: &str,
        params: &[Value],
    ) -> SqlResult<StatementResult> {
        self.conn_for_shard(shard)?.execute(sql, params)
    }

    /// Query the shard the key routes to (inside the transaction, so
    /// reads see the transaction's own writes).
    pub fn query(
        &mut self,
        key: &str,
        sql: &str,
        params: &[Value],
    ) -> SqlResult<crate::QueryResult> {
        let shard = self.shard_for(key);
        self.conn_for_shard(shard)?.query(sql, params)
    }
}

/// Consult the coordinator's decision table for an in-doubt transaction,
/// with seeded exponential backoff across transient failures. A decision
/// row means commit; a clean "no row" means presumed abort; a coordinator
/// that stays unreachable is a hard error — recovery must not guess.
fn decide_with_retry(coordinator: &Database, seed: u64, txn: &InDoubtTxn) -> SqlResult<bool> {
    let conn = coordinator.connect();
    let mut rng = SplitMix64::new(seed ^ txn.gid.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut backoff: u64 = 1;
    let mut last_err = None;
    for attempt in 0..IN_DOUBT_RETRY_ATTEMPTS {
        match conn.query(
            "SELECT Decision FROM TWO_PC_DECISIONS WHERE Gid = ?",
            &[Value::Int(txn.gid as i64)],
        ) {
            Ok(rs) => return Ok(!rs.rows.is_empty()),
            Err(e) if e.class() == "transient" && attempt + 1 < IN_DOUBT_RETRY_ATTEMPTS => {
                // Deterministic jittered backoff on the coordinator's
                // virtual clock (shared with its fault injector, so the
                // schedule replays identically).
                let wait = backoff + rng.next_below(backoff + 1);
                if let Some(inj) = coordinator.fault_injector() {
                    inj.advance_ticks(wait);
                }
                coordinator.note_retry();
                backoff = backoff.saturating_mul(2);
                last_err = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        SqlError::Connection("2PC decision log unreachable during in-doubt resolution".into())
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemLogStore;

    fn mem_stores(n: usize) -> (Vec<Arc<dyn LogStore>>, Arc<dyn LogStore>) {
        let stores: Vec<Arc<dyn LogStore>> = (0..n)
            .map(|_| Arc::new(MemLogStore::new()) as Arc<dyn LogStore>)
            .collect();
        (stores, Arc::new(MemLogStore::new()))
    }

    fn fresh(n: usize) -> (ShardedDatabase, Vec<Arc<dyn LogStore>>, Arc<dyn LogStore>) {
        let (stores, coord) = mem_stores(n);
        let sdb = ShardedDatabase::recover("s", &stores, Arc::clone(&coord), 7).unwrap();
        for shard in sdb.shards() {
            shard
                .connect()
                .execute("CREATE TABLE KV (K TEXT PRIMARY KEY, V INT)", &[])
                .unwrap();
        }
        (sdb, stores, coord)
    }

    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        let keys: Vec<String> = (0..64).map(|i| format!("key-{i}")).collect();
        let a: Vec<usize> = keys.iter().map(|k| shard_of(k, 4)).collect();
        let b: Vec<usize> = keys.iter().map(|k| shard_of(k, 4)).collect();
        assert_eq!(a, b);
        for s in 0..4 {
            assert!(a.contains(&s), "no key routed to shard {s}");
        }
        assert!(keys.iter().all(|k| shard_of(k, 1) == 0));
    }

    #[test]
    fn cross_shard_commit_lands_on_every_shard() {
        let (sdb, _, _) = fresh(4);
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        sdb.transact(|t| {
            for (i, k) in keys.iter().enumerate() {
                t.execute(
                    k,
                    "INSERT INTO KV VALUES (?, ?)",
                    &[Value::text(k.clone()), Value::Int(i as i64)],
                )?;
            }
            Ok(())
        })
        .unwrap();
        let total: usize = sdb
            .shards()
            .iter()
            .map(|s| s.table_len("KV").unwrap())
            .sum();
        assert_eq!(total, keys.len());
        assert!(sdb.cross_shard_commits() >= 1);
        // The commit decision is on the coordinator's durable record.
        let rs = sdb
            .coordinator()
            .connect()
            .query("SELECT Gid FROM TWO_PC_DECISIONS", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn single_shard_transactions_skip_the_protocol() {
        let (sdb, _, _) = fresh(4);
        sdb.transact(|t| {
            t.execute("solo", "INSERT INTO KV VALUES ('solo', 1)", &[])?;
            Ok(())
        })
        .unwrap();
        assert_eq!(sdb.single_shard_commits(), 1);
        assert_eq!(sdb.cross_shard_commits(), 0);
        let rs = sdb
            .coordinator()
            .connect()
            .query("SELECT Gid FROM TWO_PC_DECISIONS", &[])
            .unwrap();
        assert!(rs.rows.is_empty(), "fast path must not log a decision");
    }

    #[test]
    fn body_error_rolls_back_every_touched_shard() {
        let (sdb, _, _) = fresh(4);
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        let err = sdb
            .transact(|t| -> SqlResult<()> {
                for k in &keys {
                    t.execute(k, "INSERT INTO KV VALUES (?, 0)", &[Value::text(k.clone())])?;
                }
                Err(SqlError::Runtime("business rule veto".into()))
            })
            .unwrap_err();
        assert!(err.to_string().contains("veto"));
        for shard in sdb.shards() {
            assert_eq!(shard.table_len("KV").unwrap(), 0, "abort left residue");
        }
    }

    #[test]
    fn in_doubt_transaction_commits_from_decision_log_after_crash() {
        use crate::fault::{FaultPlan, PrepareCrash};
        let (sdb, stores, coord) = fresh(2);
        // Find two keys on different shards.
        let k0 = (0..64)
            .map(|i| format!("a{i}"))
            .find(|k| sdb.shard_for(k) == 0)
            .unwrap();
        let k1 = (0..64)
            .map(|i| format!("b{i}"))
            .find(|k| sdb.shard_for(k) == 1)
            .unwrap();
        // Shard 1's participant dies right after acknowledging its vote
        // (the in-doubt window); the coordinator still logs commit and
        // shard 0 commits normally.
        sdb.shard(1).set_fault_plan(Some(
            FaultPlan::new(3).crash_at_prepare(0, PrepareCrash::AfterAck),
        ));
        sdb.transact(|t| {
            t.execute(
                &k0,
                "INSERT INTO KV VALUES (?, 10)",
                &[Value::text(k0.clone())],
            )?;
            t.execute(
                &k1,
                "INSERT INTO KV VALUES (?, 20)",
                &[Value::text(k1.clone())],
            )?;
            Ok(())
        })
        .unwrap();
        assert_eq!(sdb.shard(0).table_len("KV").unwrap(), 1);
        // Shard 1 is dead with the row invisible; recovery must finish
        // the commit from the decision log.
        let recovered = ShardedDatabase::recover("s", &stores, coord, 7).unwrap();
        assert_eq!(recovered.shard(1).table_len("KV").unwrap(), 1);
        assert_eq!(recovered.shard(1).stats().in_doubt_commits, 1);
        assert_eq!(recovered.shard(0).table_len("KV").unwrap(), 1);
    }

    #[test]
    fn unacknowledged_prepare_presumes_abort_everywhere() {
        use crate::fault::{FaultPlan, PrepareCrash};
        let (sdb, stores, coord) = fresh(2);
        let k0 = (0..64)
            .map(|i| format!("a{i}"))
            .find(|k| sdb.shard_for(k) == 0)
            .unwrap();
        let k1 = (0..64)
            .map(|i| format!("b{i}"))
            .find(|k| sdb.shard_for(k) == 1)
            .unwrap();
        // The vote lands durably but is never acknowledged: the driver
        // sees a dead participant, aborts the survivor, and never logs a
        // decision — recovery must abort the in-doubt transaction.
        sdb.shard(1).set_fault_plan(Some(
            FaultPlan::new(3).crash_at_prepare(0, PrepareCrash::AfterWrite),
        ));
        let err = sdb
            .transact(|t| {
                t.execute(
                    &k0,
                    "INSERT INTO KV VALUES (?, 10)",
                    &[Value::text(k0.clone())],
                )?;
                t.execute(
                    &k1,
                    "INSERT INTO KV VALUES (?, 20)",
                    &[Value::text(k1.clone())],
                )?;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.class(), "crashed");
        let recovered = ShardedDatabase::recover("s", &stores, coord, 7).unwrap();
        for shard in recovered.shards() {
            assert_eq!(shard.table_len("KV").unwrap(), 0, "abort left residue");
        }
        assert_eq!(recovered.shard(1).stats().in_doubt_aborts, 1);
    }

    #[test]
    fn gids_never_collide_across_restarts() {
        let (sdb, stores, coord) = fresh(2);
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        sdb.transact(|t| {
            for k in &keys {
                t.execute(k, "INSERT INTO KV VALUES (?, 1)", &[Value::text(k.clone())])?;
            }
            Ok(())
        })
        .unwrap();
        let recovered = ShardedDatabase::recover("s", &stores, Arc::clone(&coord), 7).unwrap();
        recovered
            .transact(|t| {
                for k in &keys {
                    t.execute(
                        k,
                        "UPDATE KV SET V = 2 WHERE K = ?",
                        &[Value::text(k.clone())],
                    )?;
                }
                Ok(())
            })
            .unwrap();
        let rs = recovered
            .coordinator()
            .connect()
            .query("SELECT Gid FROM TWO_PC_DECISIONS", &[])
            .unwrap();
        let mut gids: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(g) => *g,
                other => panic!("non-int gid {other:?}"),
            })
            .collect();
        gids.sort_unstable();
        gids.dedup();
        assert_eq!(gids.len(), 2, "gid reused across restart");
    }
}
