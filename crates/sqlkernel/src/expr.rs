//! Scalar expression evaluation with SQL three-valued logic.
//!
//! The evaluator is shared by the `WHERE`/`HAVING` filters, projection
//! lists, `UPDATE` assignments and `INSERT` value lists. Rows are addressed
//! through a [`RowSchema`] mapping qualified column names to positions;
//! aggregates are computed by the executor and injected via
//! [`EvalCtx::aggregates`]. Subqueries must be uncorrelated — they are
//! evaluated against the catalog without a row context.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, SelectStmt, UnOp};
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::types::Value;

/// Names visible to column references of one row stream.
#[derive(Debug, Clone, Default)]
pub struct RowSchema {
    cols: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Empty schema (no columns resolvable).
    pub fn empty() -> RowSchema {
        RowSchema::default()
    }

    /// Build from `(binding, column)` pairs.
    pub fn new(cols: Vec<(Option<String>, String)>) -> RowSchema {
        RowSchema { cols }
    }

    /// Append a column.
    pub fn push(&mut self, binding: Option<String>, name: String) {
        self.cols.push((binding, name));
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// All `(binding, name)` pairs.
    pub fn columns(&self) -> &[(Option<String>, String)] {
        &self.cols
    }

    /// Positions of all columns bound under `binding` (for `alias.*`).
    pub fn binding_positions(&self, binding: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, (b, _))| {
                b.as_deref()
                    .is_some_and(|x| x.eq_ignore_ascii_case(binding))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Resolve `table.name` or bare `name`; ambiguous bare names error.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> SqlResult<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (b, n))| {
                n.eq_ignore_ascii_case(name)
                    && match table {
                        Some(t) => b.as_deref().is_some_and(|x| x.eq_ignore_ascii_case(t)),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(SqlError::NotFound(format!(
                "column '{}{}'",
                table.map(|t| format!("{t}.")).unwrap_or_default(),
                name
            ))),
            1 => Ok(matches[0]),
            _ => Err(SqlError::Semantic(format!("ambiguous column '{name}'"))),
        }
    }
}

/// Everything an expression may need at evaluation time.
pub struct EvalCtx<'a> {
    /// The catalog, for subqueries and `NEXTVAL`.
    pub catalog: &'a Catalog,
    /// `?` host parameters, positional.
    pub params: &'a [Value],
    /// `:name` parameters (stored-procedure formals).
    pub named_params: &'a HashMap<String, Value>,
    /// Current row, if any.
    pub row: Option<(&'a RowSchema, &'a [Value])>,
    /// Pre-computed aggregate values, keyed by [`aggregate_key`].
    pub aggregates: Option<&'a HashMap<String, Value>>,
}

impl<'a> EvalCtx<'a> {
    /// Context with no row — constants, DDL defaults, procedure args.
    pub fn constant(catalog: &'a Catalog, params: &'a [Value]) -> EvalCtx<'a> {
        static EMPTY: std::sync::OnceLock<HashMap<String, Value>> = std::sync::OnceLock::new();
        EvalCtx {
            catalog,
            params,
            named_params: EMPTY.get_or_init(HashMap::new),
            row: None,
            aggregates: None,
        }
    }

    /// Same context focused on a different row.
    pub fn with_row(&self, schema: &'a RowSchema, row: &'a [Value]) -> EvalCtx<'a> {
        EvalCtx {
            catalog: self.catalog,
            params: self.params,
            named_params: self.named_params,
            row: Some((schema, row)),
            aggregates: self.aggregates,
        }
    }
}

/// Is `name` (upper-cased) an aggregate function?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// Canonical key identifying one aggregate call site within a statement.
pub fn aggregate_key(expr: &Expr) -> String {
    format!("{expr:?}")
}

/// Evaluate `expr` to a [`Value`].
pub fn eval(expr: &Expr, ctx: &EvalCtx<'_>) -> SqlResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let (schema, row) = ctx.row.ok_or_else(|| {
                SqlError::Semantic(format!("column '{name}' referenced outside a row context"))
            })?;
            let i = schema.resolve(table.as_deref(), name)?;
            Ok(row[i].clone())
        }
        Expr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Binding(format!("missing host parameter #{}", i + 1))),
        Expr::NamedParam(n) => ctx
            .named_params
            .get(&n.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Binding(format!("unbound named parameter ':{n}'"))),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            apply_unary_op(*op, v)
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, ctx),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval(expr, ctx)?;
            let mut values = Vec::with_capacity(list.len());
            for e in list {
                values.push(eval(e, ctx)?);
            }
            Ok(apply_negation(in_membership(&needle, &values), *negated))
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let needle = eval(expr, ctx)?;
            let values = subquery_column(subquery, ctx)?;
            Ok(apply_negation(in_membership(&needle, &values), *negated))
        }
        Expr::Exists { subquery, negated } => {
            let rs = run_subquery(subquery, ctx)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::ScalarSubquery(subquery) => {
            let rs = run_subquery(subquery, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::Semantic(
                    "scalar subquery must return exactly one column".into(),
                ));
            }
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(SqlError::Runtime(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            let ge = compare(&v, &lo).map(|o| o != std::cmp::Ordering::Less);
            let le = compare(&v, &hi).map(|o| o != std::cmp::Ordering::Greater);
            let r = three_and(ge, le);
            Ok(apply_negation(r, *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(SqlError::Semantic(format!(
                    "LIKE requires text operands, got {a:?} and {b:?}"
                ))),
            }
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            match operand {
                Some(op) => {
                    let subject = eval(op, ctx)?;
                    for (when, then) in branches {
                        let w = eval(when, ctx)?;
                        if !subject.is_null() && !w.is_null() && subject == w {
                            return eval(then, ctx);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if eval(when, ctx)? == Value::Bool(true) {
                            return eval(then, ctx);
                        }
                    }
                }
            }
            match else_branch {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Function { name, .. } if is_aggregate_name(name) => {
            let aggs = ctx.aggregates.ok_or_else(|| {
                SqlError::Semantic(format!("aggregate {name}() not allowed here"))
            })?;
            aggs.get(&aggregate_key(expr)).cloned().ok_or_else(|| {
                SqlError::Semantic(format!("aggregate {name}() was not pre-computed"))
            })
        }
        Expr::Function { name, args, .. } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, ctx)?);
            }
            scalar_function(name, &vals, ctx.catalog)
        }
    }
}

/// Evaluate a predicate for filtering: NULL and FALSE both drop the row.
pub fn eval_predicate(expr: &Expr, ctx: &EvalCtx<'_>) -> SqlResult<bool> {
    match eval(expr, ctx)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(SqlError::Semantic(format!(
            "predicate evaluated to non-boolean {other:?}"
        ))),
    }
}

fn run_subquery(stmt: &SelectStmt, ctx: &EvalCtx<'_>) -> SqlResult<crate::db::QueryResult> {
    // Subqueries are uncorrelated: no outer row is passed down.
    crate::exec::select::run_select(ctx.catalog, stmt, ctx.params, ctx.named_params)
}

fn subquery_column(stmt: &SelectStmt, ctx: &EvalCtx<'_>) -> SqlResult<Vec<Value>> {
    let rs = run_subquery(stmt, ctx)?;
    if rs.columns.len() != 1 {
        return Err(SqlError::Semantic(
            "IN subquery must return exactly one column".into(),
        ));
    }
    Ok(rs.rows.into_iter().map(|mut r| r.pop().unwrap()).collect())
}

/// SQL `IN` membership with NULL semantics. `None` encodes UNKNOWN.
pub(crate) fn in_membership(needle: &Value, haystack: &[Value]) -> Option<bool> {
    if haystack.is_empty() {
        return Some(false);
    }
    if needle.is_null() {
        return None;
    }
    let mut saw_null = false;
    for v in haystack {
        if v.is_null() {
            saw_null = true;
        } else if v == needle {
            return Some(true);
        }
    }
    if saw_null {
        None
    } else {
        Some(false)
    }
}

pub(crate) fn apply_negation(r: Option<bool>, negated: bool) -> Value {
    match r {
        None => Value::Null,
        Some(b) => Value::Bool(b != negated),
    }
}

pub(crate) fn three_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    a.sql_cmp(b)
}

fn eval_binary(left: &Expr, op: BinOp, right: &Expr, ctx: &EvalCtx<'_>) -> SqlResult<Value> {
    // AND/OR get short-circuit + three-valued handling.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, ctx)?;
        let l3 = value_to_three(&l, "AND/OR")?;
        // Short-circuit on determined outcomes.
        match (op, l3) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(right, ctx)?;
        let r3 = value_to_three(&r, "AND/OR")?;
        let out = match op {
            BinOp::And => three_and(l3, r3),
            _ => match (l3, r3) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        };
        return Ok(match out {
            None => Value::Null,
            Some(b) => Value::Bool(b),
        });
    }

    let l = eval(left, ctx)?;
    let r = eval(right, ctx)?;
    apply_binary_op(op, &l, &r)
}

/// Apply a unary operator to an already-computed operand. Shared by the
/// interpreted evaluator and the bound (compiled) one.
pub(crate) fn apply_unary_op(op: UnOp, v: Value) -> SqlResult<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Semantic(format!("cannot negate {other:?}"))),
        },
        UnOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(SqlError::Semantic(format!("NOT applied to {other:?}"))),
        },
    }
}

/// Apply a non-logical binary operator to two already-computed operands.
/// Shared by the interpreted evaluator and the bound (compiled) one.
pub(crate) fn apply_binary_op(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let cmp = compare(l, r);
            let out = cmp.map(|o| match op {
                BinOp::Eq => o == std::cmp::Ordering::Equal,
                BinOp::NotEq => o != std::cmp::Ordering::Equal,
                BinOp::Lt => o == std::cmp::Ordering::Less,
                BinOp::LtEq => o != std::cmp::Ordering::Greater,
                BinOp::Gt => o == std::cmp::Ordering::Greater,
                BinOp::GtEq => o != std::cmp::Ordering::Less,
                _ => unreachable!(),
            });
            Ok(match out {
                None => Value::Null,
                Some(b) => Value::Bool(b),
            })
        }
        BinOp::Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => Ok(Value::Text(format!("{}{}", l.render(), r.render()))),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arithmetic(op, l, r),
        BinOp::And | BinOp::Or => unreachable!("logical ops are handled by the caller"),
    }
}

pub(crate) fn value_to_three(v: &Value, what: &str) -> SqlResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(SqlError::Semantic(format!(
            "{what} operand must be boolean, got {other:?}"
        ))),
    }
}

pub(crate) fn arithmetic(op: BinOp, l: &Value, r: &Value) -> SqlResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(SqlError::Runtime("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(SqlError::Runtime("division by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| SqlError::Runtime("integer overflow".into()))
        }
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| SqlError::Semantic(format!("arithmetic on non-numeric {l:?}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| SqlError::Semantic(format!("arithmetic on non-numeric {r:?}")))?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::Runtime("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(SqlError::Runtime("division by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

/// `LIKE` pattern matching: `%` = any run, `_` = any single char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=s.len()).any(|k| rec(&s[k..], rest))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

pub(crate) fn scalar_function(name: &str, args: &[Value], catalog: &Catalog) -> SqlResult<Value> {
    let arity = |n: usize| -> SqlResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(SqlError::Semantic(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "UPPER" => {
            arity(1)?;
            text_fn(&args[0], |s| s.to_uppercase())
        }
        "LOWER" => {
            arity(1)?;
            text_fn(&args[0], |s| s.to_lowercase())
        }
        "TRIM" => {
            arity(1)?;
            text_fn(&args[0], |s| s.trim().to_string())
        }
        "LENGTH" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(SqlError::Semantic(format!("LENGTH of {other:?}"))),
            }
        }
        "ABS" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => {
                    Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                        SqlError::Runtime("integer overflow in ABS".into())
                    })?))
                }
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(SqlError::Semantic(format!("ABS of {other:?}"))),
            }
        }
        "FLOOR" | "CEIL" | "CEILING" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(if name == "FLOOR" {
                    f.floor() as i64
                } else {
                    f.ceil() as i64
                })),
                other => Err(SqlError::Semantic(format!("{name} of {other:?}"))),
            }
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(SqlError::Semantic("ROUND expects 1 or 2 arguments".into()));
            }
            let digits = if args.len() == 2 {
                args[1]
                    .as_i64()
                    .ok_or_else(|| SqlError::Semantic("ROUND digits must be integer".into()))?
            } else {
                0
            };
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => {
                    let m = 10f64.powi(digits as i32);
                    let r = (f * m).round() / m;
                    if args.len() == 1 {
                        Ok(Value::Int(r as i64))
                    } else {
                        Ok(Value::Float(r))
                    }
                }
                other => Err(SqlError::Semantic(format!("ROUND of {other:?}"))),
            }
        }
        "COALESCE" | "IFNULL" => {
            if args.is_empty() {
                return Err(SqlError::Semantic("COALESCE expects arguments".into()));
            }
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null))
        }
        "NULLIF" => {
            arity(2)?;
            if !args[0].is_null() && !args[1].is_null() && args[0] == args[1] {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() < 2 || args.len() > 3 {
                return Err(SqlError::Semantic("SUBSTR expects 2 or 3 arguments".into()));
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = args[0]
                .as_str()
                .ok_or_else(|| SqlError::Semantic("SUBSTR of non-text".into()))?;
            let start = args[1]
                .as_i64()
                .ok_or_else(|| SqlError::Semantic("SUBSTR start must be integer".into()))?;
            let chars: Vec<char> = s.chars().collect();
            let begin = (start.max(1) - 1) as usize;
            let len = if args.len() == 3 {
                args[2]
                    .as_i64()
                    .ok_or_else(|| SqlError::Semantic("SUBSTR length must be integer".into()))?
                    .max(0) as usize
            } else {
                chars.len().saturating_sub(begin)
            };
            let out: String = chars.iter().skip(begin).take(len).collect();
            Ok(Value::Text(out))
        }
        "REPLACE" => {
            arity(3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            match (&args[0], &args[1], &args[2]) {
                (Value::Text(s), Value::Text(from), Value::Text(to)) => {
                    Ok(Value::Text(s.replace(from.as_str(), to)))
                }
                _ => Err(SqlError::Semantic("REPLACE requires text arguments".into())),
            }
        }
        "CONCAT" => {
            let mut out = String::new();
            for v in args {
                if v.is_null() {
                    continue; // CONCAT skips NULLs, unlike ||
                }
                out.push_str(&v.render());
            }
            Ok(Value::Text(out))
        }
        "MOD" => {
            arity(2)?;
            arithmetic(BinOp::Mod, &args[0], &args[1])
        }
        "NEXTVAL" => {
            arity(1)?;
            let seq_name = args[0]
                .as_str()
                .ok_or_else(|| SqlError::Semantic("NEXTVAL expects a sequence name".into()))?;
            let seq = catalog.sequence(seq_name)?;
            Ok(Value::Int(seq.next_value()))
        }
        other => Err(SqlError::NotFound(format!("function '{other}'"))),
    }
}

fn text_fn(v: &Value, f: impl Fn(&str) -> String) -> SqlResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Text(s) => Ok(Value::Text(f(s))),
        other => Err(SqlError::Semantic(format!(
            "string function applied to {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn eval_const(src: &str) -> SqlResult<Value> {
        let catalog = Catalog::new();
        let e = parse_expression(src)?;
        let ctx = EvalCtx::constant(&catalog, &[]);
        eval(&e, &ctx)
    }

    fn v(src: &str) -> Value {
        eval_const(src).unwrap()
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(v("1 + 2 * 3"), Value::Int(7));
        assert_eq!(v("7 / 2"), Value::Int(3));
        assert_eq!(v("7.0 / 2"), Value::Float(3.5));
        assert_eq!(v("7 % 3"), Value::Int(1));
        assert_eq!(v("-(3 - 5)"), Value::Int(2));
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(eval_const("1 / 0").unwrap_err().class(), "runtime");
        assert_eq!(eval_const("1.0 / 0.0").unwrap_err().class(), "runtime");
        assert_eq!(eval_const("1 % 0").unwrap_err().class(), "runtime");
    }

    #[test]
    fn integer_overflow_detected() {
        assert_eq!(
            eval_const("9223372036854775807 + 1").unwrap_err().class(),
            "runtime"
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(v("1 + NULL"), Value::Null);
        assert_eq!(v("NULL * 0"), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(v("TRUE AND NULL"), Value::Null);
        assert_eq!(v("FALSE AND NULL"), Value::Bool(false));
        assert_eq!(v("TRUE OR NULL"), Value::Bool(true));
        assert_eq!(v("FALSE OR NULL"), Value::Null);
        assert_eq!(v("NOT NULL"), Value::Null);
    }

    #[test]
    fn comparisons_with_null_are_unknown() {
        assert_eq!(v("NULL = NULL"), Value::Null);
        assert_eq!(v("1 < NULL"), Value::Null);
        assert_eq!(v("NULL IS NULL"), Value::Bool(true));
        assert_eq!(v("1 IS NOT NULL"), Value::Bool(true));
    }

    #[test]
    fn in_list_null_semantics() {
        assert_eq!(v("1 IN (1, 2)"), Value::Bool(true));
        assert_eq!(v("3 IN (1, 2)"), Value::Bool(false));
        assert_eq!(v("3 IN (1, NULL)"), Value::Null);
        assert_eq!(v("NULL IN (1, 2)"), Value::Null);
        assert_eq!(v("3 NOT IN (1, NULL)"), Value::Null);
        assert_eq!(v("1 NOT IN (2, 3)"), Value::Bool(true));
    }

    #[test]
    fn between_and_like() {
        assert_eq!(v("5 BETWEEN 1 AND 10"), Value::Bool(true));
        assert_eq!(v("11 BETWEEN 1 AND 10"), Value::Bool(false));
        assert_eq!(v("5 NOT BETWEEN 1 AND 10"), Value::Bool(false));
        assert_eq!(v("NULL BETWEEN 1 AND 10"), Value::Null);
        assert_eq!(v("'widget' LIKE 'w%'"), Value::Bool(true));
        assert_eq!(v("'widget' LIKE 'w_dget'"), Value::Bool(true));
        assert_eq!(v("'widget' NOT LIKE '%x%'"), Value::Bool(true));
        assert_eq!(v("NULL LIKE 'a'"), Value::Null);
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%c"));
        assert!(like_match("a%c", "a%c")); // literal interpretation of middle % also matches
        assert!(!like_match("abc", "ab"));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            v("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END"),
            Value::text("b")
        );
        assert_eq!(
            v("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"),
            Value::text("two")
        );
        assert_eq!(v("CASE 9 WHEN 1 THEN 'one' END"), Value::Null);
    }

    #[test]
    fn concat_operator_and_function() {
        assert_eq!(v("'a' || 'b' || 1"), Value::text("ab1"));
        assert_eq!(v("'a' || NULL"), Value::Null);
        assert_eq!(v("CONCAT('a', NULL, 'b')"), Value::text("ab"));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(v("UPPER('abc')"), Value::text("ABC"));
        assert_eq!(v("LOWER('ABC')"), Value::text("abc"));
        assert_eq!(v("LENGTH('héllo')"), Value::Int(5));
        assert_eq!(v("ABS(-4)"), Value::Int(4));
        assert_eq!(v("ABS(-4.5)"), Value::Float(4.5));
        assert_eq!(v("COALESCE(NULL, NULL, 3)"), Value::Int(3));
        assert_eq!(v("NULLIF(1, 1)"), Value::Null);
        assert_eq!(v("NULLIF(1, 2)"), Value::Int(1));
        assert_eq!(v("SUBSTR('workflow', 5)"), Value::text("flow"));
        assert_eq!(v("SUBSTR('workflow', 1, 4)"), Value::text("work"));
        assert_eq!(v("REPLACE('a-b-c', '-', '+')"), Value::text("a+b+c"));
        assert_eq!(v("TRIM('  x ')"), Value::text("x"));
        assert_eq!(v("ROUND(2.6)"), Value::Int(3));
        assert_eq!(v("ROUND(2.345, 2)"), Value::Float(2.35));
        assert_eq!(v("FLOOR(2.9)"), Value::Int(2));
        assert_eq!(v("CEIL(2.1)"), Value::Int(3));
        assert_eq!(v("MOD(10, 3)"), Value::Int(1));
    }

    #[test]
    fn unknown_function_errors() {
        assert_eq!(
            eval_const("FROBNICATE(1)").unwrap_err().class(),
            "not_found"
        );
    }

    #[test]
    fn wrong_arity_errors() {
        assert_eq!(eval_const("UPPER()").unwrap_err().class(), "semantic");
        assert_eq!(
            eval_const("UPPER('a', 'b')").unwrap_err().class(),
            "semantic"
        );
    }

    #[test]
    fn nextval_advances_sequence() {
        let mut catalog = Catalog::new();
        catalog
            .add_sequence(crate::catalog::Sequence::new("s", 7, 1))
            .unwrap();
        let e = parse_expression("NEXTVAL('s')").unwrap();
        let ctx = EvalCtx::constant(&catalog, &[]);
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Int(7));
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Int(8));
    }

    #[test]
    fn host_params_bind_positionally() {
        let catalog = Catalog::new();
        let e = parse_expression("? + ?").unwrap();
        let params = vec![Value::Int(2), Value::Int(40)];
        let ctx = EvalCtx::constant(&catalog, &params);
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Int(42));
    }

    #[test]
    fn missing_param_is_binding_error() {
        let catalog = Catalog::new();
        let e = parse_expression("?").unwrap();
        let ctx = EvalCtx::constant(&catalog, &[]);
        assert_eq!(eval(&e, &ctx).unwrap_err().class(), "binding");
    }

    #[test]
    fn named_params_resolve_case_insensitively() {
        let catalog = Catalog::new();
        let e = parse_expression(":Item").unwrap();
        let mut named = HashMap::new();
        named.insert("item".to_string(), Value::text("widget"));
        let ctx = EvalCtx {
            catalog: &catalog,
            params: &[],
            named_params: &named,
            row: None,
            aggregates: None,
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::text("widget"));
    }

    #[test]
    fn row_schema_resolution() {
        let schema = RowSchema::new(vec![
            (Some("o".into()), "id".into()),
            (Some("i".into()), "id".into()),
            (Some("i".into()), "name".into()),
        ]);
        assert_eq!(schema.resolve(Some("o"), "id").unwrap(), 0);
        assert_eq!(schema.resolve(Some("I"), "ID").unwrap(), 1);
        assert_eq!(schema.resolve(None, "name").unwrap(), 2);
        assert_eq!(schema.resolve(None, "id").unwrap_err().class(), "semantic");
        assert_eq!(
            schema.resolve(None, "zzz").unwrap_err().class(),
            "not_found"
        );
        assert_eq!(schema.binding_positions("i"), vec![1, 2]);
    }

    #[test]
    fn column_reference_against_row() {
        let catalog = Catalog::new();
        let schema = RowSchema::new(vec![(Some("t".into()), "a".into())]);
        let row = vec![Value::Int(5)];
        let base = EvalCtx::constant(&catalog, &[]);
        let ctx = base.with_row(&schema, &row);
        let e = parse_expression("t.a * 2").unwrap();
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Int(10));
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        assert_eq!(eval_const("SUM(1)").unwrap_err().class(), "semantic");
    }

    #[test]
    fn predicate_null_is_false() {
        let catalog = Catalog::new();
        let ctx = EvalCtx::constant(&catalog, &[]);
        let e = parse_expression("NULL = 1").unwrap();
        assert!(!eval_predicate(&e, &ctx).unwrap());
        let e = parse_expression("1 + 1").unwrap();
        assert!(eval_predicate(&e, &ctx).is_err());
    }
}
