//! Minimal synchronization primitives with a `parking_lot`-style API.
//!
//! The engine wants infallible `lock()`/`read()`/`write()` calls: a
//! poisoned lock means a panic already unwound mid-statement, and the
//! undo log — not lock poisoning — is the consistency mechanism, so the
//! guards here are poison-transparent. Keeping the shim in-tree also
//! keeps the kernel dependency-free, which matters for hermetic builds.

use std::sync::PoisonError;

/// Mutual exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; many readers may hold one at once.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_survives_poisoned_writer() {
        // A writer that panics while holding the exclusive guard must not
        // wedge later readers or writers: the shim recovers the poison.
        let l = std::sync::Arc::new(RwLock::new(1u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
