//! Minimal synchronization primitives with a `parking_lot`-style API.
//!
//! The engine wants infallible `lock()`/`read()`/`write()` calls: a
//! poisoned lock means a panic already unwound mid-statement, and the
//! undo log — not lock poisoning — is the consistency mechanism, so the
//! guards here are poison-transparent. Keeping the shim in-tree also
//! keeps the kernel dependency-free, which matters for hermetic builds.

use std::sync::PoisonError;

/// Mutual exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; many readers may hold one at once.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

// ---------------------------------------------------------------- TableLock

/// Admission bookkeeping for [`TableLock`].
#[derive(Debug, Default)]
struct TableLockState {
    /// Readers currently admitted (holding or about to take the data lock).
    readers: usize,
    /// Is a writer currently admitted?
    writer: bool,
    /// Writers queued for admission. *Fresh* readers wait behind them
    /// (starvation gate); readers that already hold this lock do not
    /// (recursion safety).
    writers_waiting: usize,
}

thread_local! {
    /// Read-guard hold counts per lock (keyed by the lock's address) for
    /// the calling thread. Lets [`TableLock::read`] distinguish a
    /// recursive re-read — which must bypass the pending-writer gate to
    /// stay deadlock-free — from a fresh reader, which yields to queued
    /// writers. Addresses are stable keys here: an entry exists only
    /// while the thread holds a guard, and a guard pins its lock in
    /// place (the catalog shape lock prevents the table from being
    /// dropped or moved while any statement uses it).
    static READ_HOLDS: std::cell::RefCell<std::collections::HashMap<usize, usize>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// A *reader-preference* reader-writer lock for per-table data.
///
/// `std::sync::RwLock` documents that a thread re-acquiring a read lock
/// it already holds may deadlock when a writer is queued in between —
/// and the query engine does exactly that: a `SELECT` scanning table `t`
/// under a read guard can evaluate a subquery that reads `t` again
/// (self-joins do it too). This lock therefore runs its own admission
/// control — a mutex + condvar — in front of an internal `RwLock` that
/// is never contended in the dangerous way:
///
/// * readers *already holding* a guard on this lock are admitted whenever
///   no writer is **active**, so recursive read acquisition is always
///   safe;
/// * **fresh** readers additionally wait while a writer is *queued* — the
///   pending-writer gate — so a continuous reader stream cannot starve a
///   writer: at most the readers admitted before the writer queued run
///   ahead of it;
/// * a writer is admitted only once `readers == 0`, at which point the
///   internal data lock is free, so its `write()` succeeds immediately.
///
/// Under MVCC the gate window is short by construction: writers hold this
/// lock only for the in-memory apply phase of a statement (snapshot reads
/// carry the long work), so gated readers wait out one apply, not a whole
/// statement.
#[derive(Debug, Default)]
pub struct TableLock<T> {
    state: Mutex<TableLockState>,
    admitted: std::sync::Condvar,
    data: RwLock<T>,
}

impl<T> TableLock<T> {
    /// Wrap `value` in a new table lock.
    pub fn new(value: T) -> TableLock<T> {
        TableLock {
            state: Mutex::new(TableLockState::default()),
            admitted: std::sync::Condvar::new(),
            data: RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Acquire a shared read guard. A thread already holding a read guard
    /// on this lock is re-admitted past *waiting* writers (recursion
    /// safety); a fresh reader yields to them (starvation gate).
    pub fn read(&self) -> TableReadGuard<'_, T> {
        let lock_key = self as *const TableLock<T> as usize;
        let recursive = READ_HOLDS.with(|h| h.borrow().get(&lock_key).copied().unwrap_or(0) > 0);
        let mut state = self.state.lock();
        while state.writer || (!recursive && state.writers_waiting > 0) {
            state = self
                .admitted
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.readers += 1;
        drop(state);
        READ_HOLDS.with(|h| *h.borrow_mut().entry(lock_key).or_insert(0) += 1);
        // No writer is admitted while readers > 0, so this cannot block.
        TableReadGuard {
            lock: self,
            guard: Some(self.data.read()),
        }
    }

    /// Acquire the exclusive write guard, waiting out current readers.
    /// While queued, fresh readers are gated behind this writer.
    pub fn write(&self) -> TableWriteGuard<'_, T> {
        let mut state = self.state.lock();
        state.writers_waiting += 1;
        while state.writer || state.readers > 0 {
            state = self
                .admitted
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.writers_waiting -= 1;
        state.writer = true;
        drop(state);
        // All reader guards released the data lock before decrementing
        // their admission count, so this cannot block either.
        TableWriteGuard {
            lock: self,
            guard: Some(self.data.write()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared guard returned by [`TableLock::read`].
#[derive(Debug)]
pub struct TableReadGuard<'a, T> {
    lock: &'a TableLock<T>,
    guard: Option<RwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for TableReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> Drop for TableReadGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock *before* the admission slot: a writer
        // admitted by the decrement must find the data lock free.
        self.guard.take();
        let lock_key = self.lock as *const TableLock<T> as usize;
        READ_HOLDS.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(n) = h.get_mut(&lock_key) {
                *n -= 1;
                if *n == 0 {
                    h.remove(&lock_key);
                }
            }
        });
        let mut state = self.lock.state.lock();
        state.readers -= 1;
        if state.readers == 0 {
            drop(state);
            self.lock.admitted.notify_all();
        }
    }
}

/// Exclusive guard returned by [`TableLock::write`].
#[derive(Debug)]
pub struct TableWriteGuard<'a, T> {
    lock: &'a TableLock<T>,
    guard: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for TableWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for TableWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for TableWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        let mut state = self.lock.state.lock();
        state.writer = false;
        drop(state);
        self.lock.admitted.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_survives_poisoned_writer() {
        // A writer that panics while holding the exclusive guard must not
        // wedge later readers or writers: the shim recovers the poison.
        let l = std::sync::Arc::new(RwLock::new(1u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn table_lock_read_write_round_trip() {
        let l = TableLock::new(1u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn table_lock_recursive_read_survives_waiting_writer() {
        // The scenario std::sync::RwLock documents as a deadlock: thread A
        // holds a read guard, thread B queues a write, thread A re-acquires
        // a read. Reader preference must admit A's second read anyway.
        let l = std::sync::Arc::new(TableLock::new(0u32));
        let first = l.read();
        let l2 = l.clone();
        let writer = std::thread::spawn(move || {
            *l2.write() += 1;
        });
        // Give the writer time to start waiting.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let second = l.read(); // must not deadlock
        assert_eq!(*first + *second, 0);
        drop(first);
        drop(second);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn table_lock_pending_writer_gates_fresh_readers() {
        // Writer-starvation regression: once a writer queues, a *fresh*
        // reader must not be admitted ahead of it. R1 holds a read guard,
        // the writer queues, R2 then attempts a read — R2 must observe
        // the writer's store, proving it was admitted after the write.
        let l = std::sync::Arc::new(TableLock::new(0u32));
        let r1 = l.read();
        let lw = l.clone();
        let writer = std::thread::spawn(move || {
            *lw.write() = 1;
        });
        // Give the writer time to queue behind r1.
        std::thread::sleep(std::time::Duration::from_millis(40));
        let lr = l.clone();
        let r2 = std::thread::spawn(move || *lr.read());
        // Give r2 time to hit the pending-writer gate.
        std::thread::sleep(std::time::Duration::from_millis(40));
        drop(r1);
        writer.join().unwrap();
        assert_eq!(r2.join().unwrap(), 1, "fresh reader jumped the writer");
    }

    #[test]
    fn table_lock_writer_not_starved_by_reader_stream() {
        // A continuous stream of overlapping readers must not starve a
        // writer indefinitely: the gate lets the writer in as soon as the
        // pre-queue readers drain.
        let l = std::sync::Arc::new(TableLock::new(0u32));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let l = l.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _g = l.read();
                        std::thread::yield_now();
                    }
                });
            }
            {
                let l = l.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    *l.write() = 7;
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn table_lock_writer_excludes_readers_and_writers() {
        let l = std::sync::Arc::new(TableLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let l = l.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        let mut g = l.write();
                        // Non-atomic read-modify-write: torn under any
                        // failure of mutual exclusion.
                        let v = *g;
                        *g = v + 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 4000);
    }
}
