//! Runtime values and column data types.
//!
//! `sqlkernel` uses a small, dynamically typed value model: every cell is a
//! [`Value`], every column declares a [`DataType`] that inserts are coerced
//! to. Comparison follows SQL three-valued-logic at the expression layer
//! (see [`crate::expr`]); this module provides the *total* ordering used by
//! `ORDER BY`, `GROUP BY` and index keys, where `NULL` sorts first.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit IEEE float (`FLOAT`, `DOUBLE`, `REAL`, `DECIMAL`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR`, `CHAR`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
}

impl DataType {
    /// Parse a type name as written in DDL. Length arguments such as
    /// `VARCHAR(40)` are handled by the parser, which strips them before
    /// calling this.
    pub fn from_name(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            _ => None,
        }
    }

    /// Canonical SQL spelling, used when round-tripping schemas to DDL.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single SQL value.
///
/// Cloning is cheap for everything except long strings; rows are `Vec<Value>`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`DataType`] of a non-null value; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Numeric view of the value, if it has one. Booleans are *not* numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Text view (borrowing) if this is a text value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce into `ty`, as done on INSERT/UPDATE into a typed column.
    ///
    /// The rules are deliberately narrow: ints widen to floats, floats with
    /// zero fraction narrow to ints, anything renders to text, text parses
    /// to numerics/bools only if it is a clean literal. NULL passes through
    /// any type.
    pub fn coerce(&self, ty: DataType) -> Result<Value, String> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Text(_), DataType::Text)
            | (Value::Bool(_), DataType::Bool) => Ok(self.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => {
                if f.fract() == 0.0 && f.abs() < 9.2e18 {
                    Ok(Value::Int(*f as i64))
                } else {
                    Err(format!("cannot narrow {f} to INT"))
                }
            }
            (Value::Int(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Float(f), DataType::Text) => Ok(Value::Text(format_float(*f))),
            (Value::Bool(b), DataType::Text) => Ok(Value::Text(b.to_string())),
            (Value::Text(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| format!("cannot parse '{s}' as INT")),
            (Value::Text(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| format!("cannot parse '{s}' as FLOAT")),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "0" => Ok(Value::Bool(false)),
                _ => Err(format!("cannot parse '{s}' as BOOL")),
            },
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(*b as i64)),
            (Value::Bool(_), DataType::Float)
            | (Value::Int(_), DataType::Bool)
            | (Value::Float(_), DataType::Bool) => Err(format!("cannot coerce {self} to {ty}")),
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown), otherwise
    /// the ordering. Numeric types compare cross-type; other mixed-type
    /// comparisons order by type rank to stay deterministic.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.raw_cmp(other))
    }

    /// Total ordering used by ORDER BY / GROUP BY / index keys.
    /// NULL sorts before everything; non-null values order numerically
    /// (cross-type for Int/Float), lexicographically for text, and by a
    /// fixed type rank across kinds.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.raw_cmp(other),
        }
    }

    fn raw_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }

    /// Render the value as it appears in a result grid. NULL renders as
    /// the empty string here; use `{:?}` when the distinction matters.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => s.clone(),
        }
    }

    /// Render as a SQL literal (quotes and escapes text). Useful for
    /// generated statements (the WF DataAdapter sync-back uses this).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

/// Floats render without a trailing `.0` ambiguity: integral floats keep a
/// single trailing `.0` so they stay re-parseable as FLOAT.
fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Equality matches the total ordering, so `Int(1) == Float(1.0)` —
/// this is what GROUP BY and DISTINCT need.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and equal-valued floats must hash identically because they
            // compare equal. Hash every numeric through its f64 bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_round_trip() {
        for ty in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
        ] {
            assert_eq!(DataType::from_name(ty.sql_name()), Some(ty));
        }
        assert_eq!(DataType::from_name("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::from_name("blob"), None);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn total_order_puts_null_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(1).coerce(DataType::Float).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            Value::Float(2.0).coerce(DataType::Int).unwrap(),
            Value::Int(2)
        );
        assert!(Value::Float(2.5).coerce(DataType::Int).is_err());
        assert_eq!(
            Value::text("42").coerce(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::text("true").coerce(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::text("x").coerce(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
        assert!(Value::Bool(true).coerce(DataType::Float).is_err());
    }

    #[test]
    fn literals_escape_quotes() {
        assert_eq!(Value::text("o'brien").to_sql_literal(), "'o''brien'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Float(4.0).to_sql_literal(), "4.0");
    }

    #[test]
    fn render_floats() {
        assert_eq!(Value::Float(1.0).render(), "1.0");
        assert_eq!(Value::Float(1.25).render(), "1.25");
    }
}
