//! Bound (compiled) scalar expressions.
//!
//! A [`BoundExpr`] is an [`Expr`](crate::ast::Expr) whose column references
//! have been resolved to row ordinals once, at plan time, and whose constant
//! subtrees have been folded. Evaluating one never touches column *names*,
//! so the per-row cost of the interpreted evaluator's case-insensitive
//! string scan (`RowSchema::resolve`) disappears from the hot path.
//!
//! Binding is strictly an optimization: evaluation semantics — SQL
//! three-valued logic, NULL propagation, error messages — are shared with
//! `expr.rs` through the `apply_*` helpers, and the differential tests in
//! `tests/plan_cache.rs` hold the two evaluators byte-identical. Constant
//! folding is conservative for the same reason: a subtree folds only when
//! every child is already constant, the node is pure (no parameters,
//! subqueries, or `NEXTVAL`), and folding *succeeds* — a subtree whose
//! evaluation errors (e.g. `1/0`) is left unfolded so the error still
//! surfaces at run time, exactly where the interpreter would raise it.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, SelectStmt, UnOp};
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::expr::{
    apply_binary_op, apply_negation, apply_unary_op, compare, in_membership, is_aggregate_name,
    like_match, scalar_function, three_and, value_to_three, RowSchema,
};
use crate::types::Value;

/// An expression with column references resolved to ordinals.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// A constant — literals and successfully folded pure subtrees.
    Const(Value),
    /// Column at this position of the input row.
    Column(usize),
    /// `?` host parameter, positional.
    Param(usize),
    /// `:name` parameter (already lower-cased).
    NamedParam(String),
    Unary {
        op: UnOp,
        expr: Box<BoundExpr>,
    },
    Binary {
        left: Box<BoundExpr>,
        op: BinOp,
        right: Box<BoundExpr>,
    },
    IsNull {
        expr: Box<BoundExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    /// Subqueries stay as ASTs and run through the interpreted executor:
    /// they are uncorrelated, so they see no row and gain nothing from
    /// ordinal binding of the outer statement.
    InSubquery {
        expr: Box<BoundExpr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    Exists {
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    ScalarSubquery(Box<SelectStmt>),
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BoundExpr>,
        pattern: Box<BoundExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_branch: Option<Box<BoundExpr>>,
    },
    Function {
        name: String,
        args: Vec<BoundExpr>,
    },
}

impl BoundExpr {
    fn is_const(&self) -> bool {
        matches!(self, BoundExpr::Const(_))
    }

    /// The folded value, if this is a constant.
    pub fn const_value(&self) -> Option<&Value> {
        match self {
            BoundExpr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Does evaluating this expression run a subquery? Subqueries go
    /// through the interpreted executor and re-enter the catalog's table
    /// map, so the fast DML path — which evaluates while holding a table
    /// guard — is only safe for subquery-free statements.
    pub fn contains_subquery(&self) -> bool {
        match self {
            BoundExpr::Const(_)
            | BoundExpr::Column(_)
            | BoundExpr::Param(_)
            | BoundExpr::NamedParam(_) => false,
            BoundExpr::Unary { expr, .. } | BoundExpr::IsNull { expr, .. } => {
                expr.contains_subquery()
            }
            BoundExpr::Binary { left, right, .. } => {
                left.contains_subquery() || right.contains_subquery()
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(BoundExpr::contains_subquery)
            }
            BoundExpr::InSubquery { .. }
            | BoundExpr::Exists { .. }
            | BoundExpr::ScalarSubquery(_) => true,
            BoundExpr::Between {
                expr, low, high, ..
            } => expr.contains_subquery() || low.contains_subquery() || high.contains_subquery(),
            BoundExpr::Like { expr, pattern, .. } => {
                expr.contains_subquery() || pattern.contains_subquery()
            }
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                operand.as_deref().is_some_and(BoundExpr::contains_subquery)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_subquery() || t.contains_subquery())
                    || else_branch
                        .as_deref()
                        .is_some_and(BoundExpr::contains_subquery)
            }
            BoundExpr::Function { args, .. } => args.iter().any(BoundExpr::contains_subquery),
        }
    }
}

/// Everything a bound expression may need at evaluation time. Unlike
/// [`EvalCtx`](crate::expr::EvalCtx) there is no schema: positions were
/// fixed at bind time.
pub struct BoundCtx<'a> {
    pub catalog: &'a Catalog,
    pub params: &'a [Value],
    pub named_params: &'a HashMap<String, Value>,
    pub row: Option<&'a [Value]>,
}

/// Resolve every column reference of `expr` against `schema` and fold
/// constant subtrees. Errors (unresolvable or ambiguous columns,
/// aggregates) make the whole statement uncompilable — the caller falls
/// back to the interpreter, which reports them canonically.
pub fn bind(expr: &Expr, schema: &RowSchema) -> SqlResult<BoundExpr> {
    let bound = bind_inner(expr, schema)?;
    Ok(bound)
}

fn bind_inner(expr: &Expr, schema: &RowSchema) -> SqlResult<BoundExpr> {
    let node = match expr {
        Expr::Literal(v) => BoundExpr::Const(v.clone()),
        Expr::Column { table, name } => BoundExpr::Column(schema.resolve(table.as_deref(), name)?),
        Expr::Param(i) => BoundExpr::Param(*i),
        Expr::NamedParam(n) => BoundExpr::NamedParam(n.to_ascii_lowercase()),
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind_inner(expr, schema)?),
        },
        Expr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(bind_inner(left, schema)?),
            op: *op,
            right: Box::new(bind_inner(right, schema)?),
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind_inner(expr, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind_inner(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind_inner(e, schema))
                .collect::<SqlResult<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => BoundExpr::InSubquery {
            expr: Box::new(bind_inner(expr, schema)?),
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::Exists { subquery, negated } => BoundExpr::Exists {
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::ScalarSubquery(subquery) => BoundExpr::ScalarSubquery(subquery.clone()),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind_inner(expr, schema)?),
            low: Box::new(bind_inner(low, schema)?),
            high: Box::new(bind_inner(high, schema)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(bind_inner(expr, schema)?),
            pattern: Box::new(bind_inner(pattern, schema)?),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => BoundExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(bind_inner(o, schema)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind_inner(w, schema)?, bind_inner(t, schema)?)))
                .collect::<SqlResult<Vec<_>>>()?,
            else_branch: match else_branch {
                Some(e) => Some(Box::new(bind_inner(e, schema)?)),
                None => None,
            },
        },
        Expr::Function { name, .. } if is_aggregate_name(name) => {
            return Err(SqlError::Semantic(format!(
                "aggregate {name}() cannot be bound"
            )));
        }
        Expr::Function { name, args, .. } => BoundExpr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_inner(a, schema))
                .collect::<SqlResult<Vec<_>>>()?,
        },
    };
    Ok(fold(node))
}

/// Fold a node whose children are all constants into a constant — if it
/// is pure and evaluation succeeds. Failed folds keep the node as-is so
/// runtime errors stay runtime errors.
fn fold(node: BoundExpr) -> BoundExpr {
    let foldable = match &node {
        BoundExpr::Const(_)
        | BoundExpr::Column(_)
        | BoundExpr::Param(_)
        | BoundExpr::NamedParam(_)
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. }
        | BoundExpr::ScalarSubquery(_) => false,
        BoundExpr::Unary { expr, .. } | BoundExpr::IsNull { expr, .. } => expr.is_const(),
        BoundExpr::Binary { left, right, .. } => left.is_const() && right.is_const(),
        BoundExpr::InList { expr, list, .. } => {
            expr.is_const() && list.iter().all(BoundExpr::is_const)
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => expr.is_const() && low.is_const() && high.is_const(),
        BoundExpr::Like { expr, pattern, .. } => expr.is_const() && pattern.is_const(),
        BoundExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            operand.as_deref().is_none_or(BoundExpr::is_const)
                && branches.iter().all(|(w, t)| w.is_const() && t.is_const())
                && else_branch.as_deref().is_none_or(BoundExpr::is_const)
        }
        // NEXTVAL advances a sequence — never fold it.
        BoundExpr::Function { name, args } => {
            name != "NEXTVAL" && args.iter().all(BoundExpr::is_const)
        }
    };
    if !foldable {
        return node;
    }
    // A constant subtree needs no catalog, parameters, or row; a throwaway
    // empty catalog satisfies the context. (NEXTVAL — the only
    // catalog-dependent function — was excluded above.)
    let catalog = Catalog::new();
    static EMPTY: std::sync::OnceLock<HashMap<String, Value>> = std::sync::OnceLock::new();
    let ctx = BoundCtx {
        catalog: &catalog,
        params: &[],
        named_params: EMPTY.get_or_init(HashMap::new),
        row: None,
    };
    match eval_bound(&node, &ctx) {
        Ok(v) => BoundExpr::Const(v),
        Err(_) => node,
    }
}

/// Evaluate a bound expression. Mirrors [`crate::expr::eval`] exactly.
pub fn eval_bound(expr: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<Value> {
    match expr {
        BoundExpr::Const(v) => Ok(v.clone()),
        BoundExpr::Column(i) => {
            let row = ctx.row.ok_or_else(|| {
                SqlError::Semantic(format!("column #{i} referenced outside a row context"))
            })?;
            Ok(row[*i].clone())
        }
        BoundExpr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| SqlError::Binding(format!("missing host parameter #{}", i + 1))),
        BoundExpr::NamedParam(n) => ctx
            .named_params
            .get(n)
            .cloned()
            .ok_or_else(|| SqlError::Binding(format!("unbound named parameter ':{n}'"))),
        BoundExpr::Unary { op, expr } => {
            let v = eval_bound(expr, ctx)?;
            apply_unary_op(*op, v)
        }
        BoundExpr::Binary { left, op, right } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval_bound(left, ctx)?;
                let l3 = value_to_three(&l, "AND/OR")?;
                match (op, l3) {
                    (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = eval_bound(right, ctx)?;
                let r3 = value_to_three(&r, "AND/OR")?;
                let out = match op {
                    BinOp::And => three_and(l3, r3),
                    _ => match (l3, r3) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                };
                return Ok(match out {
                    None => Value::Null,
                    Some(b) => Value::Bool(b),
                });
            }
            let l = eval_bound(left, ctx)?;
            let r = eval_bound(right, ctx)?;
            apply_binary_op(*op, &l, &r)
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_bound(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval_bound(expr, ctx)?;
            let mut values = Vec::with_capacity(list.len());
            for e in list {
                values.push(eval_bound(e, ctx)?);
            }
            Ok(apply_negation(in_membership(&needle, &values), *negated))
        }
        BoundExpr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let needle = eval_bound(expr, ctx)?;
            let rs = run_subquery(subquery, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::Semantic(
                    "IN subquery must return exactly one column".into(),
                ));
            }
            let values: Vec<Value> = rs.rows.into_iter().map(|mut r| r.pop().unwrap()).collect();
            Ok(apply_negation(in_membership(&needle, &values), *negated))
        }
        BoundExpr::Exists { subquery, negated } => {
            let rs = run_subquery(subquery, ctx)?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        BoundExpr::ScalarSubquery(subquery) => {
            let rs = run_subquery(subquery, ctx)?;
            if rs.columns.len() != 1 {
                return Err(SqlError::Semantic(
                    "scalar subquery must return exactly one column".into(),
                ));
            }
            match rs.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rs.rows[0][0].clone()),
                n => Err(SqlError::Runtime(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_bound(expr, ctx)?;
            let lo = eval_bound(low, ctx)?;
            let hi = eval_bound(high, ctx)?;
            let ge = compare(&v, &lo).map(|o| o != std::cmp::Ordering::Less);
            let le = compare(&v, &hi).map(|o| o != std::cmp::Ordering::Greater);
            Ok(apply_negation(three_and(ge, le), *negated))
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_bound(expr, ctx)?;
            let p = eval_bound(pattern, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(SqlError::Semantic(format!(
                    "LIKE requires text operands, got {a:?} and {b:?}"
                ))),
            }
        }
        BoundExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            match operand {
                Some(op) => {
                    let subject = eval_bound(op, ctx)?;
                    for (when, then) in branches {
                        let w = eval_bound(when, ctx)?;
                        if !subject.is_null() && !w.is_null() && subject == w {
                            return eval_bound(then, ctx);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if eval_bound(when, ctx)? == Value::Bool(true) {
                            return eval_bound(then, ctx);
                        }
                    }
                }
            }
            match else_branch {
                Some(e) => eval_bound(e, ctx),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::Function { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_bound(a, ctx)?);
            }
            scalar_function(name, &vals, ctx.catalog)
        }
    }
}

// ------------------------------------------------------------- batch eval
//
// The batch executor (`exec::batch`) evaluates expressions over row
// batches instead of driving `eval_bound` through per-row plumbing in the
// pipeline. Evaluation stays *row-major within a pass*: a pass visits the
// batch's rows in order, so an erroring row surfaces its error at exactly
// the position the row-at-a-time interpreter would — batching changes the
// memory access pattern and the bookkeeping granularity, never the
// evaluation order.

/// One `column <cmp> constant` conjunct of a comparison-only WHERE
/// clause, extracted for the tight filter loop. `key` may come from a
/// plan constant or a resolved `?` parameter.
pub(crate) struct ColCmp<'a> {
    col: usize,
    op: BinOp,
    key: &'a Value,
}

impl ColCmp<'_> {
    /// Does `row` satisfy this conjunct? Infallible: a pure comparison
    /// yields `Bool` or `NULL` (which fails), never an error.
    pub(crate) fn passes(&self, row: &[Value]) -> bool {
        cmp_passes(self.op, row[self.col].sql_cmp(self.key))
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Does `ord` (from [`Value::sql_cmp`]) satisfy the comparison? `None`
/// (a NULL operand) fails every comparison — exactly the three-valued
/// outcome [`eval_bound_predicate`] produces for a NULL result.
fn cmp_passes(op: BinOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering;
    match ord {
        None => false,
        Some(o) => match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::NotEq => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::LtEq => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::GtEq => o != Ordering::Less,
            _ => unreachable!("only comparison ops are flattened"),
        },
    }
}

/// Try to flatten `pred` into an AND-chain of `column <cmp> constant`
/// conjuncts. Succeeds only when *every* leaf is such a comparison, so
/// the caller can run the tight loop below knowing the general evaluator
/// could never have produced an error or a different row set: a pure
/// comparison yields `Bool` or `NULL` (never an error, never another
/// type), and a 3VL AND of those is TRUE iff every conjunct is TRUE.
pub(crate) fn flatten_col_cmps<'a>(
    pred: &'a BoundExpr,
    ctx: &BoundCtx<'a>,
    out: &mut Vec<ColCmp<'a>>,
) -> bool {
    match pred {
        BoundExpr::Binary {
            left,
            op: BinOp::And,
            right,
        } => flatten_col_cmps(left, ctx, out) && flatten_col_cmps(right, ctx, out),
        BoundExpr::Binary { left, op, right }
            if matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
            ) =>
        {
            let leaf = |e: &'a BoundExpr| match e {
                BoundExpr::Const(v) => Some(v),
                // A missing `?` binding falls back to the general path,
                // which raises the canonical error on the first row.
                BoundExpr::Param(i) => ctx.params.get(*i),
                _ => None,
            };
            match (&**left, &**right) {
                (BoundExpr::Column(c), r) => match leaf(r) {
                    Some(key) => {
                        out.push(ColCmp {
                            col: *c,
                            op: *op,
                            key,
                        });
                        true
                    }
                    None => false,
                },
                (l, BoundExpr::Column(c)) => match leaf(l) {
                    Some(key) => {
                        out.push(ColCmp {
                            col: *c,
                            op: flip_cmp(*op),
                            key,
                        });
                        true
                    }
                    None => false,
                },
                _ => false,
            }
        }
        _ => false,
    }
}

// ---------------------------------------------------------- join pushdown
//
// The join compiler pushes one-sided WHERE/ON conjuncts into the side's
// scan. Pushing never *removes* a conjunct from its original position —
// the full WHERE and every ON residual still run — so a pushed conjunct
// is a pure prefilter. Safety then needs exactly two properties, both
// enforced structurally here: the pushed conjunct is infallible and false
// on NULL (so pad rows cascading from a removed row, whose side columns
// are NULL, are re-killed by the retained copy), and the *whole* WHERE
// plus every residual is infallible (so the engines' differing
// intermediate row sets cannot surface different evaluation errors).

/// An owned `column <cmp> constant` conjunct, storable inside a compiled
/// plan: the pushed-down prefilter a join side applies while gathering.
/// The column ordinal is local to that side's table schema.
#[derive(Debug, Clone)]
pub(crate) struct OwnedColCmp {
    pub(crate) col: usize,
    pub(crate) op: BinOp,
    pub(crate) key: Value,
}

impl OwnedColCmp {
    /// Does `row` satisfy this conjunct? Infallible and NULL-rejecting,
    /// like [`ColCmp::passes`] — the properties the pushdown proof needs.
    pub(crate) fn passes(&self, row: &[Value]) -> bool {
        cmp_passes(self.op, row[self.col].sql_cmp(&self.key))
    }
}

/// Extract the pushable `column <cmp> constant` shape from a bound
/// conjunct. `BETWEEN` (non-negated) splits into its two bounding
/// comparisons. Returns `None` for every other shape — parameters fold
/// to constants only at bind time, so a `?` that reached here stays
/// unpushed rather than freezing one execution's binding into the plan.
pub(crate) fn as_col_cmps(e: &BoundExpr) -> Option<Vec<OwnedColCmp>> {
    match e {
        BoundExpr::Binary { left, op, right }
            if matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
            ) =>
        {
            match (&**left, &**right) {
                (BoundExpr::Column(c), BoundExpr::Const(v)) => Some(vec![OwnedColCmp {
                    col: *c,
                    op: *op,
                    key: v.clone(),
                }]),
                (BoundExpr::Const(v), BoundExpr::Column(c)) => Some(vec![OwnedColCmp {
                    col: *c,
                    op: flip_cmp(*op),
                    key: v.clone(),
                }]),
                _ => None,
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => match (&**expr, &**low, &**high) {
            (BoundExpr::Column(c), BoundExpr::Const(lo), BoundExpr::Const(hi)) => Some(vec![
                OwnedColCmp {
                    col: *c,
                    op: BinOp::GtEq,
                    key: lo.clone(),
                },
                OwnedColCmp {
                    col: *c,
                    op: BinOp::LtEq,
                    key: hi.clone(),
                },
            ]),
            _ => None,
        },
        _ => None,
    }
}

/// Is this bound predicate structurally incapable of raising an error,
/// whatever row it sees? Conservative: comparisons, `IS [NOT] NULL`, and
/// `[NOT] BETWEEN` over column/constant operands yield `Bool` or `NULL`
/// for *any* operand values (mixed types order by type rank rather than
/// erroring), and `AND`/`OR`/`NOT` over such predicates are three-valued
/// and total. Everything else — arithmetic (division), `LIKE` (pattern
/// must be text), parameters (may be unbound), functions, subqueries —
/// is treated as fallible.
pub(crate) fn infallible_predicate(e: &BoundExpr) -> bool {
    fn value_leaf(e: &BoundExpr) -> bool {
        matches!(e, BoundExpr::Const(_) | BoundExpr::Column(_))
    }
    match e {
        BoundExpr::Const(v) => matches!(v, Value::Bool(_) | Value::Null),
        BoundExpr::Binary { left, op, right } => match op {
            BinOp::And | BinOp::Or => infallible_predicate(left) && infallible_predicate(right),
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                value_leaf(left) && value_leaf(right)
            }
            _ => false,
        },
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => infallible_predicate(expr),
        BoundExpr::IsNull { expr, .. } => value_leaf(expr),
        BoundExpr::Between {
            expr, low, high, ..
        } => value_leaf(expr) && value_leaf(low) && value_leaf(high),
        _ => false,
    }
}

/// Evaluate a bound predicate over one batch of rows, appending the
/// ordinals (offset by `base`) of passing rows to the selection vector.
/// One call is one expression-over-batch pass.
///
/// The dominant WHERE shape — an AND-chain of `column <cmp> constant`
/// comparisons — takes a tight loop that compares stored values in
/// place: no per-row context, no `Value` clones, no recursion. Anything
/// else goes through the general evaluator row by row.
pub fn filter_bound_batch(
    pred: &BoundExpr,
    ctx: &BoundCtx<'_>,
    rows: &[&[Value]],
    base: u32,
    sel: &mut Vec<u32>,
) -> SqlResult<()> {
    let mut cmps = Vec::new();
    if flatten_col_cmps(pred, ctx, &mut cmps) {
        for (i, row) in rows.iter().enumerate() {
            if cmps.iter().all(|c| c.passes(row)) {
                sel.push(base + i as u32);
            }
        }
        return Ok(());
    }
    for (i, row) in rows.iter().enumerate() {
        let rc = BoundCtx {
            row: Some(row),
            ..*ctx
        };
        if eval_bound_predicate(pred, &rc)? {
            sel.push(base + i as u32);
        }
    }
    Ok(())
}

/// Evaluate one bound expression for every selected row, appending the
/// results to `out` (a reusable scratch buffer — the caller clears it).
/// Row-major over the selection, so error positions match the
/// interpreter's per-row loop.
pub fn eval_bound_batch(
    expr: &BoundExpr,
    ctx: &BoundCtx<'_>,
    rows: &[&[Value]],
    sel: &[u32],
    out: &mut Vec<Value>,
) -> SqlResult<()> {
    out.reserve(sel.len());
    for &i in sel {
        let rc = BoundCtx {
            row: Some(rows[i as usize]),
            ..*ctx
        };
        out.push(eval_bound(expr, &rc)?);
    }
    Ok(())
}

/// Evaluate a bound predicate: NULL and FALSE both drop the row.
pub fn eval_bound_predicate(expr: &BoundExpr, ctx: &BoundCtx<'_>) -> SqlResult<bool> {
    match eval_bound(expr, ctx)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(SqlError::Semantic(format!(
            "predicate evaluated to non-boolean {other:?}"
        ))),
    }
}

fn run_subquery(stmt: &SelectStmt, ctx: &BoundCtx<'_>) -> SqlResult<crate::db::QueryResult> {
    // Subqueries are uncorrelated: no outer row is passed down.
    crate::exec::select::run_select(ctx.catalog, stmt, ctx.params, ctx.named_params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn bind_const(src: &str) -> BoundExpr {
        let e = parse_expression(src).unwrap();
        bind(&e, &RowSchema::empty()).unwrap()
    }

    #[test]
    fn literals_and_pure_subtrees_fold() {
        assert_eq!(bind_const("1 + 2 * 3").const_value(), Some(&Value::Int(7)));
        assert_eq!(
            bind_const("UPPER('abc') || '!'").const_value(),
            Some(&Value::text("ABC!"))
        );
        assert_eq!(
            bind_const("CASE WHEN 1 < 2 THEN 'y' ELSE 'n' END").const_value(),
            Some(&Value::text("y"))
        );
    }

    #[test]
    fn params_do_not_fold() {
        assert!(bind_const("? + 1").const_value().is_none());
        assert!(bind_const(":x || 'a'").const_value().is_none());
    }

    #[test]
    fn failed_fold_keeps_runtime_error() {
        // 1/0 must error when the statement runs, not when it binds.
        let b = bind_const("1 / 0");
        assert!(b.const_value().is_none());
        let catalog = Catalog::new();
        let named = HashMap::new();
        let ctx = BoundCtx {
            catalog: &catalog,
            params: &[],
            named_params: &named,
            row: None,
        };
        assert_eq!(eval_bound(&b, &ctx).unwrap_err().class(), "runtime");
    }

    #[test]
    fn short_circuit_hides_foldable_error_like_interpreter() {
        let b = bind_const("FALSE AND (1 / 0 = 1)");
        let catalog = Catalog::new();
        let named = HashMap::new();
        let ctx = BoundCtx {
            catalog: &catalog,
            params: &[],
            named_params: &named,
            row: None,
        };
        assert_eq!(eval_bound(&b, &ctx).unwrap(), Value::Bool(false));
    }

    #[test]
    fn nextval_never_folds() {
        let b = bind_const("NEXTVAL('s')");
        assert!(b.const_value().is_none());
    }

    #[test]
    fn columns_bind_to_ordinals() {
        let schema = RowSchema::new(vec![
            (Some("t".into()), "a".into()),
            (Some("t".into()), "b".into()),
        ]);
        let e = parse_expression("t.b + a").unwrap();
        let b = bind(&e, &schema).unwrap();
        let catalog = Catalog::new();
        let named = HashMap::new();
        let row = vec![Value::Int(40), Value::Int(2)];
        let ctx = BoundCtx {
            catalog: &catalog,
            params: &[],
            named_params: &named,
            row: Some(&row),
        };
        assert_eq!(eval_bound(&b, &ctx).unwrap(), Value::Int(42));
    }

    #[test]
    fn unknown_column_fails_bind() {
        let e = parse_expression("zzz + 1").unwrap();
        assert!(bind(&e, &RowSchema::empty()).is_err());
    }

    #[test]
    fn aggregates_fail_bind() {
        let e = parse_expression("SUM(1)").unwrap();
        assert!(bind(&e, &RowSchema::empty()).is_err());
    }
}
