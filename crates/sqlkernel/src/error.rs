//! Error type shared by every layer of the engine.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type SqlResult<T> = Result<T, SqlError>;

/// All the ways a SQL statement can fail, from lexing to execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The lexer met a character sequence it cannot tokenize.
    Lex(String),
    /// The parser met an unexpected token.
    Parse(String),
    /// A referenced catalog object (table, column, procedure, …) does not exist.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// The statement is well-formed but violates a semantic rule
    /// (type mismatch, wrong arity, aggregate misuse, …).
    Semantic(String),
    /// A constraint (primary key, NOT NULL) was violated at runtime.
    Constraint(String),
    /// Transaction control misuse (nested BEGIN, COMMIT without BEGIN, …).
    Txn(String),
    /// Host-parameter binding mismatch.
    Binding(String),
    /// Division by zero and other runtime evaluation failures.
    Runtime(String),
    /// The connection was refused (unknown database, provider restriction…).
    Connection(String),
    /// A transient infrastructure failure (connection reset, deadlock
    /// victim, serialization failure). The statement had no durable
    /// effect — its partial work was rolled back — so retrying the same
    /// statement is safe and is expected to eventually succeed.
    Transient(String),
    /// The process hosting the database "died" (crash fault injection).
    /// Unlike [`SqlError::Transient`], this is **not** retryable on the
    /// same handle: every subsequent statement fails the same way until
    /// the database is re-opened from its log via recovery.
    Crashed(String),
}

impl SqlError {
    /// A short machine-readable class name, handy for assertions in tests.
    pub fn class(&self) -> &'static str {
        match self {
            SqlError::Lex(_) => "lex",
            SqlError::Parse(_) => "parse",
            SqlError::NotFound(_) => "not_found",
            SqlError::AlreadyExists(_) => "already_exists",
            SqlError::Semantic(_) => "semantic",
            SqlError::Constraint(_) => "constraint",
            SqlError::Txn(_) => "txn",
            SqlError::Binding(_) => "binding",
            SqlError::Runtime(_) => "runtime",
            SqlError::Connection(_) => "connection",
            SqlError::Transient(_) => "transient",
            SqlError::Crashed(_) => "crashed",
        }
    }

    /// Is this error safe to retry? Only [`SqlError::Transient`] failures
    /// qualify: everything else (constraint violations, parse errors, …)
    /// is deterministic and would fail again identically.
    pub fn is_transient(&self) -> bool {
        matches!(self, SqlError::Transient(_))
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::NotFound(m) => write!(f, "not found: {m}"),
            SqlError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Txn(m) => write!(f, "transaction error: {m}"),
            SqlError::Binding(m) => write!(f, "binding error: {m}"),
            SqlError::Runtime(m) => write!(f, "runtime error: {m}"),
            SqlError::Connection(m) => write!(f, "connection error: {m}"),
            SqlError::Transient(m) => write!(f, "transient error: {m}"),
            SqlError::Crashed(m) => write!(f, "crashed: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = SqlError::Parse("unexpected FROM".into());
        assert!(e.to_string().contains("unexpected FROM"));
        assert_eq!(e.class(), "parse");
    }

    #[test]
    fn classes_are_distinct() {
        let all = [
            SqlError::Lex(String::new()),
            SqlError::Parse(String::new()),
            SqlError::NotFound(String::new()),
            SqlError::AlreadyExists(String::new()),
            SqlError::Semantic(String::new()),
            SqlError::Constraint(String::new()),
            SqlError::Txn(String::new()),
            SqlError::Binding(String::new()),
            SqlError::Runtime(String::new()),
            SqlError::Connection(String::new()),
            SqlError::Transient(String::new()),
            SqlError::Crashed(String::new()),
        ];
        let mut classes: Vec<_> = all.iter().map(|e| e.class()).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), all.len());
    }
}
