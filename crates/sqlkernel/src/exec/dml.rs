//! DML execution: `INSERT`, `UPDATE`, `DELETE`.
//!
//! Mutations run in two phases: an immutable phase that evaluates
//! predicates and new values against a snapshot view, then a mutable phase
//! that applies the collected changes. This sidesteps the Halloween
//! problem (an `UPDATE` whose predicate matches its own output) and lets
//! every change record an undo entry for statement atomicity.

use std::collections::HashMap;

use crate::ast::*;
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::expr::{eval, eval_predicate, EvalCtx, RowSchema};
use crate::storage::RowId;
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// Execute an `INSERT`; returns the number of rows inserted.
pub fn run_insert(
    catalog: &mut Catalog,
    stmt: &InsertStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    // Phase 1 (immutable): compute the full rows to insert.
    let rows: Vec<Vec<Value>> = {
        let table = catalog.table(&stmt.table)?;
        let width = table.schema.columns.len();

        // Map provided columns → schema positions.
        let positions: Vec<usize> = match &stmt.columns {
            Some(cols) => {
                let mut out = Vec::with_capacity(cols.len());
                for c in cols {
                    let i = table.schema.resolve(c)?;
                    if out.contains(&i) {
                        return Err(SqlError::Semantic(format!(
                            "column '{c}' listed twice in INSERT"
                        )));
                    }
                    out.push(i);
                }
                out
            }
            None => (0..width).collect(),
        };

        let source_rows: Vec<Vec<Value>> = match &stmt.source {
            InsertSource::Values(rows) => {
                let ctx = EvalCtx {
                    catalog,
                    params,
                    named_params,
                    row: None,
                    aggregates: None,
                };
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        row.push(eval(e, &ctx)?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(sel) => {
                super::select::run_select(catalog, sel, params, named_params)?.rows
            }
        };

        let mut full_rows = Vec::with_capacity(source_rows.len());
        for src in source_rows {
            if src.len() != positions.len() {
                return Err(SqlError::Semantic(format!(
                    "INSERT expects {} values per row, got {}",
                    positions.len(),
                    src.len()
                )));
            }
            let mut row = vec![Value::Null; width];
            for (v, &pos) in src.into_iter().zip(&positions) {
                row[pos] = v;
            }
            full_rows.push(row);
        }
        full_rows
    };

    // Phase 2 (mutable): apply.
    let table_name = {
        let table = catalog.table_mut(&stmt.table)?;
        table.schema.name.clone()
    };
    let mut n = 0;
    for row in rows {
        let table = catalog.table_mut(&stmt.table)?;
        let id = table.insert(row)?;
        undo.record(UndoOp::Insert {
            table: table_name.clone(),
            row_id: id,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute an `UPDATE`; returns the number of rows changed.
pub fn run_update(
    catalog: &mut Catalog,
    stmt: &UpdateStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    // Phase 1: collect (row_id, new_row).
    let changes: Vec<(RowId, Vec<Value>)> = {
        let table = catalog.table(&stmt.table)?;
        let binding = table.schema.name.clone();
        let schema = RowSchema::new(
            table
                .schema
                .columns
                .iter()
                .map(|c| (Some(binding.clone()), c.name.clone()))
                .collect(),
        );
        let assignments: Vec<(usize, &Expr)> = {
            let mut out = Vec::with_capacity(stmt.assignments.len());
            for (col, e) in &stmt.assignments {
                out.push((table.schema.resolve(col)?, e));
            }
            out
        };
        let ctx = EvalCtx {
            catalog,
            params,
            named_params,
            row: None,
            aggregates: None,
        };
        let mut changes = Vec::new();
        for (id, row) in table.iter() {
            let rc = ctx.with_row(&schema, row);
            let hit = match &stmt.where_clause {
                Some(pred) => eval_predicate(pred, &rc)?,
                None => true,
            };
            if !hit {
                continue;
            }
            let mut new_row = (**row).clone();
            for (pos, e) in &assignments {
                new_row[*pos] = eval(e, &rc)?;
            }
            changes.push((id, new_row));
        }
        changes
    };

    // Phase 2: apply.
    let table_name = catalog.table(&stmt.table)?.schema.name.clone();
    let mut n = 0;
    for (id, new_row) in changes {
        let table = catalog.table_mut(&stmt.table)?;
        let old = table.update(id, new_row)?;
        undo.record(UndoOp::Update {
            table: table_name.clone(),
            row_id: id,
            old,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a `DELETE`; returns the number of rows removed.
pub fn run_delete(
    catalog: &mut Catalog,
    stmt: &DeleteStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let victims: Vec<RowId> = {
        let table = catalog.table(&stmt.table)?;
        let binding = table.schema.name.clone();
        let schema = RowSchema::new(
            table
                .schema
                .columns
                .iter()
                .map(|c| (Some(binding.clone()), c.name.clone()))
                .collect(),
        );
        let ctx = EvalCtx {
            catalog,
            params,
            named_params,
            row: None,
            aggregates: None,
        };
        let mut out = Vec::new();
        for (id, row) in table.iter() {
            let hit = match &stmt.where_clause {
                Some(pred) => {
                    let rc = ctx.with_row(&schema, row);
                    eval_predicate(pred, &rc)?
                }
                None => true,
            };
            if hit {
                out.push(id);
            }
        }
        out
    };

    let table_name = catalog.table(&stmt.table)?.schema.name.clone();
    let mut n = 0;
    for id in victims {
        let table = catalog.table_mut(&stmt.table)?;
        let row = table.delete(id)?;
        undo.record(UndoOp::Delete {
            table: table_name.clone(),
            row_id: id,
            row,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}
