//! DML execution: `INSERT`, `UPDATE`, `DELETE`.
//!
//! Mutations run in two phases: an immutable phase that evaluates
//! predicates and new values against a snapshot view, then a mutable phase
//! that applies the collected changes. This sidesteps the Halloween
//! problem (an `UPDATE` whose predicate matches its own output) and lets
//! every change record an undo entry for statement atomicity.
//!
//! Each runner comes in two flavors. The plain `run_*` functions acquire
//! the target table's guards themselves (shared for the collect phase —
//! subqueries may re-read the same table — exclusive for the apply phase)
//! and rely on the catalog-shape write lock to make the guard gap
//! invisible. The `run_*_on` variants execute both phases against a guard
//! the *caller* already holds, which is what the fast path under the
//! shared catalog-shape lock uses; they are only safe for subquery-free
//! statements, since a subquery would re-enter the catalog's table map.

use std::collections::HashMap;

use crate::ast::*;
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::expr::{eval, eval_predicate, EvalCtx, RowSchema};
use crate::storage::{RowId, Table};
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// Phase 1 of an `INSERT`: compute the full rows to insert.
fn collect_insert(
    catalog: &Catalog,
    table: &Table,
    stmt: &InsertStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<Vec<Vec<Value>>> {
    let width = table.schema.columns.len();

    // Map provided columns → schema positions.
    let positions: Vec<usize> = match &stmt.columns {
        Some(cols) => {
            let mut out = Vec::with_capacity(cols.len());
            for c in cols {
                let i = table.schema.resolve(c)?;
                if out.contains(&i) {
                    return Err(SqlError::Semantic(format!(
                        "column '{c}' listed twice in INSERT"
                    )));
                }
                out.push(i);
            }
            out
        }
        None => (0..width).collect(),
    };

    let source_rows: Vec<Vec<Value>> = match &stmt.source {
        InsertSource::Values(rows) => {
            let ctx = EvalCtx {
                catalog,
                params,
                named_params,
                row: None,
                aggregates: None,
            };
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                let mut row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    row.push(eval(e, &ctx)?);
                }
                out.push(row);
            }
            out
        }
        InsertSource::Select(sel) => {
            super::select::run_select(catalog, sel, params, named_params)?.rows
        }
    };

    let mut full_rows = Vec::with_capacity(source_rows.len());
    for src in source_rows {
        if src.len() != positions.len() {
            return Err(SqlError::Semantic(format!(
                "INSERT expects {} values per row, got {}",
                positions.len(),
                src.len()
            )));
        }
        let mut row = vec![Value::Null; width];
        for (v, &pos) in src.into_iter().zip(&positions) {
            row[pos] = v;
        }
        full_rows.push(row);
    }
    Ok(full_rows)
}

/// Phase 2 of an `INSERT`: apply under the caller's exclusive guard.
fn apply_insert(
    catalog: &Catalog,
    table: &mut Table,
    rows: Vec<Vec<Value>>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for row in rows {
        let id = table.insert(row)?;
        undo.record(UndoOp::Insert {
            table: table_name.clone(),
            row_id: id,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute an `INSERT`; returns the number of rows inserted.
pub fn run_insert(
    catalog: &Catalog,
    stmt: &InsertStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let rows = {
        let table = catalog.table(&stmt.table)?;
        collect_insert(catalog, &table, stmt, params, named_params)?
    };
    let mut table = catalog.table_mut(&stmt.table)?;
    apply_insert(catalog, &mut table, rows, undo)
}

/// Fast-path `INSERT` against a held table guard. The caller must have
/// checked that every source expression is subquery-free and that the
/// source is `VALUES` (an `INSERT ... SELECT` reads other tables).
pub fn run_insert_on(
    catalog: &Catalog,
    table: &mut Table,
    stmt: &InsertStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let rows = collect_insert(catalog, table, stmt, params, named_params)?;
    apply_insert(catalog, table, rows, undo)
}

/// Phase 1 of an `UPDATE`: collect `(row_id, new_row)` pairs.
fn collect_update(
    catalog: &Catalog,
    table: &Table,
    stmt: &UpdateStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<Vec<(RowId, Vec<Value>)>> {
    let binding = table.schema.name.clone();
    let schema = RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.clone()), c.name.clone()))
            .collect(),
    );
    let assignments: Vec<(usize, &Expr)> = {
        let mut out = Vec::with_capacity(stmt.assignments.len());
        for (col, e) in &stmt.assignments {
            out.push((table.schema.resolve(col)?, e));
        }
        out
    };
    let ctx = EvalCtx {
        catalog,
        params,
        named_params,
        row: None,
        aggregates: None,
    };
    let mut changes = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let rc = ctx.with_row(&schema, row);
        let hit = match &stmt.where_clause {
            Some(pred) => eval_predicate(pred, &rc)?,
            None => true,
        };
        if !hit {
            continue;
        }
        let mut new_row = (**row).clone();
        for (pos, e) in &assignments {
            new_row[*pos] = eval(e, &rc)?;
        }
        changes.push((id, new_row));
    }
    catalog.note_full_scan_rows(walked);
    Ok(changes)
}

/// Phase 2 of an `UPDATE`: apply under the caller's exclusive guard.
fn apply_update(
    catalog: &Catalog,
    table: &mut Table,
    changes: Vec<(RowId, Vec<Value>)>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for (id, new_row) in changes {
        let old = table.update(id, new_row)?;
        undo.record(UndoOp::Update {
            table: table_name.clone(),
            row_id: id,
            old,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute an `UPDATE`; returns the number of rows changed.
pub fn run_update(
    catalog: &Catalog,
    stmt: &UpdateStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let changes = {
        let table = catalog.table(&stmt.table)?;
        collect_update(catalog, &table, stmt, params, named_params)?
    };
    let mut table = catalog.table_mut(&stmt.table)?;
    apply_update(catalog, &mut table, changes, undo)
}

/// Fast-path `UPDATE` against a held table guard; the caller must have
/// checked the statement subquery-free.
pub fn run_update_on(
    catalog: &Catalog,
    table: &mut Table,
    stmt: &UpdateStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let changes = collect_update(catalog, table, stmt, params, named_params)?;
    apply_update(catalog, table, changes, undo)
}

/// Phase 1 of a `DELETE`: collect victim row ids.
fn collect_delete(
    catalog: &Catalog,
    table: &Table,
    stmt: &DeleteStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<Vec<RowId>> {
    let binding = table.schema.name.clone();
    let schema = RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.clone()), c.name.clone()))
            .collect(),
    );
    let ctx = EvalCtx {
        catalog,
        params,
        named_params,
        row: None,
        aggregates: None,
    };
    let mut out = Vec::new();
    let mut walked = 0u64;
    for (id, row) in table.iter() {
        walked += 1;
        let hit = match &stmt.where_clause {
            Some(pred) => {
                let rc = ctx.with_row(&schema, row);
                eval_predicate(pred, &rc)?
            }
            None => true,
        };
        if hit {
            out.push(id);
        }
    }
    catalog.note_full_scan_rows(walked);
    Ok(out)
}

/// Phase 2 of a `DELETE`: apply under the caller's exclusive guard.
fn apply_delete(
    catalog: &Catalog,
    table: &mut Table,
    victims: Vec<RowId>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let table_name = table.schema.name.clone();
    let mut n = 0;
    for id in victims {
        let row = table.delete(id)?;
        undo.record(UndoOp::Delete {
            table: table_name.clone(),
            row_id: id,
            row,
        });
        n += 1;
        catalog.fault_row_applied()?;
    }
    Ok(n)
}

/// Execute a `DELETE`; returns the number of rows removed.
pub fn run_delete(
    catalog: &Catalog,
    stmt: &DeleteStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let victims = {
        let table = catalog.table(&stmt.table)?;
        collect_delete(catalog, &table, stmt, params, named_params)?
    };
    let mut table = catalog.table_mut(&stmt.table)?;
    apply_delete(catalog, &mut table, victims, undo)
}

/// Fast-path `DELETE` against a held table guard; the caller must have
/// checked the statement subquery-free.
pub fn run_delete_on(
    catalog: &Catalog,
    table: &mut Table,
    stmt: &DeleteStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<usize> {
    let victims = collect_delete(catalog, table, stmt, params, named_params)?;
    apply_delete(catalog, table, victims, undo)
}
