//! Statement execution dispatcher.
//!
//! [`execute`] runs one non-transaction-control statement against a
//! catalog, recording undo entries as it goes. Transaction control
//! (`BEGIN`/`COMMIT`/`ROLLBACK`) is owned by [`crate::db::Connection`],
//! which also provides statement-level atomicity by rolling the statement
//! undo log back on error.

pub mod batch;
pub mod ddl;
pub mod dml;
pub mod select;

use std::collections::HashMap;

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::db::StatementResult;
use crate::error::{SqlError, SqlResult};
use crate::txn::UndoLog;
use crate::types::Value;

/// Execute one statement. `params` are `?` host parameters, `named_params`
/// are `:name` bindings (lower-cased keys; used inside procedure bodies).
pub fn execute(
    catalog: &mut Catalog,
    stmt: &Statement,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<StatementResult> {
    match stmt {
        Statement::Select(s) => {
            let rs = select::run_select(catalog, s, params, named_params)?;
            Ok(StatementResult::Rows(rs))
        }
        Statement::Insert(s) => {
            let n = dml::run_insert(catalog, s, params, named_params, undo)?;
            Ok(StatementResult::Affected(n))
        }
        Statement::Update(s) => {
            let n = dml::run_update(catalog, s, params, named_params, undo)?;
            Ok(StatementResult::Affected(n))
        }
        Statement::Delete(s) => {
            let n = dml::run_delete(catalog, s, params, named_params, undo)?;
            Ok(StatementResult::Affected(n))
        }
        Statement::CreateTable(s) => {
            ddl::create_table(catalog, s, params, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropTable { name, if_exists } => {
            ddl::drop_table(catalog, name, *if_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
            unique,
            if_not_exists,
        } => {
            ddl::create_index(catalog, name, table, columns, *unique, *if_not_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropIndex { name, if_exists } => {
            ddl::drop_index(catalog, name, *if_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::CreateSequence {
            name,
            start,
            increment,
            if_not_exists,
        } => {
            ddl::create_sequence(catalog, name, *start, *increment, *if_not_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropSequence { name, if_exists } => {
            ddl::drop_sequence(catalog, name, *if_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::CreateProcedure(s) => {
            ddl::create_procedure(catalog, s, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropProcedure { name, if_exists } => {
            ddl::drop_procedure(catalog, name, *if_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::CreateView {
            name,
            if_not_exists,
            query,
        } => {
            ddl::create_view(catalog, name, query, *if_not_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::DropView { name, if_exists } => {
            ddl::drop_view(catalog, name, *if_exists, undo)?;
            Ok(StatementResult::Ddl)
        }
        Statement::Call { name, args } => {
            let rows = ddl::call_procedure(catalog, name, args, params, named_params, undo)?;
            match rows {
                Some(rs) => Ok(StatementResult::Rows(rs)),
                None => Ok(StatementResult::Affected(0)),
            }
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(SqlError::Txn(
            "transaction control must go through a connection".into(),
        )),
    }
}
