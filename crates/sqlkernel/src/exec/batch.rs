//! Batch-at-a-time execution of compiled plans.
//!
//! Where the interpreter walks one row through the whole pipeline at a
//! time, this module runs each pipeline *stage* over a batch of rows:
//! the scan borrows stored rows by reference (no `Arc` refcount
//! traffic), the WHERE clause fills a **selection vector** of passing
//! row indexes in [`BATCH_SIZE`] chunks, and projection + ORDER BY keys
//! read storage rows *through* that selection vector — filter and
//! project are fused in the sense that no filtered intermediate row set
//! is ever materialized. Grouped queries run through a one-pass hash
//! aggregator ([`run_agg_plan`]) instead of the interpreter's
//! string-keyed aggregate map.
//!
//! All scratch space (selection vector, group-key buffer, aggregate
//! value buffer) lives in a per-connection [`BatchScratch`], so steady
//! state execution does no per-statement allocation for these buffers.
//!
//! **Semantics contract**: output rows, NULL handling, and error
//! *positions* are byte-identical to the interpreter. That is why
//! evaluation stays row-major *within* each pass — a stage processes
//! whole batches, but inside a batch rows are visited in arrival order,
//! so the first row to raise an error is the same row the interpreter
//! would have raised it on. Stage order itself matches the
//! interpreter's stage order (WHERE over all rows, then grouping keys
//! over all rows, then aggregates group-major, then HAVING), so
//! cross-stage error precedence is preserved too. The differential
//! corpus in `tests/plan_cache.rs` holds both executors byte-identical.

use std::collections::{HashMap, HashSet};

use crate::ast::JoinKind;
use crate::bound::{eval_bound_batch, filter_bound_batch, BoundCtx, BoundExpr};
use crate::catalog::Catalog;
use crate::db::QueryResult;
use crate::error::SqlResult;
use crate::exec::select::{cmp_keys, combine_agg_values, TopK};
use crate::plan::{
    bound_usize, Access, AggPlan, Evals, InputPlan, JoinPlan, JoinSide, JoinStep, OrderKey,
    SelectPlan,
};
use crate::storage::{RowId, SortKey, Table};
use crate::sync::TableReadGuard;
use crate::types::Value;

/// Rows per filter batch. Large enough to amortize per-batch overhead,
/// small enough that the selection vector chunk stays cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// Minimal multiply-rotate hasher (FxHash-style) for the group-key
/// maps. Grouping probes the map once per input row, and SipHash is the
/// single largest cost of that probe; this trades DoS resistance (moot
/// for hashing a user's own stored values) for a few instructions per
/// key. Group *order* is tracked separately as first-seen order, so the
/// hash function can never affect results.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        // Fold the high half into the low bits. The multiply in
        // `write_u64` only propagates entropy upward, and integer keys
        // hashed through f64 bit patterns (see `Value::hash`) have
        // all-zero low mantissa bits — without this fold every small
        // int would share its low 38 hash bits, and the bucket index
        // (taken from the low bits) would degenerate to one chain.
        self.0 ^ (self.0 >> 32)
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

/// Per-connection reusable buffers for batch execution. Cleared (not
/// shrunk) between statements, so steady-state execution allocates
/// nothing here. Held by [`crate::db::Connection`] behind a `RefCell`;
/// re-entrancy is impossible because subqueries execute through the
/// interpreter (`run_select`), never through another compiled plan.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Selection vector: indexes (into the gathered row slice) of rows
    /// that passed the WHERE clause.
    sel: Vec<u32>,
    /// Group-key assembly buffer for the general hash-aggregate path.
    key_buf: Vec<Value>,
    /// Non-NULL aggregate argument values for the group being folded.
    agg_values: Vec<Value>,
}

/// Materialize the access path as *borrowed* rows, in exactly the
/// physical order the interpreter's scan would produce, ticking the
/// same scan counters. `pushdown` truncates an `IndexOrder` walk to the
/// first N ids (callers establish the no-filter / order-served / no-
/// distinct conditions that make this safe).
fn gather_rows<'t>(
    catalog: &Catalog,
    table: &'t Table,
    access: &Access,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    pushdown: Option<usize>,
) -> SqlResult<Vec<&'t [Value]>> {
    Ok(match access {
        Access::Full => {
            catalog.note_full_scan();
            let rows: Vec<&[Value]> = table.scan().map(|r| r.as_slice()).collect();
            catalog.note_full_scan_rows(rows.len() as u64);
            rows
        }
        Access::IndexEq { col, key } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let key = evals.eval(key, ctx)?;
            catalog.note_index_scan();
            if key.is_null() {
                Vec::new()
            } else {
                table
                    .index_eq_entries(index, &SortKey(vec![key]))
                    .into_iter()
                    .map(|(_, row)| row.as_slice())
                    .collect()
            }
        }
        Access::IndexRange {
            col,
            lower,
            upper,
            rev,
        } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let lower = match lower {
                Some((e, inc)) => Some((evals.eval(e, ctx)?, *inc)),
                None => None,
            };
            let upper = match upper {
                Some((e, inc)) => Some((evals.eval(e, ctx)?, *inc)),
                None => None,
            };
            catalog.note_range_scan();
            table
                .index_range_entries(
                    index,
                    lower.as_ref().map(|(v, i)| (v, *i)),
                    upper.as_ref().map(|(v, i)| (v, *i)),
                    *rev,
                    false,
                )
                .into_iter()
                .map(|(_, row)| row.as_slice())
                .collect()
        }
        Access::IndexOrder { col, desc } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let mut rows: Vec<&[Value]> = table
                .index_range_entries(index, None, None, *desc, true)
                .into_iter()
                .map(|(_, row)| row.as_slice())
                .collect();
            if let Some(n) = pushdown {
                rows.truncate(n);
            }
            catalog.note_range_scan();
            rows
        }
    })
}

/// Gather one join side as *borrowed* rows in rowid order — the order
/// the interpreter's full scan of that side would produce — applying
/// the pushed-down prefilter conjuncts during the walk and ticking the
/// scan counters for the access path actually used. Keys and bounds in
/// a join side's access are plan constants (they come from pushed
/// column-vs-constant comparisons), so evaluation cannot error on a row.
fn gather_side<'t>(
    catalog: &Catalog,
    table: &'t Table,
    side: &JoinSide,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
) -> SqlResult<Vec<&'t [Value]>> {
    let keep = |row: &[Value]| side.prefilter.iter().all(|c| c.passes(row));
    Ok(match &side.access {
        Access::Full => {
            catalog.note_full_scan();
            let mut walked = 0u64;
            let rows: Vec<&[Value]> = table
                .scan()
                .map(|r| r.as_slice())
                .inspect(|_| walked += 1)
                .filter(|r| keep(r))
                .collect();
            catalog.note_full_scan_rows(walked);
            rows
        }
        Access::IndexEq { col, key } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let key = evals.eval(key, ctx)?;
            catalog.note_index_scan();
            if key.is_null() {
                Vec::new()
            } else {
                // Entries for one key arrive rowid-ascending already.
                table
                    .index_eq_entries(index, &SortKey(vec![key]))
                    .into_iter()
                    .map(|(_, row)| row.as_slice())
                    .filter(|r| keep(r))
                    .collect()
            }
        }
        Access::IndexRange {
            col,
            lower,
            upper,
            rev,
        } => {
            let index = table.find_index(&[*col]).expect("plan epoch guards index");
            let lower = match lower {
                Some((e, inc)) => Some((evals.eval(e, ctx)?, *inc)),
                None => None,
            };
            let upper = match upper {
                Some((e, inc)) => Some((evals.eval(e, ctx)?, *inc)),
                None => None,
            };
            catalog.note_range_scan();
            // A range walk is key-major; re-sort to rowid order so the
            // side is indistinguishable from the interpreter's scan.
            let mut entries: Vec<(RowId, &[Value])> = table
                .index_range_entries(
                    index,
                    lower.as_ref().map(|(v, i)| (v, *i)),
                    upper.as_ref().map(|(v, i)| (v, *i)),
                    *rev,
                    false,
                )
                .into_iter()
                .map(|(id, row)| (id, row.as_slice()))
                .filter(|(_, r)| keep(r))
                .collect();
            entries.sort_unstable_by_key(|(id, _)| *id);
            entries.into_iter().map(|(_, r)| r).collect()
        }
        // Join sides never take an order-only walk: output order is
        // rowid order regardless of access, so order can't be served.
        Access::IndexOrder { .. } => unreachable!("join sides never compile IndexOrder"),
    })
}

/// Equi-key hash side of a join step. Single-column keys index the map
/// by borrowed `&Value` directly (no per-row allocation); composite
/// keys use borrowed slices. Rows with any NULL key column are never
/// inserted and NULL probes never match — SQL equality cannot match
/// NULL — which is also what gives LEFT/RIGHT pads their semantics.
enum JoinHash<'r> {
    One(FxMap<&'r Value, Vec<u32>>),
    Many(FxMap<Vec<&'r Value>, Vec<u32>>),
}

impl<'r> JoinHash<'r> {
    fn build(rows: &[&'r [Value]], cols: &[usize]) -> JoinHash<'r> {
        if let [c] = cols {
            let mut h: FxMap<&Value, Vec<u32>> = FxMap::default();
            for (i, r) in rows.iter().enumerate() {
                let k = &r[*c];
                if !k.is_null() {
                    h.entry(k).or_default().push(i as u32);
                }
            }
            JoinHash::One(h)
        } else {
            let mut h: FxMap<Vec<&Value>, Vec<u32>> = FxMap::default();
            for (i, r) in rows.iter().enumerate() {
                let key: Vec<&Value> = cols.iter().map(|&c| &r[c]).collect();
                if key.iter().any(|v| v.is_null()) {
                    continue;
                }
                h.entry(key).or_default().push(i as u32);
            }
            JoinHash::Many(h)
        }
    }

    /// Candidate row indexes for one probe row (empty on NULL keys).
    /// `probe` is a reusable key-assembly buffer for composite keys.
    fn candidates(&self, row: &'r [Value], cols: &[usize], probe: &mut Vec<&'r Value>) -> &[u32] {
        match self {
            JoinHash::One(h) => {
                let k = &row[cols[0]];
                if k.is_null() {
                    &[]
                } else {
                    h.get(k).map(Vec::as_slice).unwrap_or(&[])
                }
            }
            JoinHash::Many(h) => {
                probe.clear();
                probe.extend(cols.iter().map(|&c| &row[c]));
                if probe.iter().any(|v| v.is_null()) {
                    &[]
                } else {
                    h.get(probe.as_slice()).map(Vec::as_slice).unwrap_or(&[])
                }
            }
        }
    }
}

/// Emit the joined rows for one accumulated-left row given its
/// candidate right rows, replicating the interpreter's inner loop:
/// candidates in rowid order, residual conjuncts evaluated in flatten
/// order over the combined row (short-circuiting on the first false),
/// a LEFT pad inline when nothing matched. `skip_residual` is the
/// interpreter's fast pass — an equi-join whose ON had no residual.
#[allow(clippy::too_many_arguments)]
fn join_emit<I: IntoIterator<Item = u32>>(
    step: &JoinStep,
    l: &[Value],
    candidates: I,
    right: &[&[Value]],
    rw: usize,
    skip_residual: bool,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    right_matched: &mut [bool],
    out: &mut Vec<Vec<Value>>,
) -> SqlResult<()> {
    let mut matched = false;
    for ri in candidates {
        let r = right[ri as usize];
        let mut row = Vec::with_capacity(l.len() + rw);
        row.extend_from_slice(l);
        row.extend_from_slice(r);
        let ok = if skip_residual {
            true
        } else {
            let rc = BoundCtx {
                row: Some(&row),
                ..*ctx
            };
            let mut pass = true;
            for cond in &step.residual {
                if !evals.pred(cond, &rc)? {
                    pass = false;
                    break;
                }
            }
            pass
        };
        if ok {
            matched = true;
            right_matched[ri as usize] = true;
            out.push(row);
        }
    }
    if !matched && step.kind == JoinKind::Left {
        let mut row = Vec::with_capacity(l.len() + rw);
        row.extend_from_slice(l);
        row.extend(std::iter::repeat_n(Value::Null, rw));
        out.push(row);
    }
    Ok(())
}

/// Index nested-loop step: probe the new side's B-tree index once per
/// accumulated-left row instead of scanning it. `index_eq_entries` is
/// visibility-aware (MVCC) and compares keys with the same total order
/// `Value`'s `Eq`/`Hash` use, and its entries arrive rowid-ascending —
/// so the emitted rows are indistinguishable from the hash path's.
fn inl_join(
    catalog: &Catalog,
    step: &JoinStep,
    left: &[&[Value]],
    side: &JoinSide,
    table: &Table,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
) -> SqlResult<Vec<Vec<Value>>> {
    let (lcol, rcol) = step.pairs[0];
    let index = table.find_index(&[rcol]).expect("plan epoch guards index");
    catalog.note_index_nl_join();
    catalog.note_join_probe_rows(left.len() as u64);
    let skip_residual = step.residual.is_empty();
    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut probe = SortKey(vec![Value::Null]);
    for l in left {
        let key = &l[lcol];
        let mut matched = false;
        if !key.is_null() {
            probe.0[0] = key.clone();
            for (_, r) in table.index_eq_entries(index, &probe) {
                let r: &[Value] = r;
                if !side.prefilter.iter().all(|c| c.passes(r)) {
                    continue;
                }
                let mut row = Vec::with_capacity(l.len() + side.width);
                row.extend_from_slice(l);
                row.extend_from_slice(r);
                let ok = if skip_residual {
                    true
                } else {
                    let rc = BoundCtx {
                        row: Some(&row),
                        ..*ctx
                    };
                    let mut pass = true;
                    for cond in &step.residual {
                        if !evals.pred(cond, &rc)? {
                            pass = false;
                            break;
                        }
                    }
                    pass
                };
                if ok {
                    matched = true;
                    out.push(row);
                }
            }
        }
        if !matched && step.kind == JoinKind::Left {
            let mut row = Vec::with_capacity(l.len() + side.width);
            row.extend_from_slice(l);
            row.extend(std::iter::repeat_n(Value::Null, side.width));
            out.push(row);
        }
    }
    Ok(out)
}

/// Execute one join step: combine the accumulated left rows with the
/// next side. Strategy is chosen here, at execution time, because the
/// accumulated left cardinality is only known now — and every strategy
/// (hash either direction, index nested loop, nested loop) emits
/// byte-identical rows, so the choice is free.
fn exec_join_step(
    catalog: &Catalog,
    step: &JoinStep,
    left: &[&[Value]],
    side: &JoinSide,
    table: &Table,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
) -> SqlResult<Vec<Vec<Value>>> {
    let rw = side.width;

    // CROSS: plain product, no ON clause to evaluate.
    if step.kind == JoinKind::Cross {
        let right = gather_side(catalog, table, side, ctx, evals)?;
        let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
        for l in left {
            for r in &right {
                let mut row = Vec::with_capacity(l.len() + rw);
                row.extend_from_slice(l);
                row.extend_from_slice(r);
                out.push(row);
            }
        }
        return Ok(out);
    }

    // Index nested loop beats building a hash table when the outer side
    // is much smaller than the indexed side — probing k rows costs
    // O(k log n) against O(n) just to gather and hash the scan.
    if step.inl_eligible && left.len().saturating_mul(8) <= table.len() {
        return inl_join(catalog, step, left, side, table, ctx, evals);
    }

    let right = gather_side(catalog, table, side, ctx, evals)?;
    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut right_matched = vec![false; right.len()];

    if step.pairs.is_empty() {
        // No equi pairs: nested loop with the full ON as residual.
        for l in left {
            join_emit(
                step,
                l,
                0..right.len() as u32,
                &right,
                rw,
                false,
                ctx,
                evals,
                &mut right_matched,
                &mut out,
            )?;
        }
    } else {
        catalog.note_hash_join();
        let skip_residual = step.residual.is_empty();
        let lcols: Vec<usize> = step.pairs.iter().map(|(i, _)| *i).collect();
        let rcols: Vec<usize> = step.pairs.iter().map(|(_, j)| *j).collect();
        let mut probe: Vec<&Value> = Vec::with_capacity(step.pairs.len());
        if left.len() < right.len() {
            // Build on the smaller accumulated left, probe the right
            // scan, then replay the matches left-major so the output
            // order is exactly the probe-left order the interpreter
            // produces.
            catalog.note_join_build_rows(left.len() as u64);
            catalog.note_join_probe_rows(right.len() as u64);
            let hash = JoinHash::build(left, &lcols);
            let mut matches: Vec<(u32, u32)> = Vec::new();
            for (ri, r) in right.iter().enumerate() {
                for &li in hash.candidates(r, &rcols, &mut probe) {
                    matches.push((li, ri as u32));
                }
            }
            matches.sort_unstable();
            let mut pos = 0;
            for (li, l) in left.iter().enumerate() {
                let start = pos;
                while pos < matches.len() && matches[pos].0 as usize == li {
                    pos += 1;
                }
                join_emit(
                    step,
                    l,
                    matches[start..pos].iter().map(|&(_, ri)| ri),
                    &right,
                    rw,
                    skip_residual,
                    ctx,
                    evals,
                    &mut right_matched,
                    &mut out,
                )?;
            }
        } else {
            // Build on the right, probe left rows in order — the
            // interpreter's own shape.
            catalog.note_join_build_rows(right.len() as u64);
            catalog.note_join_probe_rows(left.len() as u64);
            let hash = JoinHash::build(&right, &rcols);
            for l in left {
                let cands = hash.candidates(l, &lcols, &mut probe);
                join_emit(
                    step,
                    l,
                    cands.iter().copied(),
                    &right,
                    rw,
                    skip_residual,
                    ctx,
                    evals,
                    &mut right_matched,
                    &mut out,
                )?;
            }
        }
    }

    // RIGHT pads append at the end, in right-scan order — exactly where
    // the interpreter puts rows whose right side never matched.
    if step.kind == JoinKind::Right {
        for (ri, r) in right.iter().enumerate() {
            if !right_matched[ri] {
                let mut row = Vec::with_capacity(step.left_width + rw);
                row.extend(std::iter::repeat_n(Value::Null, step.left_width));
                row.extend_from_slice(r);
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Execute a compiled join chain: acquire every side's table guard up
/// front (sorted unique-name order, so concurrent compiled joins can
/// never deadlock through the writer-starvation gate), gather each
/// side in rowid order, and fold the steps left-to-right. Returns
/// owned combined rows; the guards drop on return.
fn run_join(
    catalog: &Catalog,
    jp: &JoinPlan,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
) -> SqlResult<Vec<Vec<Value>>> {
    let mut names: Vec<String> = jp
        .sides
        .iter()
        .map(|s| s.table.to_ascii_lowercase())
        .collect();
    names.sort();
    names.dedup();
    let mut guards: Vec<TableReadGuard<'_, Table>> = Vec::with_capacity(names.len());
    for n in &names {
        guards.push(catalog.table(n)?);
    }
    let tables: Vec<&Table> = jp
        .sides
        .iter()
        .map(|s| {
            let i = names
                .binary_search(&s.table.to_ascii_lowercase())
                .expect("guard acquired above");
            &*guards[i]
        })
        .collect();

    catalog.note_pushed_predicates(jp.pushed);

    let left0 = gather_side(catalog, tables[0], &jp.sides[0], ctx, evals)?;
    let mut cur = exec_join_step(
        catalog,
        &jp.steps[0],
        &left0,
        &jp.sides[1],
        tables[1],
        ctx,
        evals,
    )?;
    for (i, step) in jp.steps.iter().enumerate().skip(1) {
        let view: Vec<&[Value]> = cur.iter().map(Vec::as_slice).collect();
        let next = exec_join_step(
            catalog,
            step,
            &view,
            &jp.sides[i + 1],
            tables[i + 1],
            ctx,
            evals,
        )?;
        drop(view);
        cur = next;
    }
    Ok(cur)
}

/// Run the WHERE clause batch-at-a-time into the selection vector.
/// Returns the number of filter passes. With no filter the selection is
/// the identity — every gathered row, in arrival order.
fn fill_selection(
    filter: &Option<BoundExpr>,
    ctx: &BoundCtx<'_>,
    rows: &[&[Value]],
    evals: &mut Evals,
    sel: &mut Vec<u32>,
) -> SqlResult<u64> {
    sel.clear();
    match filter {
        Some(pred) => {
            let mut passes = 0u64;
            for (ci, chunk) in rows.chunks(BATCH_SIZE).enumerate() {
                passes += 1;
                evals.0 += chunk.len() as u64;
                filter_bound_batch(pred, ctx, chunk, (ci * BATCH_SIZE) as u32, sel)?;
            }
            Ok(passes)
        }
        None => {
            sel.extend(0..rows.len() as u32);
            Ok(0)
        }
    }
}

/// Batch passes the fused projection stage amounts to: one pass per
/// projection and per row-sourced ORDER BY key, per [`BATCH_SIZE`]
/// chunk of the selection.
fn projection_passes(n_selected: usize, projections: usize, order: &[(OrderKey, bool)]) -> u64 {
    let row_keys = order
        .iter()
        .filter(|(k, _)| matches!(k, OrderKey::Row(_)))
        .count();
    (n_selected.div_ceil(BATCH_SIZE) as u64) * ((projections + row_keys) as u64)
}

/// Running state for one aggregate call site that folds *inline during
/// the grouping pass* — the true one-pass path. Eligible call sites are
/// `COUNT(*)` and non-DISTINCT `COUNT`/`SUM`/`AVG`/`MIN`/`MAX` over a
/// bare stored column; since those five are the only aggregates the
/// binder admits, every all-plain-column grouped query (the common
/// shape by far) aggregates in the same pass that assigns groups.
///
/// `update` is infallible by construction: the one aggregate error the
/// interpreter can raise (`SUM`/`AVG` over a non-numeric value) is
/// recorded as a `bad` flag and raised in [`Acc::finish`], which runs
/// group-major then spec-major — the exact order the interpreter
/// computes aggregates in — so the error surfaces for the same (group,
/// spec) with the same message.
#[derive(Clone)]
enum Acc {
    /// `COUNT(*)`: member rows, NULLs included.
    CountStar(i64),
    /// `COUNT(col)`: non-NULL members.
    Count {
        col: usize,
        n: i64,
    },
    /// `SUM(col)` / `AVG(col)` share one accumulator; `avg` picks the
    /// finish rule (and the error message).
    Sum {
        col: usize,
        avg: bool,
        total: f64,
        n: u64,
        all_int: bool,
        bad: bool,
    },
    /// `MIN(col)` keeps the first of equals, `MAX(col)` the last —
    /// matching the interpreter's `min_by`/`max_by` tie behavior.
    Min {
        col: usize,
        best: Option<Value>,
    },
    Max {
        col: usize,
        best: Option<Value>,
    },
}

impl Acc {
    /// `Some` when this spec can fold inline during grouping.
    fn of(spec: &crate::plan::BoundAggSpec) -> Option<Acc> {
        let col = match &spec.arg {
            // `COUNT(*)`: DISTINCT is irrelevant without an argument.
            None if spec.name == "COUNT" => return Some(Acc::CountStar(0)),
            Some(BoundExpr::Column(c)) if !spec.distinct => *c,
            _ => return None,
        };
        Some(match spec.name.as_str() {
            "COUNT" => Acc::Count { col, n: 0 },
            "SUM" | "AVG" => Acc::Sum {
                col,
                avg: spec.name == "AVG",
                total: 0.0,
                n: 0,
                all_int: true,
                bad: false,
            },
            "MIN" => Acc::Min { col, best: None },
            "MAX" => Acc::Max { col, best: None },
            _ => return None,
        })
    }

    fn update(&mut self, row: &[Value]) {
        match self {
            Acc::CountStar(n) => *n += 1,
            Acc::Count { col, n } => {
                if !row[*col].is_null() {
                    *n += 1;
                }
            }
            Acc::Sum {
                col,
                total,
                n,
                all_int,
                bad,
                ..
            } => {
                let v = &row[*col];
                if v.is_null() {
                    return;
                }
                match v.as_f64() {
                    Some(f) => {
                        *total += f;
                        *n += 1;
                        *all_int &= matches!(v, Value::Int(_));
                    }
                    None => *bad = true,
                }
            }
            Acc::Min { col, best } => {
                let v = &row[*col];
                if !v.is_null()
                    && best
                        .as_ref()
                        .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less)
                {
                    *best = Some(v.clone());
                }
            }
            Acc::Max { col, best } => {
                let v = &row[*col];
                if !v.is_null()
                    && best
                        .as_ref()
                        .is_none_or(|b| v.total_cmp(b) != std::cmp::Ordering::Less)
                {
                    *best = Some(v.clone());
                }
            }
        }
    }

    /// Finalize — produces exactly what [`combine_agg_values`] would
    /// over the same non-NULL values in member order.
    fn finish(&self) -> SqlResult<Value> {
        use crate::error::SqlError;
        Ok(match self {
            Acc::CountStar(n) | Acc::Count { n, .. } => Value::Int(*n),
            Acc::Sum {
                avg,
                total,
                n,
                all_int,
                bad,
                ..
            } => {
                let name = if *avg { "AVG" } else { "SUM" };
                if *bad {
                    return Err(SqlError::Semantic(format!(
                        "{name}() over non-numeric value"
                    )));
                } else if *n == 0 {
                    Value::Null
                } else if *avg {
                    Value::Float(*total / *n as f64)
                } else if *all_int {
                    Value::Int(*total as i64)
                } else {
                    Value::Float(*total)
                }
            }
            Acc::Min { best, .. } | Acc::Max { best, .. } => best.clone().unwrap_or(Value::Null),
        })
    }
}

/// Per-group state: representative first member (repr base-row values),
/// plus either inline accumulators (one-pass mode) or a member index
/// list (fallback mode for DISTINCT / computed arguments).
struct Group {
    first: Option<u32>,
    members: Vec<u32>,
    accs: Vec<Acc>,
}

impl Group {
    fn new(first: u32, inline: &Option<Vec<Acc>>) -> Group {
        Group {
            first: Some(first),
            members: Vec::new(),
            accs: inline.clone().unwrap_or_default(),
        }
    }
}

/// Fold one aggregate directly over a stored column's values for a
/// group's members — the no-DISTINCT fast path that skips collecting a
/// `Vec<Value>` per group. Produces exactly what
/// [`combine_agg_values`] would over the same non-NULL values in member
/// order: same empty-group NULLs, same Int/Float SUM typing, same
/// non-numeric error at the same member, and the same tie behavior
/// (MIN keeps the first of equals, MAX the last).
fn fold_column_agg(name: &str, rows: &[&[Value]], members: &[u32], col: usize) -> SqlResult<Value> {
    use crate::error::SqlError;
    let values = members
        .iter()
        .map(|&i| &rows[i as usize][col])
        .filter(|v| !v.is_null());
    match name {
        "COUNT" => Ok(Value::Int(values.count() as i64)),
        "SUM" | "AVG" => {
            let mut total = 0f64;
            let mut n = 0u64;
            let mut all_int = true;
            for v in values {
                total += v.as_f64().ok_or_else(|| {
                    SqlError::Semantic(format!("{name}() over non-numeric value"))
                })?;
                n += 1;
                all_int &= matches!(v, Value::Int(_));
            }
            if n == 0 {
                Ok(Value::Null)
            } else if name == "AVG" {
                Ok(Value::Float(total / n as f64))
            } else if all_int {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        "MIN" => {
            let mut best: Option<&Value> = None;
            for v in values {
                if best.is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less) {
                    best = Some(v);
                }
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        "MAX" => {
            let mut best: Option<&Value> = None;
            for v in values {
                if best.is_none_or(|b| v.total_cmp(b) != std::cmp::Ordering::Less) {
                    best = Some(v);
                }
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        other => Err(SqlError::Semantic(format!("unknown aggregate '{other}'"))),
    }
}

/// Shared output tail: DISTINCT → sort (or top-K drain) → OFFSET →
/// LIMIT. `out_rows` is `(projected row, order keys)`; `topk` is `Some`
/// when the rows were pushed through the bounded heap instead.
#[allow(clippy::too_many_arguments)]
fn finish_output(
    mut out_rows: Vec<(Vec<Value>, Vec<Value>)>,
    topk: Option<TopK>,
    distinct: bool,
    order_nonempty: bool,
    order_served: bool,
    descs: &[bool],
    offset: Option<usize>,
    limit: Option<usize>,
) -> Vec<Vec<Value>> {
    if distinct {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        out_rows.retain(|(r, _)| seen.insert(r.clone()));
    }
    let mut rows: Vec<Vec<Value>> = match topk {
        Some(t) => t.into_sorted_rows(),
        None => {
            if order_nonempty && !order_served {
                out_rows.sort_by(|(_, ka), (_, kb)| cmp_keys(ka, kb, descs));
            }
            out_rows.into_iter().map(|(r, _)| r).collect()
        }
    };
    if let Some(n) = offset {
        rows = rows.into_iter().skip(n).collect();
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
    rows
}

/// Execute a compiled plain `SELECT` batch-at-a-time. Mirrors the
/// interpreter's single-table pipeline stage for stage; the scan
/// counters (`index_scans`, `range_scans`, `full_scans`, `topk_sorts`)
/// tick exactly as on the interpreted path, plus the batch counters
/// (`batch_evals`, `batched_rows`).
pub fn run_select_batched(
    catalog: &Catalog,
    plan: &SelectPlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    scratch: &mut BatchScratch,
) -> SqlResult<QueryResult> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut evals = Evals(0);

    // OFFSET/LIMIT once per statement, before any row work.
    let offset = match &plan.offset {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "OFFSET")?),
        None => None,
    };
    let limit = match &plan.limit {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "LIMIT")?),
        None => None,
    };

    match &plan.input {
        InputPlan::Single { table, access } => {
            let table = catalog.table(table)?;

            // Limit pushdown into an order-serving index walk: with no
            // filter the id→row mapping is 1:1, so rows past
            // OFFSET+LIMIT can never reach the output.
            let pushdown = if plan.filter.is_none() && plan.order_served && !plan.distinct {
                limit.map(|n| n.saturating_add(offset.unwrap_or(0)))
            } else {
                None
            };

            let rows = gather_rows(catalog, &table, access, &ctx, &mut evals, pushdown)?;
            catalog.note_batched_rows(rows.len() as u64);
            select_tail(catalog, plan, &ctx, evals, scratch, &rows, offset, limit)
        }
        InputPlan::Join(jp) => {
            let joined = run_join(catalog, jp, &ctx, &mut evals)?;
            catalog.note_batched_rows(joined.len() as u64);
            let rows: Vec<&[Value]> = joined.iter().map(Vec::as_slice).collect();
            select_tail(catalog, plan, &ctx, evals, scratch, &rows, offset, limit)
        }
    }
}

/// The shared `SELECT` tail over gathered (or joined) input rows:
/// WHERE selection → fused projection/ORDER-key pass (optionally into a
/// top-K heap) → DISTINCT/sort/OFFSET/LIMIT. Joined inputs never have
/// `order_served` set, so the truncate and top-K conditions degrade to
/// the plain paths for them.
#[allow(clippy::too_many_arguments)]
fn select_tail(
    catalog: &Catalog,
    plan: &SelectPlan,
    ctx: &BoundCtx<'_>,
    mut evals: Evals,
    scratch: &mut BatchScratch,
    rows: &[&[Value]],
    offset: Option<usize>,
    limit: Option<usize>,
) -> SqlResult<QueryResult> {
    let mut passes = fill_selection(&plan.filter, ctx, rows, &mut evals, &mut scratch.sel)?;

    // Post-filter limit pushdown (mirrors the interpreter's truncate of
    // the kept set when the walk serves the order).
    if plan.order_served && !plan.distinct {
        if let Some(n) = limit {
            scratch.sel.truncate(n.saturating_add(offset.unwrap_or(0)));
        }
    }
    passes += projection_passes(scratch.sel.len(), plan.projections.len(), &plan.order);

    // Fused filter+project: projection reads storage rows through the
    // selection vector — no filtered intermediate is materialized.
    let descs: Vec<bool> = plan.order.iter().map(|(_, d)| *d).collect();
    let mut topk = match limit {
        Some(n) if !plan.order.is_empty() && !plan.order_served && !plan.distinct => {
            catalog.note_topk_sort();
            Some(TopK::new(
                n.saturating_add(offset.unwrap_or(0)),
                descs.clone(),
            ))
        }
        _ => None,
    };
    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(scratch.sel.len());
    for (seq, &i) in scratch.sel.iter().enumerate() {
        let row = rows[i as usize];
        let rc = BoundCtx {
            row: Some(row),
            ..*ctx
        };
        let mut out = Vec::with_capacity(plan.projections.len());
        for e in &plan.projections {
            out.push(match e {
                // Bare column: ordinal load, no evaluator dispatch.
                BoundExpr::Column(c) => {
                    evals.0 += 1;
                    row[*c].clone()
                }
                _ => evals.eval(e, &rc)?,
            });
        }
        let mut keys = Vec::with_capacity(plan.order.len());
        for (key, _) in &plan.order {
            keys.push(match key {
                OrderKey::Output(i) => out[*i].clone(),
                OrderKey::Row(e) => evals.eval(e, &rc)?,
            });
        }
        match &mut topk {
            Some(t) => t.push(keys, seq, out),
            None => out_rows.push((out, keys)),
        }
    }

    let rows = finish_output(
        out_rows,
        topk,
        plan.distinct,
        !plan.order.is_empty(),
        plan.order_served,
        &descs,
        offset,
        limit,
    );

    catalog.note_bound_evals(evals.0);
    catalog.note_batch_evals(passes);
    Ok(QueryResult {
        columns: plan.columns.clone(),
        rows,
    })
}

/// The staged grouped path: selection vector → grouping pass →
/// virtual-row build over already-gathered (or joined) input rows,
/// returning one completed virtual row per group. When every spec folds
/// a stored column (or is `COUNT(*)`), accumulation happens *inline*
/// during the grouping pass — the one-pass path — and no member lists
/// are built; only DISTINCT or computed arguments fall back to member
/// lists plus a second fold pass.
#[allow(clippy::too_many_arguments)]
fn run_agg_staged(
    catalog: &Catalog,
    plan: &AggPlan,
    ctx: &BoundCtx<'_>,
    evals: &mut Evals,
    passes: &mut u64,
    scratch: &mut BatchScratch,
    rows: &[&[Value]],
    inline: &Option<Vec<Acc>>,
    single_col: Option<usize>,
) -> SqlResult<Vec<Vec<Value>>> {
    let one_pass = inline.is_some();
    *passes += fill_selection(&plan.filter, ctx, rows, evals, &mut scratch.sel)?;

    // Pass 1 — group keys over the selection, row-major, groups kept in
    // first-seen order.
    let mut grouped: Vec<Group> = Vec::new();
    if let Some(c) = single_col {
        // Fast path: the key is one stored column — probe the table by
        // reference and clone the value only when a new group appears.
        let mut groups: FxMap<Value, usize> = FxMap::default();
        evals.0 += scratch.sel.len() as u64;
        *passes += scratch.sel.len().div_ceil(BATCH_SIZE) as u64;
        for &i in &scratch.sel {
            let row = rows[i as usize];
            let g = match groups.get(&row[c]) {
                Some(&g) => g,
                None => {
                    let g = grouped.len();
                    groups.insert(row[c].clone(), g);
                    grouped.push(Group::new(i, inline));
                    g
                }
            };
            let st = &mut grouped[g];
            if one_pass {
                for a in &mut st.accs {
                    a.update(row);
                }
            } else {
                st.members.push(i);
            }
        }
    } else {
        let mut groups: FxMap<Vec<Value>, usize> = FxMap::default();
        *passes += (scratch.sel.len().div_ceil(BATCH_SIZE) as u64) * (plan.group_by.len() as u64);
        for &i in &scratch.sel {
            let row = rows[i as usize];
            let rc = BoundCtx {
                row: Some(row),
                ..*ctx
            };
            scratch.key_buf.clear();
            for g in &plan.group_by {
                let v = evals.eval(g, &rc)?;
                scratch.key_buf.push(v);
            }
            let g = match groups.get(scratch.key_buf.as_slice()) {
                Some(&g) => g,
                None => {
                    let g = grouped.len();
                    groups.insert(scratch.key_buf.clone(), g);
                    grouped.push(Group::new(i, inline));
                    g
                }
            };
            let st = &mut grouped[g];
            if one_pass {
                for a in &mut st.accs {
                    a.update(row);
                }
            } else {
                st.members.push(i);
            }
        }
    }
    // No rows and no GROUP BY → one empty group (global aggregates).
    if grouped.is_empty() && plan.group_by.is_empty() {
        grouped.push(Group {
            first: None,
            members: Vec::new(),
            accs: inline.clone().unwrap_or_default(),
        });
    }
    catalog.note_hash_agg();
    if one_pass {
        // Inline accumulation visits every selected row once per
        // argument-bearing spec — same eval count the second pass would
        // have ticked, just earned during grouping.
        let arg_specs = plan.specs.iter().filter(|s| s.arg.is_some()).count() as u64;
        evals.0 += scratch.sel.len() as u64 * arg_specs;
        *passes += scratch.sel.len().div_ceil(BATCH_SIZE) as u64 * arg_specs;
    }

    // Pass 2 — one virtual row per group: representative base row
    // values, then one slot per aggregate. Group-major, spec-major,
    // exactly the interpreter's computation order. In one-pass mode
    // this only finalizes accumulators; otherwise aggregates are folded
    // over the member lists here.
    let mut vrows: Vec<Vec<Value>> = Vec::with_capacity(grouped.len());
    for st in &grouped {
        let mut vrow = Vec::with_capacity(plan.base_width + plan.specs.len());
        match st.first {
            Some(i) => vrow.extend(rows[i as usize].iter().cloned()),
            None => vrow.extend(std::iter::repeat_n(Value::Null, plan.base_width)),
        }
        if one_pass {
            for acc in &st.accs {
                vrow.push(acc.finish()?);
            }
        } else {
            let members = &st.members;
            for spec in &plan.specs {
                let v = match &spec.arg {
                    // COUNT(*) counts member rows directly (DISTINCT is
                    // irrelevant without an argument).
                    None => Value::Int(members.len() as i64),
                    // Aggregate over a bare stored column without
                    // DISTINCT: fold the values in place, no clone per
                    // member.
                    Some(BoundExpr::Column(c)) if !spec.distinct => {
                        evals.0 += members.len() as u64;
                        *passes += 1;
                        fold_column_agg(&spec.name, rows, members, *c)?
                    }
                    Some(arg) => {
                        scratch.agg_values.clear();
                        evals.0 += members.len() as u64;
                        *passes += 1;
                        eval_bound_batch(arg, ctx, rows, members, &mut scratch.agg_values)?;
                        scratch.agg_values.retain(|v| !v.is_null());
                        combine_agg_values(&spec.name, &mut scratch.agg_values, spec.distinct)?
                    }
                };
                vrow.push(v);
            }
        }
        vrows.push(vrow);
    }
    Ok(vrows)
}

/// Execute a compiled grouped `SELECT` through the one-pass hash
/// aggregator. Stage order replicates the interpreter exactly: WHERE
/// over all rows, group keys over all surviving rows (first-seen group
/// order), aggregates group-major then spec-major, HAVING group-major
/// over completed virtual rows, then the shared projection tail.
///
/// Column-arg aggregates accumulate inline during the grouping pass
/// ([`Acc`]); that is unobservable because inline updates are
/// infallible — the sole aggregate error is deferred and raised in
/// finalization order, which *is* the interpreter's group-major,
/// spec-major computation order.
pub fn run_agg_plan(
    catalog: &Catalog,
    plan: &AggPlan,
    params: &[Value],
    named_params: &HashMap<String, Value>,
    scratch: &mut BatchScratch,
) -> SqlResult<QueryResult> {
    let ctx = BoundCtx {
        catalog,
        params,
        named_params,
        row: None,
    };
    let mut evals = Evals(0);

    let offset = match &plan.offset {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "OFFSET")?),
        None => None,
    };
    let limit = match &plan.limit {
        Some(e) => Some(bound_usize(e, &ctx, &mut evals, "LIMIT")?),
        None => None,
    };

    let inline: Option<Vec<Acc>> = plan.specs.iter().map(Acc::of).collect();
    let single_col = match plan.group_by.as_slice() {
        [BoundExpr::Column(c)] => Some(*c),
        _ => None,
    };
    let mut cmps = Vec::new();
    let tight_filter = match &plan.filter {
        None => true,
        Some(p) => crate::bound::flatten_col_cmps(p, &ctx, &mut cmps),
    };
    let mut passes = 0u64;

    // Fully-streamed specialization (single-table full scans only):
    // full scan + comparison-only filter + single stored-column key +
    // inline accumulators means the whole aggregation folds in ONE walk
    // over the table — no gathered row vector, no selection vector.
    // Fusing the stages is unobservable because every per-row step here
    // is infallible (comparisons and column loads cannot error;
    // accumulation defers its sole error to finalization), so no
    // cross-stage error precedence exists to disturb, and groups still
    // appear in first-seen scan order.
    let mut vrows: Vec<Vec<Value>> = match &plan.input {
        InputPlan::Join(jp) => {
            let joined = run_join(catalog, jp, &ctx, &mut evals)?;
            catalog.note_batched_rows(joined.len() as u64);
            let rows: Vec<&[Value]> = joined.iter().map(Vec::as_slice).collect();
            run_agg_staged(
                catalog,
                plan,
                &ctx,
                &mut evals,
                &mut passes,
                scratch,
                &rows,
                &inline,
                single_col,
            )?
        }
        InputPlan::Single { table, access } => {
            let table = catalog.table(table)?;
            let streamable = match (single_col, &inline) {
                (Some(c), Some(tmpl)) if matches!(access, Access::Full) && tight_filter => {
                    Some((c, tmpl))
                }
                _ => None,
            };
            if let Some((c, tmpl)) = streamable {
                catalog.note_full_scan();
                let mut groups: FxMap<Value, usize> = FxMap::default();
                // (representative base row, accumulators), first-seen order.
                let mut sgroups: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();
                let mut walked = 0u64;
                let mut kept = 0u64;
                for row in table.scan() {
                    walked += 1;
                    let row: &[Value] = row;
                    if !cmps.iter().all(|m| m.passes(row)) {
                        continue;
                    }
                    kept += 1;
                    let g = match groups.get(&row[c]) {
                        Some(&g) => g,
                        None => {
                            let g = sgroups.len();
                            groups.insert(row[c].clone(), g);
                            sgroups.push((row.to_vec(), tmpl.clone()));
                            g
                        }
                    };
                    for a in &mut sgroups[g].1 {
                        a.update(row);
                    }
                }
                catalog.note_full_scan_rows(walked);
                catalog.note_batched_rows(walked);
                catalog.note_hash_agg();
                if plan.filter.is_some() {
                    evals.0 += walked;
                    passes += walked.div_ceil(BATCH_SIZE as u64);
                }
                let arg_specs = plan.specs.iter().filter(|s| s.arg.is_some()).count() as u64;
                evals.0 += kept * (1 + arg_specs);
                passes += kept.div_ceil(BATCH_SIZE as u64) * (1 + arg_specs);

                // Finalize group-major, spec-major — the interpreter's
                // aggregate computation (and error) order.
                let mut vrows = Vec::with_capacity(sgroups.len());
                for (repr, accs) in sgroups {
                    let mut vrow = repr;
                    vrow.reserve(plan.specs.len());
                    for acc in &accs {
                        vrow.push(acc.finish()?);
                    }
                    vrows.push(vrow);
                }
                vrows
            } else {
                let rows = gather_rows(catalog, &table, access, &ctx, &mut evals, None)?;
                catalog.note_batched_rows(rows.len() as u64);
                run_agg_staged(
                    catalog,
                    plan,
                    &ctx,
                    &mut evals,
                    &mut passes,
                    scratch,
                    &rows,
                    &inline,
                    single_col,
                )?
            }
        }
    };

    // HAVING — group-major, after every aggregate has been computed.
    if let Some(h) = &plan.having {
        passes += vrows.len().div_ceil(BATCH_SIZE) as u64;
        let mut kept = Vec::with_capacity(vrows.len());
        for vrow in vrows {
            let rc = BoundCtx {
                row: Some(&vrow),
                ..ctx
            };
            if evals.pred(h, &rc)? {
                kept.push(vrow);
            }
        }
        vrows = kept;
    }

    // Projection tail over virtual rows. Grouped queries never have the
    // order served by the access path.
    passes += projection_passes(vrows.len(), plan.projections.len(), &plan.order);
    let descs: Vec<bool> = plan.order.iter().map(|(_, d)| *d).collect();
    let mut topk = match limit {
        Some(n) if !plan.order.is_empty() && !plan.distinct => {
            catalog.note_topk_sort();
            Some(TopK::new(
                n.saturating_add(offset.unwrap_or(0)),
                descs.clone(),
            ))
        }
        _ => None,
    };
    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(vrows.len());
    for (seq, vrow) in vrows.iter().enumerate() {
        let rc = BoundCtx {
            row: Some(vrow),
            ..ctx
        };
        let mut out = Vec::with_capacity(plan.projections.len());
        for e in &plan.projections {
            out.push(match e {
                BoundExpr::Column(c) => {
                    evals.0 += 1;
                    vrow[*c].clone()
                }
                _ => evals.eval(e, &rc)?,
            });
        }
        let mut keys = Vec::with_capacity(plan.order.len());
        for (key, _) in &plan.order {
            keys.push(match key {
                OrderKey::Output(i) => out[*i].clone(),
                OrderKey::Row(e) => evals.eval(e, &rc)?,
            });
        }
        match &mut topk {
            Some(t) => t.push(keys, seq, out),
            None => out_rows.push((out, keys)),
        }
    }

    let rows = finish_output(
        out_rows,
        topk,
        plan.distinct,
        !plan.order.is_empty(),
        false,
        &descs,
        offset,
        limit,
    );

    catalog.note_bound_evals(evals.0);
    catalog.note_batch_evals(passes);
    Ok(QueryResult {
        columns: plan.columns.clone(),
        rows,
    })
}
