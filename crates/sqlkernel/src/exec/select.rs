//! `SELECT` execution: scan → join → filter → group/aggregate → project →
//! distinct → order → limit.
//!
//! The executor is a straightforward materializing pipeline. Joins use a
//! hash join whenever the `ON` clause contains at least one pure
//! left-column = right-column equality; remaining conjuncts become a
//! residual filter. Grouped aggregation hashes on the `GROUP BY` key
//! values and pre-computes every aggregate call site, which the shared
//! expression evaluator then reads back by key.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::*;
use crate::catalog::Catalog;
use crate::db::QueryResult;
use crate::error::{SqlError, SqlResult};
use crate::expr::{aggregate_key, eval, eval_predicate, is_aggregate_name, EvalCtx, RowSchema};
use crate::storage::Row;
use crate::types::Value;

/// One logical row to project: the source row plus its pre-computed
/// aggregate values (grouped queries only). The source row is shared with
/// the pipeline input, so grouping never deep-copies row data.
type GroupedRow = (Arc<Row>, Option<HashMap<String, Value>>);

/// A materialized intermediate row set. Rows are `Arc`-shared: a base
/// table scan hands out pointers to stored rows, and derived rows (joins,
/// views, subqueries) are allocated once and shared from then on.
#[derive(Debug, Clone)]
pub(crate) struct Rows {
    pub schema: RowSchema,
    pub rows: Vec<Arc<Row>>,
}

/// Run a `SELECT` and materialize its result.
pub fn run_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<QueryResult> {
    if !stmt.unions.is_empty() {
        return run_union(catalog, stmt, params, named_params);
    }

    let ctx = EvalCtx {
        catalog,
        params,
        named_params,
        row: None,
        aggregates: None,
    };

    // OFFSET / LIMIT are row-independent: evaluate them exactly once per
    // statement, up front. Negative values are rejected here.
    let offset = match &stmt.offset {
        Some(e) => Some(const_usize(e, &ctx, "OFFSET")?),
        None => None,
    };
    let limit = match &stmt.limit {
        Some(e) => Some(const_usize(e, &ctx, "LIMIT")?),
        None => None,
    };

    // 1. FROM — with an index fast path (point lookup or range walk) for
    //    single-table statements. A range walk emits rows in key order
    //    and reports that order, letting an ORDER BY over the same column
    //    skip the sort below.
    let (mut input, index_order) = match &stmt.from {
        Some(from) if from.joins.is_empty() => {
            match try_index_scan(
                catalog,
                from,
                stmt.where_clause.as_ref(),
                &stmt.order_by,
                &ctx,
            )? {
                Some((rows, ord)) => (rows, ord),
                None => (build_from(catalog, from, &ctx)?, None),
            }
        }
        Some(from) => (build_from(catalog, from, &ctx)?, None),
        None => (
            Rows {
                schema: RowSchema::empty(),
                rows: vec![Arc::new(Vec::new())],
            },
            None,
        ),
    };

    // 2. WHERE
    if let Some(pred) = &stmt.where_clause {
        if pred.contains_aggregate() {
            return Err(SqlError::Semantic(
                "aggregates are not allowed in WHERE".into(),
            ));
        }
        let mut kept = Vec::with_capacity(input.rows.len());
        for row in input.rows {
            let rc = ctx.with_row(&input.schema, &row);
            if eval_predicate(pred, &rc)? {
                kept.push(row);
            }
        }
        input.rows = kept;
    }

    // 3. GROUP BY / aggregates
    let needs_grouping = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());

    // Each logical row to project: (source row, optional aggregate map).
    let groups: Vec<GroupedRow> = if needs_grouping {
        group_rows(stmt, &input, &ctx)?
    } else {
        input.rows.iter().cloned().map(|r| (r, None)).collect()
    };

    // 3b. HAVING
    let groups: Vec<GroupedRow> = if let Some(having) = &stmt.having {
        let mut kept = Vec::new();
        for (row, aggs) in groups {
            let rc = EvalCtx {
                catalog,
                params,
                named_params,
                row: Some((&input.schema, &row)),
                aggregates: aggs.as_ref(),
            };
            if eval_predicate(having, &rc)? {
                kept.push((row, aggs));
            }
        }
        kept
    } else {
        groups
    };

    // 4. Projection (also computes ORDER BY keys against source rows).
    let (columns, proj_exprs) = projection_plan(stmt, &input.schema)?;

    // Did an index range walk already emit rows in ORDER BY order?
    let order_served = !needs_grouping
        && stmt.order_by.len() == 1
        && index_order.is_some_and(|(col, rev)| {
            stmt.order_by[0].desc == rev
                && order_targets_column(
                    &stmt.order_by[0].expr,
                    &columns,
                    &proj_exprs,
                    &input.schema,
                    col,
                )
        });

    // Limit pushdown: once WHERE/HAVING/grouping have run, nothing below
    // drops or reorders rows when the scan already serves the ORDER BY
    // (and DISTINCT is absent), so only the first OFFSET+LIMIT candidates
    // can reach the output.
    let mut groups = groups;
    if order_served && !stmt.distinct {
        if let Some(n) = limit {
            groups.truncate(n.saturating_add(offset.unwrap_or(0)));
        }
    }

    // ORDER BY + LIMIT with no index order: accumulate through a bounded
    // top-K heap instead of materialize-then-sort. (DISTINCT must see
    // every row before truncation, so it keeps the full sort.)
    let descs: Vec<bool> = stmt.order_by.iter().map(|o| o.desc).collect();
    let mut topk = match limit {
        Some(n) if !stmt.order_by.is_empty() && !order_served && !stmt.distinct => {
            catalog.note_topk_sort();
            Some(TopK::new(
                n.saturating_add(offset.unwrap_or(0)),
                descs.clone(),
            ))
        }
        _ => None,
    };

    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(groups.len());
    for (seq, (row, aggs)) in groups.iter().enumerate() {
        let rc = EvalCtx {
            catalog,
            params,
            named_params,
            row: Some((&input.schema, row)),
            aggregates: aggs.as_ref(),
        };
        let mut out = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            out.push(eval(e, &rc)?);
        }
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for item in &stmt.order_by {
            keys.push(order_key(&item.expr, &columns, &out, &rc)?);
        }
        match &mut topk {
            Some(t) => t.push(keys, seq, out),
            None => out_rows.push((out, keys)),
        }
    }

    // 5. DISTINCT
    if stmt.distinct {
        let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
        out_rows.retain(|(r, _)| seen.insert(r.clone()));
    }

    // 6. ORDER BY
    let mut rows: Vec<Vec<Value>> = match topk {
        Some(t) => t.into_sorted_rows(),
        None => {
            if !stmt.order_by.is_empty() && !order_served {
                out_rows.sort_by(|(_, ka), (_, kb)| cmp_keys(ka, kb, &descs));
            }
            out_rows.into_iter().map(|(r, _)| r).collect()
        }
    };

    // 7. OFFSET / LIMIT
    if let Some(n) = offset {
        rows = rows.into_iter().skip(n).collect();
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }

    Ok(QueryResult { columns, rows })
}

/// Execute a select with `UNION` arms: run every core, combine, then
/// apply the trailing DISTINCT-like dedup, ORDER BY (output columns or
/// ordinals only) and LIMIT/OFFSET.
fn run_union(
    catalog: &Catalog,
    stmt: &SelectStmt,
    params: &[Value],
    named_params: &HashMap<String, Value>,
) -> SqlResult<QueryResult> {
    let mut head = stmt.clone();
    head.unions = Vec::new();
    head.order_by = Vec::new();
    head.limit = None;
    head.offset = None;

    let ctx = EvalCtx {
        catalog,
        params,
        named_params,
        row: None,
        aggregates: None,
    };
    // As in `run_select`: evaluate OFFSET / LIMIT exactly once, up front.
    let offset = match &stmt.offset {
        Some(e) => Some(const_usize(e, &ctx, "OFFSET")?),
        None => None,
    };
    let limit = match &stmt.limit {
        Some(e) => Some(const_usize(e, &ctx, "LIMIT")?),
        None => None,
    };

    let mut combined = run_select(catalog, &head, params, named_params)?;
    for arm in &stmt.unions {
        let rs = run_select(catalog, &arm.select, params, named_params)?;
        if rs.columns.len() != combined.columns.len() {
            return Err(SqlError::Semantic(format!(
                "UNION arms have {} and {} columns",
                combined.columns.len(),
                rs.columns.len()
            )));
        }
        combined.rows.extend(rs.rows);
        if !arm.all {
            let mut seen = std::collections::HashSet::new();
            combined.rows.retain(|r| seen.insert(r.clone()));
        }
    }

    if !stmt.order_by.is_empty() {
        // Keys must reference output columns (by name or ordinal).
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(combined.rows.len());
        for row in combined.rows {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for item in &stmt.order_by {
                let key = match &item.expr {
                    Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= row.len() => {
                        row[*n as usize - 1].clone()
                    }
                    Expr::Column { table: None, name } => {
                        let i = combined
                            .columns
                            .iter()
                            .position(|c| c.eq_ignore_ascii_case(name))
                            .ok_or_else(|| {
                                SqlError::Semantic(format!(
                                    "ORDER BY after UNION must name an output column ('{name}')"
                                ))
                            })?;
                        row[i].clone()
                    }
                    _ => {
                        return Err(SqlError::Semantic(
                            "ORDER BY after UNION supports output columns and ordinals only".into(),
                        ))
                    }
                };
                keys.push(key);
            }
            keyed.push((row, keys));
        }
        let descs: Vec<bool> = stmt.order_by.iter().map(|o| o.desc).collect();
        keyed.sort_by(|(_, ka), (_, kb)| cmp_keys(ka, kb, &descs));
        combined = QueryResult {
            columns: combined.columns,
            rows: keyed.into_iter().map(|(r, _)| r).collect(),
        };
    }

    if let Some(n) = offset {
        combined.rows = combined.rows.into_iter().skip(n).collect();
    }
    if let Some(n) = limit {
        combined.rows.truncate(n);
    }
    Ok(combined)
}

pub(crate) fn const_usize(e: &Expr, ctx: &EvalCtx<'_>, what: &str) -> SqlResult<usize> {
    match eval(e, ctx)? {
        Value::Int(n) if n >= 0 => Ok(n as usize),
        other => Err(SqlError::Semantic(format!(
            "{what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

/// Compute one ORDER BY sort key. Resolution order: ordinal literal →
/// output alias → source-row expression.
fn order_key(
    expr: &Expr,
    out_columns: &[String],
    out_row: &[Value],
    rc: &EvalCtx<'_>,
) -> SqlResult<Value> {
    if let Expr::Literal(Value::Int(n)) = expr {
        let i = *n;
        if i >= 1 && (i as usize) <= out_row.len() {
            return Ok(out_row[i as usize - 1].clone());
        }
        return Err(SqlError::Semantic(format!(
            "ORDER BY ordinal {i} out of range"
        )));
    }
    if let Expr::Column { table: None, name } = expr {
        if let Some(i) = out_columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
        {
            return Ok(out_row[i].clone());
        }
    }
    eval(expr, rc)
}

/// Expand the projection list into output column names + expressions.
/// Shared with the plan compiler, which binds the expanded expressions.
pub(crate) fn projection_plan(
    stmt: &SelectStmt,
    schema: &RowSchema,
) -> SqlResult<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &stmt.projections {
        match item {
            SelectItem::Wildcard => {
                if schema.is_empty() {
                    return Err(SqlError::Semantic("SELECT * without FROM".into()));
                }
                for (binding, name) in schema.columns() {
                    columns.push(name.clone());
                    exprs.push(Expr::Column {
                        table: binding.clone(),
                        name: name.clone(),
                    });
                }
            }
            SelectItem::QualifiedWildcard(binding) => {
                let positions = schema.binding_positions(binding);
                if positions.is_empty() {
                    return Err(SqlError::NotFound(format!("table alias '{binding}'")));
                }
                for i in positions {
                    let (b, name) = &schema.columns()[i];
                    columns.push(name.clone());
                    exprs.push(Expr::Column {
                        table: b.clone(),
                        name: name.clone(),
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => derive_column_name(expr, columns.len()),
                };
                columns.push(name);
                exprs.push(expr.clone());
            }
        }
    }
    Ok((columns, exprs))
}

fn derive_column_name(expr: &Expr, ordinal: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{}", ordinal + 1),
    }
}

/// Rows produced by an index scan, plus `(column ordinal, descending)`
/// when the access path already emitted them in `ORDER BY` order.
type ServedScan = (Rows, Option<(usize, bool)>);

/// Index fast path: for single-table statements, serve the scan through a
/// B-tree index instead of a full walk — a point lookup for an equality
/// conjunct, a range walk for `<`/`<=`/`>`/`>=`/`BETWEEN` conjuncts, or a
/// whole-index walk when only an `ORDER BY` over an indexed column asks
/// for key order. The full WHERE still runs afterwards, so this is purely
/// an access-path optimization. Range and whole-index walks emit rows in
/// key order and return `Some((col, desc))` so the caller can skip the
/// sort. Returns `None` when inapplicable.
fn try_index_scan(
    catalog: &Catalog,
    from: &FromClause,
    where_clause: Option<&Expr>,
    order_by: &[OrderItem],
    ctx: &EvalCtx<'_>,
) -> SqlResult<Option<ServedScan>> {
    let TableSource::Named(name) = &from.base.source else {
        return Ok(None);
    };
    if let Some(pred) = where_clause {
        if pred.contains_aggregate() {
            return Ok(None);
        }
    }
    // Views (and unknown names) fall through to the general scan path,
    // which produces the proper view expansion or error.
    let Ok(table) = catalog.table(name) else {
        return Ok(None);
    };
    let binding = from.base.binding_name().unwrap_or(name).to_string();

    let mut conjuncts = Vec::new();
    if let Some(pred) = where_clause {
        flatten_and(pred, &mut conjuncts);
    }
    let schema = RowSchema::new(
        table
            .schema
            .columns
            .iter()
            .map(|c| (Some(binding.clone()), c.name.clone()))
            .collect(),
    );

    // Equality probe first: a point lookup beats any range walk.
    if let Some((col, value_expr)) = find_eq_candidate(&conjuncts, &binding, &table) {
        let index = table.find_index(&[col]).expect("candidate implies index");
        let key = eval(value_expr, ctx)?;
        catalog.note_index_scan();
        // `col = NULL` is never true.
        let rows: Vec<Arc<Row>> = if key.is_null() {
            Vec::new()
        } else {
            table
                .index_eq_entries(index, &crate::storage::SortKey(vec![key]))
                .into_iter()
                .map(|(_, row)| Arc::clone(row))
                .collect()
        };
        return Ok(Some((Rows { schema, rows }, None)));
    }

    let order_hint = naive_order_hint(order_by, &binding, &table);

    // Range walk over the first indexed column with a range conjunct.
    if let Some(spec) = find_range_candidate(&conjuncts, &binding, &table) {
        let index = table
            .find_index(&[spec.col])
            .expect("candidate implies index");
        let lower = match &spec.lower {
            Some((e, inc)) => Some((eval(e, ctx)?, *inc)),
            None => None,
        };
        let upper = match &spec.upper {
            Some((e, inc)) => Some((eval(e, ctx)?, *inc)),
            None => None,
        };
        // Walk backwards when a single-item ORDER BY … DESC targets the
        // range column, so the emission order serves the sort.
        let rev = order_hint.is_some_and(|(c, desc)| c == spec.col && desc);
        let rows: Vec<Arc<Row>> = table
            .index_range_entries(
                index,
                lower.as_ref().map(|(v, i)| (v, *i)),
                upper.as_ref().map(|(v, i)| (v, *i)),
                rev,
                false,
            )
            .into_iter()
            .map(|(_, row)| Arc::clone(row))
            .collect();
        catalog.note_range_scan();
        return Ok(Some((Rows { schema, rows }, Some((spec.col, rev)))));
    }

    // Pure ORDER BY over an indexed column: a whole-index walk emits all
    // rows already sorted — NULL keys included, in their NULLS-first
    // (or, descending, NULLS-last) sort position.
    if let Some((col, desc)) = order_hint {
        if let Some(index) = table.find_index(&[col]) {
            let rows: Vec<Arc<Row>> = table
                .index_range_entries(index, None, None, desc, true)
                .into_iter()
                .map(|(_, row)| Arc::clone(row))
                .collect();
            catalog.note_range_scan();
            return Ok(Some((Rows { schema, rows }, Some((col, desc)))));
        }
    }
    Ok(None)
}

/// First conjunct of the form `col = row-independent-expr` (either side)
/// over a column with a single-column index. Shared with the plan
/// compiler, which must pick the same access path as the interpreter so
/// both emit rows in the same order.
pub(crate) fn find_eq_candidate<'a>(
    conjuncts: &'a [Expr],
    binding: &str,
    table: &crate::storage::Table,
) -> Option<(usize, &'a Expr)> {
    for c in conjuncts {
        let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        // One side must be a column of this table, the other a
        // row-independent expression.
        let (col, value_expr) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column { table: t, name: n }, e) if is_row_independent(e) => {
                match resolve_local(binding, t.as_deref(), n, table) {
                    Some(pos) => (pos, e),
                    None => continue,
                }
            }
            (e, Expr::Column { table: t, name: n }) if is_row_independent(e) => {
                match resolve_local(binding, t.as_deref(), n, table) {
                    Some(pos) => (pos, e),
                    None => continue,
                }
            }
            _ => continue,
        };
        if table.find_index(&[col]).is_some() {
            return Some((col, value_expr));
        }
    }
    None
}

/// What one conjunct contributes to a single-column range. Bounds are
/// `(expr, inclusive)`.
enum RangeConstraint<'a> {
    Lower(&'a Expr, bool),
    Upper(&'a Expr, bool),
    Both((&'a Expr, bool), (&'a Expr, bool)),
}

fn range_conjunct<'a>(
    c: &'a Expr,
    binding: &str,
    table: &crate::storage::Table,
) -> Option<(usize, RangeConstraint<'a>)> {
    match c {
        Expr::Binary { left, op, right }
            if matches!(op, BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) =>
        {
            // col <op> value
            if let Expr::Column { table: t, name: n } = left.as_ref() {
                if is_row_independent(right) {
                    let col = resolve_local(binding, t.as_deref(), n, table)?;
                    let rc = match op {
                        BinOp::Lt => RangeConstraint::Upper(right, false),
                        BinOp::LtEq => RangeConstraint::Upper(right, true),
                        BinOp::Gt => RangeConstraint::Lower(right, false),
                        BinOp::GtEq => RangeConstraint::Lower(right, true),
                        _ => unreachable!(),
                    };
                    return Some((col, rc));
                }
            }
            // value <op> col — same constraint with the sides flipped.
            if let Expr::Column { table: t, name: n } = right.as_ref() {
                if is_row_independent(left) {
                    let col = resolve_local(binding, t.as_deref(), n, table)?;
                    let rc = match op {
                        BinOp::Lt => RangeConstraint::Lower(left, false),
                        BinOp::LtEq => RangeConstraint::Lower(left, true),
                        BinOp::Gt => RangeConstraint::Upper(left, false),
                        BinOp::GtEq => RangeConstraint::Upper(left, true),
                        _ => unreachable!(),
                    };
                    return Some((col, rc));
                }
            }
            None
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let Expr::Column { table: t, name: n } = expr.as_ref() {
                if is_row_independent(low) && is_row_independent(high) {
                    let col = resolve_local(binding, t.as_deref(), n, table)?;
                    return Some((col, RangeConstraint::Both((low, true), (high, true))));
                }
            }
            None
        }
        _ => None,
    }
}

/// A resolved range-scan candidate: the indexed column plus at most one
/// lower and one upper bound taken from the conjuncts. Remaining
/// conjuncts (including further bounds on the same column) stay in the
/// residual WHERE, which always re-runs.
pub(crate) struct RangeSpec<'a> {
    pub col: usize,
    pub lower: Option<(&'a Expr, bool)>,
    pub upper: Option<(&'a Expr, bool)>,
}

/// First indexed column constrained by a range conjunct, with its first
/// lower and first upper bound. Deterministic — the plan compiler calls
/// this too and must agree with the interpreter on the access path.
pub(crate) fn find_range_candidate<'a>(
    conjuncts: &'a [Expr],
    binding: &str,
    table: &crate::storage::Table,
) -> Option<RangeSpec<'a>> {
    let mut target = None;
    for c in conjuncts {
        if let Some((col, _)) = range_conjunct(c, binding, table) {
            if table.find_index(&[col]).is_some() {
                target = Some(col);
                break;
            }
        }
    }
    let col = target?;
    let mut lower: Option<(&Expr, bool)> = None;
    let mut upper: Option<(&Expr, bool)> = None;
    for c in conjuncts {
        match range_conjunct(c, binding, table) {
            Some((c2, rc)) if c2 == col => match rc {
                RangeConstraint::Lower(e, inc) => {
                    if lower.is_none() {
                        lower = Some((e, inc));
                    }
                }
                RangeConstraint::Upper(e, inc) => {
                    if upper.is_none() {
                        upper = Some((e, inc));
                    }
                }
                RangeConstraint::Both(lo, hi) => {
                    if lower.is_none() {
                        lower = Some(lo);
                    }
                    if upper.is_none() {
                        upper = Some(hi);
                    }
                }
            },
            _ => {}
        }
    }
    Some(RangeSpec { col, lower, upper })
}

/// Cheap syntactic check: does the (single-item) ORDER BY name a column of
/// the scanned table directly? Used only to pick the walk direction — the
/// authoritative skip-sort decision re-resolves against the projection
/// (aliases can shadow source columns).
pub(crate) fn naive_order_hint(
    order_by: &[OrderItem],
    binding: &str,
    table: &crate::storage::Table,
) -> Option<(usize, bool)> {
    if order_by.len() != 1 {
        return None;
    }
    let item = &order_by[0];
    if let Expr::Column { table: t, name: n } = &item.expr {
        let col = resolve_local(binding, t.as_deref(), n, table)?;
        return Some((col, item.desc));
    }
    None
}

/// Does this ORDER BY item sort by exactly the given source column?
/// Mirrors [`order_key`]'s resolution order — ordinal literal, then
/// output alias, then source expression — so an alias shadowing a source
/// column is honored.
pub(crate) fn order_targets_column(
    expr: &Expr,
    out_columns: &[String],
    proj_exprs: &[Expr],
    schema: &RowSchema,
    col: usize,
) -> bool {
    let target = match expr {
        Expr::Literal(Value::Int(n)) => {
            if *n >= 1 && (*n as usize) <= proj_exprs.len() {
                &proj_exprs[*n as usize - 1]
            } else {
                return false;
            }
        }
        Expr::Column { table: None, name } => {
            match out_columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(name))
            {
                Some(i) => &proj_exprs[i],
                None => expr,
            }
        }
        e => e,
    };
    match target {
        Expr::Column { table, name } => schema.resolve(table.as_deref(), name).ok() == Some(col),
        _ => false,
    }
}

/// Does the expression avoid column references and aggregates (i.e. can
/// it be evaluated once per statement)? Subqueries are conservatively
/// rejected to keep the fast path cheap to test for.
pub(crate) fn is_row_independent(e: &Expr) -> bool {
    let mut independent = true;
    e.walk(&mut |node| {
        if matches!(
            node,
            Expr::Column { .. }
                | Expr::InSubquery { .. }
                | Expr::Exists { .. }
                | Expr::ScalarSubquery(_)
        ) {
            independent = false;
        }
        if let Expr::Function { name, .. } = node {
            if is_aggregate_name(name) || name == "NEXTVAL" {
                independent = false;
            }
        }
    });
    independent
}

pub(crate) fn resolve_local(
    binding: &str,
    qualifier: Option<&str>,
    column: &str,
    table: &crate::storage::Table,
) -> Option<usize> {
    if let Some(q) = qualifier {
        if !q.eq_ignore_ascii_case(binding) {
            return None;
        }
    }
    table.schema.col_index(column)
}

// ---------------------------------------------------------------- FROM / joins

fn build_from(catalog: &Catalog, from: &FromClause, ctx: &EvalCtx<'_>) -> SqlResult<Rows> {
    let mut left = scan_table_ref(catalog, &from.base, ctx)?;
    for join in &from.joins {
        let right = scan_table_ref(catalog, &join.table, ctx)?;
        left = join_rows(left, right, join, ctx)?;
    }
    Ok(left)
}

fn scan_table_ref(catalog: &Catalog, tref: &TableRef, ctx: &EvalCtx<'_>) -> SqlResult<Rows> {
    match &tref.source {
        TableSource::Named(name) => {
            // Views shadow nothing: names are unique across tables and
            // views (enforced by DDL), so check views first.
            if catalog.has_view(name) {
                let view = catalog.view(name)?.clone();
                let _guard = catalog.enter_view()?;
                let rs = run_select(catalog, &view.query, ctx.params, ctx.named_params)?;
                let binding = tref.binding_name().unwrap_or(name).to_string();
                let schema = RowSchema::new(
                    rs.columns
                        .iter()
                        .map(|c| (Some(binding.clone()), c.clone()))
                        .collect(),
                );
                return Ok(Rows {
                    schema,
                    rows: rs.rows.into_iter().map(Arc::new).collect(),
                });
            }
            let table = catalog.table(name)?;
            let binding = tref.binding_name().unwrap_or(name).to_string();
            let schema = RowSchema::new(
                table
                    .schema
                    .columns
                    .iter()
                    .map(|c| (Some(binding.clone()), c.name.clone()))
                    .collect(),
            );
            catalog.note_full_scan();
            // Arc clones: the scan shares stored rows, no deep copy.
            let rows: Vec<Arc<Row>> = table.iter().map(|(_, r)| Arc::clone(r)).collect();
            catalog.note_full_scan_rows(rows.len() as u64);
            Ok(Rows { schema, rows })
        }
        TableSource::Subquery(sub) => {
            let rs = run_select(ctx.catalog, sub, ctx.params, ctx.named_params)?;
            let binding = tref
                .alias
                .clone()
                .expect("parser enforces derived-table alias");
            let schema = RowSchema::new(
                rs.columns
                    .iter()
                    .map(|c| (Some(binding.clone()), c.clone()))
                    .collect(),
            );
            Ok(Rows {
                schema,
                rows: rs.rows.into_iter().map(Arc::new).collect(),
            })
        }
    }
}

/// Split an `ON` conjunction into hashable equi-pairs and a residual.
/// Shared with the plan compiler, which reuses the exact same pair
/// extraction so compiled joins hash on the same keys the interpreter does.
pub(crate) fn split_equi_join(
    on: &Expr,
    left: &RowSchema,
    right: &RowSchema,
) -> (Vec<(usize, usize)>, Vec<Expr>) {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            left: a,
            op: BinOp::Eq,
            right: b,
        } = &c
        {
            if let (
                Expr::Column {
                    table: ta,
                    name: na,
                },
                Expr::Column {
                    table: tb,
                    name: nb,
                },
            ) = (a.as_ref(), b.as_ref())
            {
                let la = left.resolve(ta.as_deref(), na);
                let rb = right.resolve(tb.as_deref(), nb);
                if let (Ok(i), Ok(j)) = (la, rb) {
                    pairs.push((i, j));
                    continue;
                }
                let lb = left.resolve(tb.as_deref(), nb);
                let ra = right.resolve(ta.as_deref(), na);
                if let (Ok(i), Ok(j)) = (lb, ra) {
                    pairs.push((i, j));
                    continue;
                }
            }
        }
        residual.push(c);
    }
    (pairs, residual)
}

pub(crate) fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        left,
        op: BinOp::And,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

fn join_rows(left: Rows, right: Rows, join: &Join, ctx: &EvalCtx<'_>) -> SqlResult<Rows> {
    // Combined schema: left columns then right columns.
    let mut schema = left.schema.clone();
    for (b, n) in right.schema.columns() {
        schema.push(b.clone(), n.clone());
    }

    let left_width = left.schema.len();
    let right_width = right.schema.len();

    let mut out = Vec::new();
    match join.kind {
        JoinKind::Cross => {
            for l in &left.rows {
                for r in &right.rows {
                    let mut row = Vec::with_capacity(left_width + right_width);
                    row.extend(l.iter().cloned());
                    row.extend(r.iter().cloned());
                    out.push(Arc::new(row));
                }
            }
        }
        JoinKind::Inner | JoinKind::Left | JoinKind::Right => {
            let on = join
                .on
                .as_ref()
                .expect("parser enforces ON for non-cross joins");
            let (pairs, residual) = split_equi_join(on, &left.schema, &right.schema);

            // Track which right rows matched (for RIGHT join padding).
            let mut right_matched = vec![false; right.rows.len()];

            // Build hash table on the right side when we have equi-pairs.
            // Keys borrow the right rows' values; probes borrow the left
            // row's — no per-row `Vec<Value>` key clones on either side.
            let hash: Option<HashMap<Vec<&Value>, Vec<usize>>> = if pairs.is_empty() {
                None
            } else {
                let mut h: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
                for (ri, r) in right.rows.iter().enumerate() {
                    let key: Vec<&Value> = pairs.iter().map(|(_, j)| &r[*j]).collect();
                    if key.iter().any(|v| v.is_null()) {
                        continue; // NULL never equi-joins
                    }
                    h.entry(key).or_default().push(ri);
                }
                Some(h)
            };

            // Candidate list for the no-equi-pair nested loop, built once
            // instead of per outer row.
            let all_right: Vec<usize> = if hash.is_none() {
                (0..right.rows.len()).collect()
            } else {
                Vec::new()
            };
            let mut probe_key: Vec<&Value> = Vec::with_capacity(pairs.len());

            for l in &left.rows {
                let candidates: &[usize] = match &hash {
                    Some(h) => {
                        probe_key.clear();
                        probe_key.extend(pairs.iter().map(|(i, _)| &l[*i]));
                        if probe_key.iter().any(|v| v.is_null()) {
                            &[]
                        } else {
                            h.get(&probe_key).map(Vec::as_slice).unwrap_or(&[])
                        }
                    }
                    None => all_right.as_slice(),
                };
                let mut matched = false;
                for &ri in candidates {
                    let r = &right.rows[ri];
                    let mut row = Vec::with_capacity(left_width + right_width);
                    row.extend(l.iter().cloned());
                    row.extend(r.iter().cloned());
                    let ok = if residual.is_empty() && hash.is_some() {
                        true
                    } else {
                        let rc = ctx.with_row(&schema, &row);
                        let mut pass = true;
                        // With no equi-pairs the full ON is the residual set.
                        for cond in &residual {
                            if !eval_predicate(cond, &rc)? {
                                pass = false;
                                break;
                            }
                        }
                        pass
                    };
                    if ok {
                        matched = true;
                        right_matched[ri] = true;
                        out.push(Arc::new(row));
                    }
                }
                if !matched && join.kind == JoinKind::Left {
                    let mut row: Vec<Value> = l.iter().cloned().collect();
                    row.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(Arc::new(row));
                }
            }
            if join.kind == JoinKind::Right {
                for (ri, m) in right_matched.iter().enumerate() {
                    if !m {
                        let mut row: Vec<Value> =
                            std::iter::repeat_n(Value::Null, left_width).collect();
                        row.extend(right.rows[ri].iter().cloned());
                        out.push(Arc::new(row));
                    }
                }
            }
        }
    }
    Ok(Rows { schema, rows: out })
}

// ---------------------------------------------------------------- grouping

/// One aggregate call site found in the statement. Shared with the plan
/// compiler, which lowers each spec into a synthetic virtual-row column.
pub(crate) struct AggSpec {
    pub(crate) key: String,
    pub(crate) name: String,
    pub(crate) arg: Option<Expr>,
    pub(crate) distinct: bool,
}

pub(crate) fn collect_aggregates(stmt: &SelectStmt) -> Vec<AggSpec> {
    let mut specs: Vec<AggSpec> = Vec::new();
    let mut visit = |e: &Expr| {
        e.walk(&mut |node| {
            if let Expr::Function {
                name,
                args,
                distinct,
                star,
            } = node
            {
                if is_aggregate_name(name) {
                    let key = aggregate_key(node);
                    if specs.iter().any(|s| s.key == key) {
                        return;
                    }
                    let arg = if *star { None } else { args.first().cloned() };
                    specs.push(AggSpec {
                        key,
                        name: name.clone(),
                        arg,
                        distinct: *distinct,
                    });
                }
            }
        });
    };
    for p in &stmt.projections {
        if let SelectItem::Expr { expr, .. } = p {
            visit(expr);
        }
    }
    if let Some(h) = &stmt.having {
        visit(h);
    }
    for o in &stmt.order_by {
        visit(&o.expr);
    }
    specs
}

fn group_rows(stmt: &SelectStmt, input: &Rows, ctx: &EvalCtx<'_>) -> SqlResult<Vec<GroupedRow>> {
    let specs = collect_aggregates(stmt);

    // Hash rows into groups by GROUP BY key (single global group if none).
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in input.rows.iter().enumerate() {
        let rc = ctx.with_row(&input.schema, row);
        let mut key = Vec::with_capacity(stmt.group_by.len());
        for g in &stmt.group_by {
            key.push(eval(g, &rc)?);
        }
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(i);
    }

    // No rows and no GROUP BY → one empty group (global aggregates).
    if groups.is_empty() && stmt.group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let members = &groups[&key];
        let mut aggs = HashMap::new();
        for spec in &specs {
            let v = compute_aggregate(spec, members, input, ctx)?;
            aggs.insert(spec.key.clone(), v);
        }
        // Representative row: first member, or all-NULL for the empty group.
        let repr = members
            .first()
            .map(|&i| input.rows[i].clone())
            .unwrap_or_else(|| Arc::new(vec![Value::Null; input.schema.len()]));
        out.push((repr, Some(aggs)));
    }
    Ok(out)
}

fn compute_aggregate(
    spec: &AggSpec,
    members: &[usize],
    input: &Rows,
    ctx: &EvalCtx<'_>,
) -> SqlResult<Value> {
    // COUNT(*) counts rows directly.
    if spec.name == "COUNT" && spec.arg.is_none() {
        return Ok(Value::Int(members.len() as i64));
    }
    let arg = spec
        .arg
        .as_ref()
        .ok_or_else(|| SqlError::Semantic(format!("{}(*) is only valid for COUNT", spec.name)))?;

    let mut values = Vec::with_capacity(members.len());
    for &i in members {
        let rc = ctx.with_row(&input.schema, &input.rows[i]);
        let v = eval(arg, &rc)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    combine_agg_values(&spec.name, &mut values, spec.distinct)
}

/// Fold a group's already-collected non-NULL argument values into one
/// aggregate result. Shared by the interpreter (above) and the batch
/// executor's hash aggregator — keeping the combine step single-sourced
/// is what makes their results byte-identical, including the
/// first-of-equals tie behavior of MIN and last-of-equals of MAX.
pub(crate) fn combine_agg_values(
    name: &str,
    values: &mut Vec<Value>,
    distinct: bool,
) -> SqlResult<Value> {
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }

    match name {
        "COUNT" => Ok(Value::Int(values.len() as i64)),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            let mut total = 0f64;
            for v in values.iter() {
                total += v.as_f64().ok_or_else(|| {
                    SqlError::Semantic(format!("{name}() over non-numeric value"))
                })?;
            }
            if name == "AVG" {
                Ok(Value::Float(total / values.len() as f64))
            } else if all_int {
                Ok(Value::Int(total as i64))
            } else {
                Ok(Value::Float(total))
            }
        }
        "MIN" => Ok(values
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        "MAX" => Ok(values
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        other => Err(SqlError::Semantic(format!("unknown aggregate '{other}'"))),
    }
}

// ---------------------------------------------------------------- ordering

/// Compare two ORDER BY key vectors under per-key direction flags.
pub(crate) fn cmp_keys(ka: &[Value], kb: &[Value], descs: &[bool]) -> std::cmp::Ordering {
    for ((a, b), desc) in ka.iter().zip(kb).zip(descs) {
        let ord = a.total_cmp(b);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Bounded top-K accumulator for `ORDER BY … LIMIT n`: keeps the `k`
/// smallest `(keys, seq)` entries under the ORDER BY comparator in a
/// max-heap, so each insertion costs O(log k) instead of sorting all `n`
/// rows. `seq` is the arrival position; using it as the final tiebreaker
/// makes the kept set and its order exactly what a stable full sort
/// followed by truncation would produce.
pub(crate) struct TopK {
    k: usize,
    descs: Vec<bool>,
    /// Max-heap: `heap[0]` is the largest kept entry.
    heap: Vec<(Vec<Value>, usize, Vec<Value>)>,
}

impl TopK {
    pub(crate) fn new(k: usize, descs: Vec<bool>) -> TopK {
        TopK {
            k,
            descs,
            heap: Vec::new(),
        }
    }

    fn cmp_entries(
        &self,
        a: &(Vec<Value>, usize, Vec<Value>),
        b: &(Vec<Value>, usize, Vec<Value>),
    ) -> std::cmp::Ordering {
        cmp_keys(&a.0, &b.0, &self.descs).then(a.1.cmp(&b.1))
    }

    pub(crate) fn push(&mut self, keys: Vec<Value>, seq: usize, row: Vec<Value>) {
        if self.k == 0 {
            return;
        }
        let entry = (keys, seq, row);
        if self.heap.len() < self.k {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if self.cmp_entries(&entry, &self.heap[0]).is_lt() {
            self.heap[0] = entry;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.cmp_entries(&self.heap[i], &self.heap[parent]).is_gt() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut largest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len()
                    && self
                        .cmp_entries(&self.heap[child], &self.heap[largest])
                        .is_gt()
                {
                    largest = child;
                }
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }

    /// The kept rows in final ORDER BY order.
    pub(crate) fn into_sorted_rows(self) -> Vec<Vec<Value>> {
        let descs = self.descs;
        let mut entries = self.heap;
        entries.sort_by(|a, b| cmp_keys(&a.0, &b.0, &descs).then(a.1.cmp(&b.1)));
        entries.into_iter().map(|(_, _, r)| r).collect()
    }
}
