//! DDL execution: tables, indexes, sequences, stored procedures.

use std::collections::HashMap;

use crate::ast::*;
use crate::catalog::{Catalog, Procedure, Sequence, View};
use crate::error::{SqlError, SqlResult};
use crate::expr::{eval, EvalCtx};
use crate::schema::{Column, TableSchema};
use crate::storage::Table;
use crate::txn::{UndoLog, UndoOp};
use crate::types::Value;

/// `CREATE TABLE`.
pub fn create_table(
    catalog: &mut Catalog,
    stmt: &CreateTableStmt,
    params: &[Value],
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if catalog.has_table(&stmt.name) {
        if stmt.if_not_exists {
            return Ok(false);
        }
        return Err(SqlError::AlreadyExists(format!("table '{}'", stmt.name)));
    }
    if catalog.has_view(&stmt.name) {
        return Err(SqlError::AlreadyExists(format!(
            "view '{}' (views and tables share a namespace)",
            stmt.name
        )));
    }
    let mut columns = Vec::with_capacity(stmt.columns.len());
    for c in &stmt.columns {
        let default = match &c.default {
            Some(e) => {
                let ctx = EvalCtx::constant(catalog, params);
                let v = eval(e, &ctx)?;
                Some(v.coerce(c.ty).map_err(SqlError::Semantic)?)
            }
            None => None,
        };
        columns.push(Column {
            name: c.name.clone(),
            ty: c.ty,
            not_null: c.not_null,
            primary_key: c.primary_key,
            unique: c.unique,
            default,
        });
    }
    let schema = TableSchema::new(stmt.name.clone(), columns, stmt.temporary)?;
    catalog.add_table(Table::new(schema))?;
    undo.record(UndoOp::CreateTable {
        name: stmt.name.clone(),
    });
    Ok(true)
}

/// `DROP TABLE`.
pub fn drop_table(
    catalog: &mut Catalog,
    name: &str,
    if_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if !catalog.has_table(name) {
        if if_exists {
            return Ok(false);
        }
        return Err(SqlError::NotFound(format!("table '{name}'")));
    }
    let table = catalog.remove_table(name)?;
    undo.record(UndoOp::DropTable { table });
    Ok(true)
}

/// `CREATE [UNIQUE] INDEX`.
pub fn create_index(
    catalog: &mut Catalog,
    name: &str,
    table: &str,
    columns: &[String],
    unique: bool,
    if_not_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if catalog.index_table(name).is_some() {
        if if_not_exists {
            return Ok(false);
        }
        return Err(SqlError::AlreadyExists(format!("index '{name}'")));
    }
    let table_name = {
        let mut t = catalog.table_mut(table)?;
        t.create_index(name, columns, unique)?;
        t.schema.name.clone()
    };
    catalog.register_index(name, &table_name)?;
    undo.record(UndoOp::CreateIndex {
        table: table_name,
        index: name.to_string(),
    });
    Ok(true)
}

/// `DROP INDEX`.
pub fn drop_index(
    catalog: &mut Catalog,
    name: &str,
    if_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    let owner = match catalog.index_table(name) {
        Some(t) => t.to_string(),
        None => {
            if if_exists {
                return Ok(false);
            }
            return Err(SqlError::NotFound(format!("index '{name}'")));
        }
    };
    let index = catalog.table_mut(&owner)?.drop_index(name)?;
    catalog.unregister_index(name);
    undo.record(UndoOp::DropIndex {
        table: owner,
        index,
    });
    Ok(true)
}

/// `CREATE SEQUENCE`.
pub fn create_sequence(
    catalog: &mut Catalog,
    name: &str,
    start: i64,
    increment: i64,
    if_not_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if catalog.has_sequence(name) {
        if if_not_exists {
            return Ok(false);
        }
        return Err(SqlError::AlreadyExists(format!("sequence '{name}'")));
    }
    catalog.add_sequence(Sequence::new(name, start, increment))?;
    undo.record(UndoOp::CreateSequence {
        name: name.to_string(),
    });
    Ok(true)
}

/// `DROP SEQUENCE`.
pub fn drop_sequence(
    catalog: &mut Catalog,
    name: &str,
    if_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if !catalog.has_sequence(name) {
        if if_exists {
            return Ok(false);
        }
        return Err(SqlError::NotFound(format!("sequence '{name}'")));
    }
    let seq = catalog.remove_sequence(name)?;
    undo.record(UndoOp::DropSequence { seq });
    Ok(true)
}

/// `CREATE PROCEDURE`. Bodies may not contain transaction control — the
/// enclosing statement owns the transaction boundary (this mirrors how the
/// paper's *atomic SQL sequence* defines boundaries at the activity level).
pub fn create_procedure(
    catalog: &mut Catalog,
    stmt: &CreateProcedureStmt,
    undo: &mut UndoLog,
) -> SqlResult<()> {
    if catalog.has_procedure(&stmt.name) {
        return Err(SqlError::AlreadyExists(format!(
            "procedure '{}'",
            stmt.name
        )));
    }
    for s in &stmt.body {
        if matches!(
            s,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Err(SqlError::Semantic(
                "transaction control is not allowed inside a procedure body".into(),
            ));
        }
        if matches!(s, Statement::CreateProcedure(_)) {
            return Err(SqlError::Semantic(
                "nested CREATE PROCEDURE is not allowed".into(),
            ));
        }
    }
    // Duplicate parameter names would make :name binding ambiguous.
    let mut seen = std::collections::HashSet::new();
    for p in &stmt.params {
        if !seen.insert(p.to_ascii_lowercase()) {
            return Err(SqlError::Semantic(format!(
                "duplicate procedure parameter '{p}'"
            )));
        }
    }
    catalog.add_procedure(Procedure::from(stmt.clone()))?;
    undo.record(UndoOp::CreateProcedure {
        name: stmt.name.clone(),
    });
    Ok(())
}

/// `DROP PROCEDURE`.
pub fn drop_procedure(
    catalog: &mut Catalog,
    name: &str,
    if_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if !catalog.has_procedure(name) {
        if if_exists {
            return Ok(false);
        }
        return Err(SqlError::NotFound(format!("procedure '{name}'")));
    }
    let proc = catalog.remove_procedure(name)?;
    undo.record(UndoOp::DropProcedure { proc });
    Ok(true)
}

/// `CREATE VIEW`. Names are unique across tables *and* views so that
/// `FROM name` resolution stays unambiguous.
pub fn create_view(
    catalog: &mut Catalog,
    name: &str,
    query: &crate::ast::SelectStmt,
    if_not_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if catalog.has_view(name) {
        if if_not_exists {
            return Ok(false);
        }
        return Err(SqlError::AlreadyExists(format!("view '{name}'")));
    }
    if catalog.has_table(name) {
        return Err(SqlError::AlreadyExists(format!(
            "table '{name}' (views and tables share a namespace)"
        )));
    }
    catalog.add_view(View {
        name: name.to_string(),
        query: query.clone(),
    })?;
    undo.record(UndoOp::CreateView {
        name: name.to_string(),
    });
    Ok(true)
}

/// `DROP VIEW`.
pub fn drop_view(
    catalog: &mut Catalog,
    name: &str,
    if_exists: bool,
    undo: &mut UndoLog,
) -> SqlResult<bool> {
    if !catalog.has_view(name) {
        if if_exists {
            return Ok(false);
        }
        return Err(SqlError::NotFound(format!("view '{name}'")));
    }
    let view = catalog.remove_view(name)?;
    undo.record(UndoOp::DropView { view });
    Ok(true)
}

/// `CALL name(args…)`: bind arguments to the formals as named parameters,
/// run the body, and return the last result set (if any).
pub fn call_procedure(
    catalog: &mut Catalog,
    name: &str,
    args: &[Expr],
    params: &[Value],
    named_params: &HashMap<String, Value>,
    undo: &mut UndoLog,
) -> SqlResult<Option<crate::db::QueryResult>> {
    let proc = catalog.procedure(name)?.clone();
    if args.len() != proc.params.len() {
        return Err(SqlError::Semantic(format!(
            "procedure '{}' expects {} argument(s), got {}",
            proc.name,
            proc.params.len(),
            args.len()
        )));
    }
    // Evaluate arguments in the caller's context.
    let mut bound = HashMap::new();
    {
        let ctx = EvalCtx {
            catalog,
            params,
            named_params,
            row: None,
            aggregates: None,
        };
        for (formal, actual) in proc.params.iter().zip(args) {
            bound.insert(formal.to_ascii_lowercase(), eval(actual, &ctx)?);
        }
    }
    let mut last_rows = None;
    for stmt in &proc.body {
        let r = super::execute(catalog, stmt, &[], &bound, undo)?;
        if let crate::db::StatementResult::Rows(rs) = r {
            last_rows = Some(rs);
        }
    }
    Ok(last_rows)
}
