//! Compiled join execution tests.
//!
//! The load-bearing property is the same one `tests/plan_cache.rs`
//! holds for single-table statements: compiled, batch-at-a-time join
//! execution must be **byte-identical** to the interpreter — same rows,
//! same order, same errors — across INNER/LEFT/RIGHT/CROSS joins, NULL
//! join keys, duplicate build keys, self-joins, residual ON conjuncts,
//! empty sides, and join + GROUP BY + ORDER BY + LIMIT tails. The
//! differential harness drives one database through
//! `Connection::execute` (compiled plans) and a twin through
//! `parse_statement` + `Connection::execute_ast` (the interpreter).
//!
//! On top of the differential corpus, directed tests pin down the
//! optimizer observables: `hash_joins`/`index_nl_joins` engage on the
//! shapes that should compile, `pushed_predicates` ticks when a WHERE
//! conjunct rides a side scan, and decline shapes (views, subqueries in
//! ON) fall back to the interpreter without result changes.
//!
//! `JOIN_SEED` (or `CHAOS_SEED`, which the CI rotation exports) adds
//! one more corpus seed without editing the test.

use sqlkernel::parser::parse_statement;
use sqlkernel::{Connection, Database, StatementResult, Value};

/// SplitMix64, as in `tests/plan_cache.rs` — deterministic, dependency-free.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn irange(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.range(0, items.len())]
    }
}

/// The three fixed corpus seeds, plus an optional CI-provided one.
fn corpus_seeds() -> Vec<u64> {
    let mut seeds = vec![0x101, 77, 5150];
    if let Some(extra) = std::env::var("JOIN_SEED")
        .ok()
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// Twin databases with identical multi-table schema and data. Join-key
/// columns (`t.a`, `u.k`, `w.m`) carry NULLs and duplicates by
/// construction; `case` varies row counts (including empty tables) and
/// which secondary indexes exist (`u.k` indexed enables index
/// nested-loop probes).
fn twin_dbs(rng: &mut Rng) -> (Database, Database) {
    let compiled = Database::new("join_compiled");
    let interpreted = Database::new("join_interpreted");
    let mut ddl = String::from(
        "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, s TEXT);
         CREATE TABLE u (uid INT PRIMARY KEY, k INT, v INT, tag TEXT);
         CREATE TABLE w (wid INT PRIMARY KEY, m INT, q INT);",
    );
    if rng.bool() {
        ddl.push_str("CREATE INDEX idx_uk ON u (k);");
    }
    if rng.bool() {
        ddl.push_str("CREATE INDEX idx_uv ON u (v);");
    }
    if rng.range(0, 3) == 0 {
        ddl.push_str("CREATE INDEX idx_ta ON t (a);");
    }
    let nt = rng.range(0, 18);
    for id in 0..nt {
        let a = if rng.range(0, 4) == 0 {
            "NULL".into()
        } else {
            rng.irange(0, 9).to_string() // dense: guarantees duplicates
        };
        let b = if rng.range(0, 5) == 0 {
            "NULL".into()
        } else {
            rng.irange(-5, 20).to_string()
        };
        let s = match rng.range(0, 3) {
            0 => "NULL".into(),
            1 => "'widget'".into(),
            _ => format!("'item{}'", rng.range(0, 5)),
        };
        ddl.push_str(&format!("INSERT INTO t VALUES ({id}, {a}, {b}, {s});"));
    }
    let nu = rng.range(0, 25);
    for uid in 0..nu {
        let k = if rng.range(0, 4) == 0 {
            "NULL".into()
        } else {
            rng.irange(0, 9).to_string()
        };
        let v = if rng.range(0, 6) == 0 {
            "NULL".into()
        } else {
            rng.irange(-5, 20).to_string()
        };
        let tag = if rng.bool() {
            "'hot'".into()
        } else {
            format!("'tag{}'", rng.range(0, 4))
        };
        ddl.push_str(&format!("INSERT INTO u VALUES ({uid}, {k}, {v}, {tag});"));
    }
    let nw = rng.range(0, 8);
    for wid in 0..nw {
        let m = if rng.range(0, 5) == 0 {
            "NULL".into()
        } else {
            rng.irange(0, 9).to_string()
        };
        ddl.push_str(&format!(
            "INSERT INTO w VALUES ({wid}, {m}, {});",
            rng.irange(0, 30)
        ));
    }
    compiled.connect().execute_script(&ddl).unwrap();
    interpreted.connect().execute_script(&ddl).unwrap();
    (compiled, interpreted)
}

/// A WHERE predicate over the combined row — single-side conjuncts
/// (pushdown candidates) mixed with cross-side and OR shapes that must
/// stay in the final filter.
fn gen_where(rng: &mut Rng) -> String {
    let atom = |rng: &mut Rng| -> String {
        match rng.range(0, 7) {
            0 => format!("t.a = {}", rng.irange(0, 9)),
            1 => format!(
                "u.v {} {}",
                rng.pick(&["<", "<=", ">", ">="]),
                rng.irange(-5, 20)
            ),
            2 => format!(
                "t.b BETWEEN {} AND {}",
                rng.irange(-5, 5),
                rng.irange(5, 20)
            ),
            3 => "u.tag = 'hot'".into(),
            4 => format!("t.b {} u.v", rng.pick(&["<", ">", "="])),
            5 => format!("t.a IS {}NULL", if rng.bool() { "NOT " } else { "" }),
            _ => format!("u.k {} {}", rng.pick(&["<>", ">="]), rng.irange(0, 9)),
        }
    };
    let mut pred = atom(rng);
    for _ in 0..rng.range(0, 3) {
        pred = format!("{pred} {} {}", rng.pick(&["AND", "OR"]), atom(rng));
    }
    pred
}

fn gen_join_select(rng: &mut Rng) -> String {
    let kind = rng.pick(&["JOIN", "INNER JOIN", "LEFT JOIN", "RIGHT JOIN"]);
    let shape = rng.range(0, 6);
    let (from, proj_pool): (String, &[&str]) = match shape {
        // The bread-and-butter two-table equi-join, both directions.
        0 => (
            format!("t {kind} u ON t.a = u.k"),
            &["*", "t.id, u.uid", "t.s, u.tag, u.v", "t.id, t.a, u.k"],
        ),
        1 => (
            format!("u {kind} t ON u.k = t.a"),
            &["*", "u.uid, t.id", "u.v, t.b"],
        ),
        // Residual ON conjuncts beyond the equi-pairs.
        2 => (
            format!("t {kind} u ON t.a = u.k AND t.b < u.v"),
            &["*", "t.id, u.uid, u.v"],
        ),
        // Three-way chain.
        3 => (
            format!("t {kind} u ON t.a = u.k JOIN w ON w.m = u.k"),
            &["*", "t.id, u.uid, w.wid"],
        ),
        // Cross product (kept small by the w table).
        4 => ("t CROSS JOIN w".to_string(), &["*", "t.id, w.wid, w.q"]),
        // Self-join under aliases.
        _ => (
            format!("t AS x {kind} t AS y ON x.a = y.b"),
            &["*", "x.id, y.id", "x.a, y.b, y.s"],
        ),
    };
    let mut sql = format!("SELECT {} FROM {from}", rng.pick(proj_pool));
    if rng.range(0, 3) != 0 && shape != 5 && shape != 4 {
        sql.push_str(&format!(" WHERE {}", gen_where(rng)));
    }
    if rng.range(0, 3) != 0 {
        let key = match shape {
            1 => rng.pick(&["u.uid, t.id", "t.b DESC, u.uid", "1"]),
            4 => rng.pick(&["t.id, w.wid", "w.q DESC, t.id"]),
            5 => rng.pick(&["x.id, y.id", "y.id DESC, x.id"]),
            _ => rng.pick(&["t.id, u.uid", "u.v DESC, t.id", "1", "2 DESC, 1"]),
        };
        sql.push_str(&format!(" ORDER BY {key}"));
    }
    if rng.range(0, 3) == 0 {
        sql.push_str(&format!(" LIMIT {}", rng.range(0, 10)));
        if rng.bool() {
            sql.push_str(&format!(" OFFSET {}", rng.range(0, 4)));
        }
    }
    sql
}

/// A grouped aggregate over a join, with HAVING/ORDER BY/LIMIT tails.
fn gen_join_agg(rng: &mut Rng) -> String {
    let kind = rng.pick(&["JOIN", "LEFT JOIN", "RIGHT JOIN"]);
    let mut sql = format!(
        "SELECT t.a, COUNT(*) AS n, {} FROM t {kind} u ON t.a = u.k",
        rng.pick(&[
            "SUM(u.v) AS sv",
            "MIN(u.uid) AS mu",
            "MAX(t.b) AS mb",
            "AVG(u.v) AS av"
        ]),
    );
    if rng.bool() {
        sql.push_str(&format!(" WHERE {}", gen_where(rng)));
    }
    sql.push_str(" GROUP BY t.a");
    if rng.range(0, 3) == 0 {
        sql.push_str(" HAVING COUNT(*) > 1");
    }
    if rng.range(0, 3) != 0 {
        sql.push_str(&format!(
            " ORDER BY {}",
            rng.pick(&["t.a", "n DESC, t.a", "1 DESC"])
        ));
    }
    if rng.range(0, 4) == 0 {
        sql.push_str(&format!(" LIMIT {}", rng.range(0, 6)));
    }
    sql
}

/// Run one statement both ways: compiled through `execute` (twice, so
/// the second run exercises the cached plan), interpreted through
/// `parse_statement` + `execute_ast`. Results must match exactly.
fn run_both(compiled: &Connection, interpreted: &Connection, sql: &str, case: u64) {
    let c1 = compiled.execute(sql, &[]);
    let c2 = compiled.execute(sql, &[]);
    let stmt = parse_statement(sql).unwrap();
    let i1 = interpreted.execute_ast(&stmt, &[]);
    match (&c1, &c2, &i1) {
        (Ok(a), Ok(b), Ok(c)) => {
            assert_eq!(a, b, "case {case}: compiled not idempotent: {sql}");
            assert_eq!(a, c, "case {case}: compiled != interpreted: {sql}");
        }
        (Err(a), Err(b), Err(c)) => {
            assert_eq!(a.class(), b.class(), "case {case}: {sql}");
            assert_eq!(a.class(), c.class(), "case {case}: {sql}");
        }
        _ => panic!("case {case}: divergent outcomes for {sql}: {c1:?} / {c2:?} / {i1:?}"),
    }
}

#[test]
fn differential_join_corpus() {
    for seed in corpus_seeds() {
        for case in 0u64..32 {
            let mut rng = Rng::new(seed ^ (case.wrapping_mul(0x9E37_79B9)));
            let (cdb, idb) = twin_dbs(&mut rng);
            let (cc, ic) = (cdb.connect(), idb.connect());
            for _ in 0..6 {
                let sql = gen_join_select(&mut rng);
                run_both(&cc, &ic, &sql, case);
            }
        }
    }
}

#[test]
fn differential_join_aggregate_corpus() {
    for seed in corpus_seeds() {
        for case in 0u64..24 {
            let mut rng = Rng::new(seed ^ 0xA66 ^ (case.wrapping_mul(0x9E37_79B9)));
            let (cdb, idb) = twin_dbs(&mut rng);
            let (cc, ic) = (cdb.connect(), idb.connect());
            for _ in 0..5 {
                let sql = gen_join_agg(&mut rng);
                run_both(&cc, &ic, &sql, case);
            }
        }
    }
}

// ---------------------------------------------------------- directed shapes

fn fixture() -> (Database, Connection) {
    let db = Database::new("join_fixture");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE l (id INT PRIMARY KEY, jk INT, note TEXT);
         CREATE TABLE r (id INT PRIMARY KEY, jk INT, amt INT);
         INSERT INTO l VALUES (1, 10, 'a'), (2, 20, 'b'), (3, NULL, 'c'), (4, 30, 'd');
         INSERT INTO r VALUES (1, 10, 100), (2, 10, 200), (3, NULL, 300), (4, 40, 400);",
    )
    .unwrap();
    (db, conn)
}

fn rows(conn: &Connection, sql: &str) -> Vec<Vec<Value>> {
    conn.query(sql, &[]).unwrap().rows
}

#[test]
fn inner_join_null_keys_never_match_and_duplicates_fan_out() {
    let (db, conn) = fixture();
    let got = rows(
        &conn,
        "SELECT l.id, r.id, r.amt FROM l JOIN r ON l.jk = r.jk ORDER BY l.id, r.id",
    );
    // l.jk=10 fans out to both r rows with key 10; the NULL keys on
    // either side (l.id=3, r.id=3) match nothing.
    assert_eq!(
        got,
        vec![
            vec![Value::Int(1), Value::Int(1), Value::Int(100)],
            vec![Value::Int(1), Value::Int(2), Value::Int(200)],
        ]
    );
    assert!(
        db.stats().hash_joins > 0,
        "equi-join must take the hash path"
    );
}

#[test]
fn left_join_pads_inline_right_join_pads_at_end() {
    let (_db, conn) = fixture();
    let left = rows(
        &conn,
        "SELECT l.id, r.id FROM l LEFT JOIN r ON l.jk = r.jk ORDER BY l.id, r.id",
    );
    assert_eq!(
        left,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(4), Value::Null],
        ]
    );
    // Unsorted RIGHT join: matched pairs first (probe order), then the
    // unmatched right rows in right-scan order — the interpreter's
    // canonical order, which the compiled path must reproduce.
    let right = rows(
        &conn,
        "SELECT l.id, r.id FROM l RIGHT JOIN r ON l.jk = r.jk",
    );
    assert_eq!(
        right,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
            vec![Value::Null, Value::Int(4)],
        ]
    );
}

#[test]
fn residual_on_conjuncts_filter_matches() {
    let (_db, conn) = fixture();
    let got = rows(
        &conn,
        "SELECT l.id, r.id FROM l JOIN r ON l.jk = r.jk AND r.amt > 150 ORDER BY l.id, r.id",
    );
    assert_eq!(got, vec![vec![Value::Int(1), Value::Int(2)]]);
    // LEFT with a residual that kills every match: the left row pads.
    let padded = rows(
        &conn,
        "SELECT l.id, r.id FROM l LEFT JOIN r ON l.jk = r.jk AND r.amt > 999 \
         ORDER BY l.id",
    );
    assert_eq!(
        padded,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(4), Value::Null],
        ]
    );
}

#[test]
fn empty_sides_produce_interpreter_shapes() {
    let db = Database::new("join_empty");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE a (id INT PRIMARY KEY, x INT);
         CREATE TABLE b (id INT PRIMARY KEY, x INT);
         INSERT INTO a VALUES (1, 1), (2, 2);",
    )
    .unwrap();
    assert_eq!(
        rows(&conn, "SELECT * FROM a JOIN b ON a.x = b.x"),
        Vec::<Vec<Value>>::new()
    );
    assert_eq!(
        rows(
            &conn,
            "SELECT a.id, b.id FROM a LEFT JOIN b ON a.x = b.x ORDER BY a.id"
        ),
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ]
    );
    assert_eq!(
        rows(&conn, "SELECT a.id, b.id FROM b LEFT JOIN a ON b.x = a.x"),
        Vec::<Vec<Value>>::new()
    );
    assert_eq!(
        rows(
            &conn,
            "SELECT a.id, b.id FROM b RIGHT JOIN a ON b.x = a.x ORDER BY a.id"
        ),
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
        ]
    );
}

#[test]
fn join_group_by_order_by_limit_composes() {
    let (db, conn) = fixture();
    let got = rows(
        &conn,
        "SELECT l.note, COUNT(*) AS n, SUM(r.amt) AS total \
         FROM l JOIN r ON l.jk = r.jk GROUP BY l.note ORDER BY total DESC LIMIT 2",
    );
    assert_eq!(
        got,
        vec![vec![
            Value::Text("a".into()),
            Value::Int(2),
            Value::Int(300)
        ]]
    );
    assert!(db.stats().hash_joins > 0);
    assert!(db.stats().hash_aggs > 0, "grouped join must hash-aggregate");
}

// ------------------------------------------------------------- optimizer

#[test]
fn where_pushdown_prefilters_side_scans() {
    let (db, conn) = fixture();
    let before = db.stats().pushed_predicates;
    let got = rows(
        &conn,
        "SELECT l.id, r.id FROM l JOIN r ON l.jk = r.jk WHERE r.amt >= 200 ORDER BY l.id, r.id",
    );
    assert_eq!(got, vec![vec![Value::Int(1), Value::Int(2)]]);
    assert!(
        db.stats().pushed_predicates > before,
        "single-side WHERE conjunct must ride the side scan"
    );
}

#[test]
fn index_nested_loop_engages_for_small_outer_indexed_inner() {
    let db = Database::new("join_inl");
    let conn = db.connect();
    let mut ddl = String::from(
        "CREATE TABLE probe (id INT PRIMARY KEY, fk INT);
         CREATE TABLE big (id INT PRIMARY KEY, fk INT, val INT);
         CREATE INDEX idx_big_fk ON big (fk);",
    );
    for id in 0..200 {
        ddl.push_str(&format!(
            "INSERT INTO big VALUES ({id}, {}, {});",
            id % 50,
            id
        ));
    }
    ddl.push_str("INSERT INTO probe VALUES (1, 7), (2, 13), (3, NULL);");
    conn.execute_script(&ddl).unwrap();

    let got = rows(
        &conn,
        "SELECT probe.id, big.id FROM probe JOIN big ON probe.fk = big.fk \
         ORDER BY probe.id, big.id",
    );
    assert_eq!(got.len(), 8, "two matched keys x 4 duplicate rows each");
    let stats = db.stats();
    assert!(
        stats.index_nl_joins > 0,
        "3-row outer against a 200-row indexed side must probe the index"
    );
    assert_eq!(stats.hash_joins, 0, "INL replaces the hash build entirely");

    // The same query against the interpreter, for byte-identity.
    let stmt = parse_statement(
        "SELECT probe.id, big.id FROM probe JOIN big ON probe.fk = big.fk \
         ORDER BY probe.id, big.id",
    )
    .unwrap();
    let interp = match conn.execute_ast(&stmt, &[]).unwrap() {
        StatementResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert_eq!(got, interp);
}

#[test]
fn join_counters_tick_per_cached_execution() {
    let (db, conn) = fixture();
    let sql = "SELECT l.id FROM l JOIN r ON l.jk = r.jk WHERE r.amt > 0";
    conn.query(sql, &[]).unwrap();
    let after_first = db.stats();
    conn.query(sql, &[]).unwrap();
    let after_second = db.stats();
    assert_eq!(after_second.hash_joins, after_first.hash_joins + 1);
    assert_eq!(
        after_second.pushed_predicates,
        after_first.pushed_predicates + 1
    );
    assert!(after_second.join_build_rows > after_first.join_build_rows);
    assert!(after_second.join_probe_rows > after_first.join_probe_rows);
    assert_eq!(
        after_second.plan_binds, after_first.plan_binds,
        "second execution must reuse the cached join plan"
    );
}

#[test]
fn decline_shapes_fall_back_to_interpreter_with_same_results() {
    let (db, conn) = fixture();
    conn.execute("CREATE VIEW lv AS SELECT id, jk, note FROM l", &[])
        .unwrap();
    let before = db.stats().hash_joins;
    // View side: declines, interpreter answers.
    let via_view = rows(
        &conn,
        "SELECT lv.id, r.id FROM lv JOIN r ON lv.jk = r.jk ORDER BY lv.id, r.id",
    );
    // Subquery in ON: declines, interpreter answers.
    let via_subq = rows(
        &conn,
        "SELECT l.id, r.id FROM l JOIN r ON l.jk = r.jk \
         AND r.amt > (SELECT MIN(amt) FROM r) ORDER BY l.id, r.id",
    );
    assert_eq!(
        via_view,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
        ]
    );
    assert_eq!(via_subq, vec![vec![Value::Int(1), Value::Int(2)]]);
    assert_eq!(
        db.stats().hash_joins,
        before,
        "declined shapes must not take the compiled join path"
    );
}

#[test]
fn full_scan_rows_tick_for_join_sides() {
    let (db, conn) = fixture();
    let before = db.stats().full_scan_rows;
    conn.query("SELECT l.id FROM l JOIN r ON l.jk = r.jk", &[])
        .unwrap();
    // Both sides full-scan: 4 + 4 rows walked.
    assert_eq!(db.stats().full_scan_rows, before + 8);
}

#[test]
fn self_join_matches_interpreter() {
    let (_db, conn) = fixture();
    let sql = "SELECT x.id, y.id FROM l AS x JOIN l AS y ON x.jk = y.jk ORDER BY x.id, y.id";
    let compiled = rows(&conn, sql);
    let stmt = parse_statement(sql).unwrap();
    let interp = match conn.execute_ast(&stmt, &[]).unwrap() {
        StatementResult::Rows(rs) => rs.rows,
        other => panic!("expected rows, got {other:?}"),
    };
    assert_eq!(compiled, interp);
    // Every non-NULL key is unique in l, so the self-join is the
    // identity over non-NULL-key rows.
    assert_eq!(
        compiled,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(2)],
            vec![Value::Int(4), Value::Int(4)],
        ]
    );
}
