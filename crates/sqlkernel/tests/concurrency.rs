//! Thread-safety integration tests: one `Database`, many threads, each
//! with its own `Connection`. The catalog sits behind a reader-writer
//! lock — SELECTs share a read lock and run concurrently, while DML/DDL
//! take the write lock exclusively. These tests check that nothing is
//! lost or corrupted under contention, that constraint enforcement
//! stays correct, and that readers never observe torn rows.

use std::sync::atomic::{AtomicUsize, Ordering};

use sqlkernel::{Database, Value};

#[test]
fn concurrent_inserts_are_all_applied() {
    let db = Database::new("mt");
    db.connect()
        .execute("CREATE TABLE t (id INT PRIMARY KEY, worker INT)", &[])
        .unwrap();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;

    std::thread::scope(|scope| {
        for w in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                let stmt = conn.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
                for i in 0..PER_THREAD {
                    conn.execute_prepared(
                        &stmt,
                        &[
                            Value::Int((w * PER_THREAD + i) as i64),
                            Value::Int(w as i64),
                        ],
                    )
                    .unwrap();
                }
            });
        }
    });

    assert_eq!(db.table_len("t").unwrap(), THREADS * PER_THREAD);
    let rs = db
        .connect()
        .query(
            "SELECT worker, COUNT(*) FROM t GROUP BY worker ORDER BY worker",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), THREADS);
    for row in &rs.rows {
        assert_eq!(row[1], Value::Int(PER_THREAD as i64));
    }
}

#[test]
fn primary_key_contention_admits_exactly_one_winner_per_key() {
    let db = Database::new("mt2");
    db.connect()
        .execute("CREATE TABLE claims (k INT PRIMARY KEY, owner INT)", &[])
        .unwrap();

    const THREADS: usize = 8;
    const KEYS: usize = 50;
    let wins = AtomicUsize::new(0);
    let losses = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for w in 0..THREADS {
            let db = db.clone();
            let wins = &wins;
            let losses = &losses;
            scope.spawn(move || {
                let conn = db.connect();
                let stmt = conn.prepare("INSERT INTO claims VALUES (?, ?)").unwrap();
                for k in 0..KEYS {
                    match conn
                        .execute_prepared(&stmt, &[Value::Int(k as i64), Value::Int(w as i64)])
                    {
                        Ok(_) => wins.fetch_add(1, Ordering::Relaxed),
                        Err(e) => {
                            assert_eq!(e.class(), "constraint");
                            losses.fetch_add(1, Ordering::Relaxed)
                        }
                    };
                }
            });
        }
    });

    assert_eq!(wins.load(Ordering::Relaxed), KEYS);
    assert_eq!(losses.load(Ordering::Relaxed), KEYS * (THREADS - 1));
    assert_eq!(db.table_len("claims").unwrap(), KEYS);
}

#[test]
fn transactions_from_parallel_connections_do_not_corrupt() {
    // Each thread repeatedly runs BEGIN / transfer / COMMIT or ROLLBACK
    // over its *own* pair of accounts; the invariant (total balance)
    // must hold at the end. Write-write conflicts stay last-writer-wins
    // at statement granularity (snapshot reads, not first-committer-wins
    // SI), so threads must not write the same rows — this test checks
    // atomicity under scheduler interleaving, not serializability.
    let db = Database::new("mt3");
    db.connect()
        .execute_script(
            "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT);
             INSERT INTO accounts VALUES
                (1, 1000), (2, 1000), (3, 1000), (4, 1000),
                (5, 1000), (6, 1000), (7, 1000), (8, 1000);",
        )
        .unwrap();

    std::thread::scope(|scope| {
        for w in 0..4usize {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                for i in 0..50usize {
                    let from = (2 * w + 1) as i64;
                    let to = (2 * w + 2) as i64;
                    conn.execute("BEGIN", &[]).unwrap();
                    conn.execute(
                        "UPDATE accounts SET balance = balance - 10 WHERE id = ?",
                        &[Value::Int(from)],
                    )
                    .unwrap();
                    conn.execute(
                        "UPDATE accounts SET balance = balance + 10 WHERE id = ?",
                        &[Value::Int(to)],
                    )
                    .unwrap();
                    if i % 5 == 0 {
                        conn.execute("ROLLBACK", &[]).unwrap();
                    } else {
                        conn.execute("COMMIT", &[]).unwrap();
                    }
                }
            });
        }
    });

    let total = db
        .connect()
        .query("SELECT SUM(balance) FROM accounts", &[])
        .unwrap()
        .single_value()
        .unwrap()
        .clone();
    assert_eq!(total, Value::Int(8000));
}

#[test]
fn readers_and_writers_interleave_safely() {
    let db = Database::new("mt4");
    db.connect()
        .execute("CREATE TABLE log (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();

    std::thread::scope(|scope| {
        // Writer.
        {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                for i in 0..300i64 {
                    conn.execute("INSERT INTO log VALUES (?, 'entry')", &[Value::Int(i)])
                        .unwrap();
                }
            });
        }
        // Readers observe monotonically growing, never-corrupt counts.
        for _ in 0..3 {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                let mut last = 0i64;
                for _ in 0..100 {
                    let n = conn
                        .query("SELECT COUNT(*) FROM log", &[])
                        .unwrap()
                        .single_value()
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    assert!(n >= last);
                    assert!(n <= 300);
                    last = n;
                }
            });
        }
    });
    assert_eq!(db.table_len("log").unwrap(), 300);
}

#[test]
fn readers_never_observe_torn_rows() {
    // The writer keeps an invariant — every row satisfies a + b = 100 —
    // and updates both columns in a single UPDATE. Statements are
    // atomic under the catalog write lock, so concurrent readers must
    // never see a row mid-update where the invariant is violated.
    let db = Database::new("mt5");
    db.connect()
        .execute_script(
            "CREATE TABLE pairs (id INT PRIMARY KEY, a INT, b INT);
             INSERT INTO pairs VALUES (1, 40, 60), (2, 70, 30), (3, 10, 90);",
        )
        .unwrap();

    std::thread::scope(|scope| {
        // Writer: shift a/b while preserving a + b = 100.
        {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                let stmt = conn
                    .prepare("UPDATE pairs SET a = ?, b = ? WHERE id = ?")
                    .unwrap();
                for i in 0..400i64 {
                    let a = i % 101;
                    conn.execute_prepared(
                        &stmt,
                        &[Value::Int(a), Value::Int(100 - a), Value::Int(i % 3 + 1)],
                    )
                    .unwrap();
                }
            });
        }
        // Readers: every observed row must satisfy the invariant.
        for _ in 0..4 {
            let db = db.clone();
            scope.spawn(move || {
                let conn = db.connect();
                for _ in 0..150 {
                    let rs = conn.query("SELECT a, b FROM pairs", &[]).unwrap();
                    assert_eq!(rs.rows.len(), 3);
                    for row in &rs.rows {
                        let a = row[0].as_i64().unwrap();
                        let b = row[1].as_i64().unwrap();
                        assert_eq!(a + b, 100, "torn read: a={a} b={b}");
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_result_matches_single_threaded_run() {
    // The same deterministic workload applied concurrently (disjoint
    // key ranges per thread) and single-threaded must converge to the
    // same final table contents.
    fn run(name: &str, threads: usize) -> Vec<Vec<Value>> {
        let db = Database::new(name);
        db.connect()
            .execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        let work = |w: usize| {
            let conn = db.connect();
            let ins = conn.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
            let upd = conn.prepare("UPDATE t SET v = v * 2 WHERE id = ?").unwrap();
            for i in 0..100usize {
                let id = (w * 100 + i) as i64;
                conn.execute_prepared(&ins, &[Value::Int(id), Value::Int(id % 7)])
                    .unwrap();
                if i % 3 == 0 {
                    conn.execute_prepared(&upd, &[Value::Int(id)]).unwrap();
                }
            }
        };
        if threads > 1 {
            std::thread::scope(|scope| {
                for w in 0..threads {
                    let work = &work;
                    scope.spawn(move || work(w));
                }
            });
        } else {
            for w in 0..4 {
                work(w);
            }
        }
        db.connect()
            .query("SELECT id, v FROM t ORDER BY id", &[])
            .unwrap()
            .rows
    }

    let sequential = run("st", 1);
    let concurrent = run("ct", 4);
    assert_eq!(sequential.len(), 400);
    assert_eq!(sequential, concurrent);
}
