//! Integration tests for the deterministic fault injector: transient
//! errors, torn statements, contained panics, after-bind aborts, and the
//! fault counters in `DbStats`.
//!
//! Statement indices referenced by `fault_at` count gated statements
//! *after* the plan is installed (setup runs uninjected), and never count
//! BEGIN/COMMIT/ROLLBACK.

use sqlkernel::fault::{Fault, FaultPlan, TransientKind};
use sqlkernel::{Database, Value};

fn seeded_db() -> Database {
    let db = Database::new("chaos");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE Orders (OrderId INT PRIMARY KEY, ItemId TEXT, \
         Quantity INT, Approved BOOL);
         INSERT INTO Orders VALUES
           (1, 'widget', 10, TRUE),
           (2, 'widget', 5, TRUE),
           (3, 'gadget', 7, FALSE),
           (4, 'gadget', 3, TRUE),
           (5, 'sprocket', 2, TRUE);",
    )
    .unwrap();
    db
}

fn count(db: &Database, sql: &str) -> i64 {
    let conn = db.connect();
    match conn.query(sql, &[]).unwrap().single_value().unwrap() {
        Value::Int(n) => *n,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn scripted_transient_fails_then_retry_succeeds() {
    let db = seeded_db();
    db.set_fault_plan(Some(
        FaultPlan::new(1).fault_at(0, Fault::Transient(TransientKind::ConnectionReset)),
    ));
    let conn = db.connect();
    let err = conn
        .execute(
            "UPDATE Orders SET Approved = TRUE WHERE ItemId = 'gadget'",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.class(), "transient");
    assert!(err.is_transient());
    assert!(err.to_string().contains("connection reset"));
    // Nothing changed.
    assert_eq!(
        count(&db, "SELECT COUNT(*) FROM Orders WHERE Approved = FALSE"),
        1
    );
    // The fault was consumed: the identical statement now succeeds.
    conn.execute(
        "UPDATE Orders SET Approved = TRUE WHERE ItemId = 'gadget'",
        &[],
    )
    .unwrap();
    assert_eq!(
        count(&db, "SELECT COUNT(*) FROM Orders WHERE Approved = FALSE"),
        0
    );
    assert_eq!(db.stats().faults_injected, 1);
}

#[test]
fn torn_insert_rolls_back_all_applied_rows() {
    let db = seeded_db();
    db.set_fault_plan(Some(FaultPlan::new(1).fault_at(
        0,
        Fault::TornAfterRows {
            rows: 2,
            kind: TransientKind::DeadlockVictim,
        },
    )));
    let conn = db.connect();
    // Multi-row INSERT (interpreter path): dies after two applied rows.
    let err = conn
        .execute(
            "INSERT INTO Orders VALUES (10, 'a', 1, TRUE), (11, 'b', 1, TRUE), (12, 'c', 1, TRUE)",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.class(), "transient");
    // Statement atomicity: the two applied rows are gone.
    assert_eq!(count(&db, "SELECT COUNT(*) FROM Orders"), 5);
    assert!(db.stats().rollbacks >= 1);
}

#[test]
fn torn_compiled_update_rolls_back_cleanly() {
    let db = seeded_db();
    let conn = db.connect();
    // Warm the compiled plan first so the torn statement runs the
    // compiled (not interpreted) path.
    conn.execute("UPDATE Orders SET Quantity = Quantity + 0", &[])
        .unwrap();
    let before: Vec<Vec<Value>> = conn
        .query("SELECT OrderId, Quantity FROM Orders ORDER BY OrderId", &[])
        .unwrap()
        .rows;
    db.set_fault_plan(Some(FaultPlan::new(1).fault_at(
        0,
        Fault::TornAfterRows {
            rows: 3,
            kind: TransientKind::SerializationFailure,
        },
    )));
    let err = conn
        .execute("UPDATE Orders SET Quantity = Quantity + 100", &[])
        .unwrap_err();
    assert!(err.to_string().contains("serialization failure"));
    let after: Vec<Vec<Value>> = conn
        .query("SELECT OrderId, Quantity FROM Orders ORDER BY OrderId", &[])
        .unwrap()
        .rows;
    assert_eq!(before, after, "torn UPDATE must leave no partial effects");
}

#[test]
fn torn_statement_inside_open_transaction_preserves_prior_work() {
    let db = seeded_db();
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO Orders VALUES (20, 'kept', 1, TRUE)", &[])
        .unwrap();
    db.set_fault_plan(Some(FaultPlan::new(1).fault_at(
        0,
        Fault::TornAfterRows {
            rows: 1,
            kind: TransientKind::DeadlockVictim,
        },
    )));
    let err = conn
        .execute(
            "INSERT INTO Orders VALUES (21, 'x', 1, TRUE), (22, 'y', 1, TRUE)",
            &[],
        )
        .unwrap_err();
    assert_eq!(err.class(), "transient");
    db.set_fault_plan(None);
    // The failed statement's rows are gone; the earlier statement's row
    // survives and commits.
    conn.execute("COMMIT", &[]).unwrap();
    assert_eq!(
        count(&db, "SELECT COUNT(*) FROM Orders WHERE OrderId >= 20"),
        1
    );
}

#[test]
fn injected_panic_is_contained_and_rolled_back() {
    let db = seeded_db();
    let conn = db.connect();
    db.set_fault_plan(Some(
        FaultPlan::new(1).fault_at(0, Fault::PanicAfterRows { rows: 2 }),
    ));
    let err = conn
        .execute("UPDATE Orders SET Quantity = 0", &[])
        .unwrap_err();
    assert_eq!(err.class(), "runtime");
    assert!(err.to_string().contains("statement panicked"));
    // No partial effects, and the database still serves everyone —
    // including readers on other threads (the lock is not wedged).
    assert_eq!(
        count(&db, "SELECT COUNT(*) FROM Orders WHERE Quantity = 0"),
        0
    );
    let db2 = db.clone();
    std::thread::spawn(move || {
        let c = db2.connect();
        c.query("SELECT COUNT(*) FROM Orders", &[]).unwrap()
    })
    .join()
    .unwrap();
    // And writes keep working.
    conn.execute("INSERT INTO Orders VALUES (30, 'after', 1, TRUE)", &[])
        .unwrap();
    assert_eq!(count(&db, "SELECT COUNT(*) FROM Orders"), 6);
}

#[test]
fn after_bind_fault_invalidates_plan_and_rebinds() {
    let db = seeded_db();
    let conn = db.connect();
    // Bind the compiled plan once.
    conn.execute("UPDATE Orders SET Approved = TRUE WHERE OrderId = 1", &[])
        .unwrap();
    let binds_before = db.stats().plan_binds;
    db.set_fault_plan(Some(
        FaultPlan::new(1).fault_at(0, Fault::AfterBind(TransientKind::SerializationFailure)),
    ));
    let err = conn
        .execute("UPDATE Orders SET Approved = TRUE WHERE OrderId = 1", &[])
        .unwrap_err();
    assert_eq!(err.class(), "transient");
    // The abort dropped the compiled-plan slot: the retry re-binds and
    // succeeds with correct results.
    conn.execute("UPDATE Orders SET Approved = TRUE WHERE OrderId = 1", &[])
        .unwrap();
    assert_eq!(
        db.stats().plan_binds,
        binds_before + 1,
        "retry after an after-bind abort must re-bind the plan"
    );
}

#[test]
fn select_transients_and_slow_queries() {
    let db = seeded_db();
    db.set_fault_plan(Some(
        FaultPlan::new(1)
            .fault_at(0, Fault::Transient(TransientKind::SerializationFailure))
            .fault_at(1, Fault::SlowQuery { ticks: 500 }),
    ));
    let conn = db.connect();
    let err = conn.query("SELECT COUNT(*) FROM Orders", &[]).unwrap_err();
    assert_eq!(err.class(), "transient");
    // The slow query still answers, but the virtual clock moved.
    assert_eq!(count(&db, "SELECT COUNT(*) FROM Orders"), 5);
    assert_eq!(db.fault_ticks(), 500);
    assert_eq!(db.stats().faults_injected, 2);
}

#[test]
fn random_schedule_is_deterministic_per_seed() {
    let run = |seed: u64| -> Vec<bool> {
        let db = seeded_db();
        db.set_fault_plan(Some(FaultPlan::new(seed).transient_rate(0.25)));
        let conn = db.connect();
        (0..40)
            .map(|_| conn.query("SELECT COUNT(*) FROM Orders", &[]).is_err())
            .collect()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn clearing_the_plan_stops_faults_and_keeps_cumulative_stats() {
    let db = seeded_db();
    db.set_fault_plan(Some(FaultPlan::new(1).transient_rate(1.0)));
    let conn = db.connect();
    assert!(conn.query("SELECT COUNT(*) FROM Orders", &[]).is_err());
    db.set_fault_plan(None);
    assert_eq!(count(&db, "SELECT COUNT(*) FROM Orders"), 5);
    assert_eq!(db.stats().faults_injected, 1, "stats survive plan removal");
}

#[test]
fn txn_control_is_never_gated() {
    let db = seeded_db();
    // Every gated statement fails — but BEGIN/COMMIT/ROLLBACK stay clean.
    db.set_fault_plan(Some(FaultPlan::new(1).transient_rate(1.0)));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    assert!(conn.execute("DELETE FROM Orders", &[]).is_err());
    conn.execute("COMMIT", &[]).unwrap();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("ROLLBACK", &[]).unwrap();
}

#[test]
fn recovery_counters_flow_into_stats() {
    let db = seeded_db();
    db.note_retry();
    db.note_retry();
    db.note_breaker_trip();
    let stats = db.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.breaker_trips, 1);
}
