//! A broad SQL behavior suite: one assertion per semantic rule, in the
//! spirit of sqllogictest. Each case states the SQL, the expected grid
//! (as rendered text rows) or the expected error class.

use sqlkernel::{Database, Value};

/// Run `sql` against a fresh database seeded with `setup`, compare the
/// rendered rows with `expect` (cells joined by `|`).
fn check(setup: &str, sql: &str, expect: &[&str]) {
    let db = Database::new("suite");
    if !setup.is_empty() {
        db.connect().execute_script(setup).expect("setup");
    }
    let rs = db.connect().query(sql, &[]).unwrap_or_else(|e| {
        panic!("query failed: {e}\n  sql: {sql}");
    });
    let got: Vec<String> = rs
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| {
                    if v.is_null() {
                        "∅".to_string()
                    } else {
                        v.render()
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    assert_eq!(got, expect, "\n  sql: {sql}");
}

fn check_err(setup: &str, sql: &str, class: &str) {
    let db = Database::new("suite");
    if !setup.is_empty() {
        db.connect().execute_script(setup).expect("setup");
    }
    let err = db
        .connect()
        .execute(sql, &[])
        .expect_err(&format!("expected {class} error for: {sql}"));
    assert_eq!(err.class(), class, "\n  sql: {sql} → {err}");
}

const NUMS: &str = "CREATE TABLE nums (n INT PRIMARY KEY, f FLOAT, s TEXT);
INSERT INTO nums VALUES (1, 1.5, 'one'), (2, 2.5, 'two'), (3, NULL, 'three'), (4, 4.0, NULL);";

#[test]
fn scalar_select_without_from() {
    check("", "SELECT 1 + 1, 'a' || 'b', UPPER('x')", &["2|ab|X"]);
}

#[test]
fn projection_aliases_and_expressions() {
    check(
        NUMS,
        "SELECT n * 10 AS tens, s FROM nums WHERE n <= 2 ORDER BY tens",
        &["10|one", "20|two"],
    );
}

#[test]
fn null_filtering_three_valued() {
    // f > 2 is UNKNOWN for the NULL row → dropped; NOT doesn't resurrect it.
    check(
        NUMS,
        "SELECT n FROM nums WHERE f > 2 ORDER BY n",
        &["2", "4"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE NOT (f > 2) ORDER BY n",
        &["1"],
    );
    check(NUMS, "SELECT n FROM nums WHERE f IS NULL", &["3"]);
    check(
        NUMS,
        "SELECT n FROM nums WHERE s IS NOT NULL ORDER BY n",
        &["1", "2", "3"],
    );
}

#[test]
fn case_and_coalesce_in_projection() {
    check(
        NUMS,
        "SELECT n, CASE WHEN f IS NULL THEN 'missing' ELSE 'present' END, \
         COALESCE(s, '-') FROM nums ORDER BY n",
        &[
            "1|present|one",
            "2|present|two",
            "3|missing|three",
            "4|present|-",
        ],
    );
}

#[test]
fn aggregates_ignore_nulls() {
    check(
        NUMS,
        "SELECT COUNT(*), COUNT(f), COUNT(s), SUM(n), AVG(f) FROM nums",
        // AVG over 1.5, 2.5, 4.0 = 8/3
        &[&format!("4|3|3|10|{}", (8.0f64 / 3.0))],
    );
}

#[test]
fn min_max_text_and_numbers() {
    check(
        NUMS,
        "SELECT MIN(n), MAX(n), MIN(s), MAX(s) FROM nums",
        &["1|4|one|two"],
    );
}

#[test]
fn group_by_with_having_and_order() {
    let setup = "CREATE TABLE o (id INT PRIMARY KEY, item TEXT, q INT);
        INSERT INTO o VALUES (1,'a',5),(2,'a',7),(3,'b',1),(4,'c',2),(5,'c',9);";
    check(
        setup,
        "SELECT item, SUM(q) AS total FROM o GROUP BY item \
         HAVING SUM(q) > 3 ORDER BY total DESC",
        &["a|12", "c|11"],
    );
}

#[test]
fn group_by_expression_key() {
    check(
        NUMS,
        "SELECT n % 2, COUNT(*) FROM nums GROUP BY n % 2 ORDER BY 1",
        &["0|2", "1|2"],
    );
}

#[test]
fn distinct_on_expressions() {
    check(
        NUMS,
        "SELECT DISTINCT n % 2 FROM nums ORDER BY 1",
        &["0", "1"],
    );
}

#[test]
fn order_by_nulls_first_and_desc() {
    check(
        NUMS,
        "SELECT n FROM nums ORDER BY f, n",
        &["3", "1", "2", "4"], // NULL sorts first
    );
    check(
        NUMS,
        "SELECT n FROM nums ORDER BY f DESC, n",
        &["4", "2", "1", "3"],
    );
}

#[test]
fn limit_offset_combinations() {
    check(NUMS, "SELECT n FROM nums ORDER BY n LIMIT 2", &["1", "2"]);
    check(
        NUMS,
        "SELECT n FROM nums ORDER BY n LIMIT 2 OFFSET 3",
        &["4"],
    );
    check(NUMS, "SELECT n FROM nums ORDER BY n LIMIT 0", &[]);
    check(NUMS, "SELECT n FROM nums ORDER BY n OFFSET 9", &[]);
}

#[test]
fn in_between_like_combined() {
    check(
        NUMS,
        "SELECT n FROM nums WHERE n IN (1, 3) AND n BETWEEN 2 AND 9",
        &["3"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE s LIKE 't%' ORDER BY n",
        &["2", "3"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE s NOT LIKE '%e' ORDER BY n",
        &["2"],
    );
}

#[test]
fn cross_and_self_join() {
    let setup = "CREATE TABLE p (a INT PRIMARY KEY);
        INSERT INTO p VALUES (1), (2), (3);";
    check(setup, "SELECT COUNT(*) FROM p x CROSS JOIN p y", &["9"]);
    check(
        setup,
        "SELECT x.a, y.a FROM p x JOIN p y ON x.a + 1 = y.a ORDER BY x.a",
        &["1|2", "2|3"],
    );
}

#[test]
fn left_join_null_padding_filterable() {
    let setup = "CREATE TABLE l (k INT PRIMARY KEY);
        CREATE TABLE r (k INT PRIMARY KEY, v TEXT);
        INSERT INTO l VALUES (1), (2), (3);
        INSERT INTO r VALUES (1, 'x'), (3, 'z');";
    check(
        setup,
        "SELECT l.k FROM l LEFT JOIN r ON l.k = r.k WHERE r.v IS NULL",
        &["2"],
    );
}

#[test]
fn three_way_join() {
    let setup = "CREATE TABLE a (i INT PRIMARY KEY);
        CREATE TABLE b (i INT PRIMARY KEY);
        CREATE TABLE c (i INT PRIMARY KEY);
        INSERT INTO a VALUES (1), (2);
        INSERT INTO b VALUES (2), (3);
        INSERT INTO c VALUES (2);";
    check(
        setup,
        "SELECT a.i FROM a JOIN b ON a.i = b.i JOIN c ON b.i = c.i",
        &["2"],
    );
}

#[test]
fn subquery_in_from_where_select() {
    check(
        NUMS,
        "SELECT t.n FROM (SELECT n FROM nums WHERE n > 1) t WHERE t.n < 4 ORDER BY 1",
        &["2", "3"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE n = (SELECT MIN(n) + 1 FROM nums)",
        &["2"],
    );
    check(
        NUMS,
        "SELECT (SELECT COUNT(*) FROM nums), MAX(n) FROM nums",
        &["4|4"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE EXISTS (SELECT 1 FROM nums WHERE f > 3) ORDER BY n",
        &["1", "2", "3", "4"],
    );
    check(
        NUMS,
        "SELECT n FROM nums WHERE n NOT IN (SELECT n FROM nums WHERE n < 3) ORDER BY n",
        &["3", "4"],
    );
}

#[test]
fn scalar_subquery_empty_is_null() {
    check(
        NUMS,
        "SELECT COALESCE((SELECT n FROM nums WHERE n > 99), -1)",
        &["-1"],
    );
}

#[test]
fn update_with_expression_and_where() {
    let db = Database::new("suite");
    db.connect().execute_script(NUMS).unwrap();
    let conn = db.connect();
    let r = conn
        .execute("UPDATE nums SET f = n * 1.0 WHERE f IS NULL", &[])
        .unwrap();
    assert_eq!(r.affected(), Some(1));
    let rs = conn.query("SELECT f FROM nums WHERE n = 3", &[]).unwrap();
    assert_eq!(rs.single_value().unwrap(), &Value::Float(3.0));
}

#[test]
fn halloween_safe_update() {
    // An update whose predicate matches its own output must not loop.
    let setup = "CREATE TABLE h (v INT); INSERT INTO h VALUES (1), (2), (3);";
    let db = Database::new("suite");
    db.connect().execute_script(setup).unwrap();
    let r = db
        .connect()
        .execute("UPDATE h SET v = v + 10 WHERE v < 100", &[])
        .unwrap();
    assert_eq!(r.affected(), Some(3));
    check(
        "CREATE TABLE h (v INT); INSERT INTO h VALUES (1), (2), (3);",
        "SELECT SUM(v) FROM h",
        &["6"],
    );
}

#[test]
fn insert_column_list_reorders_and_defaults() {
    let setup = "CREATE TABLE d (a INT PRIMARY KEY, b TEXT DEFAULT 'dflt', c INT DEFAULT 9);";
    check(
        &format!("{setup} INSERT INTO d (c, a) VALUES (1, 2);"),
        "SELECT a, b, c FROM d",
        &["2|dflt|1"],
    );
}

#[test]
fn semantic_and_constraint_errors() {
    check_err(NUMS, "SELECT nope FROM nums", "not_found");
    check_err(NUMS, "SELECT n FROM missing_table", "not_found");
    check_err(
        NUMS,
        "INSERT INTO nums VALUES (1, 0.0, 'dup')",
        "constraint",
    );
    check_err(NUMS, "INSERT INTO nums (n) VALUES (1, 2)", "semantic");
    check_err(NUMS, "SELECT n FROM nums WHERE SUM(n) > 1", "semantic");
    check_err(NUMS, "SELECT n + 'x' FROM nums", "semantic");
    check_err("", "SELECT 1 / 0", "runtime");
    check_err(NUMS, "UPDATE nums SET nope = 1", "not_found");
}

#[test]
fn ambiguous_column_errors() {
    let setup = "CREATE TABLE x (v INT); CREATE TABLE y (v INT);
        INSERT INTO x VALUES (1); INSERT INTO y VALUES (1);";
    check_err(setup, "SELECT v FROM x JOIN y ON x.v = y.v", "semantic");
}

#[test]
fn quoted_identifiers_case_sensitive_content() {
    check(
        "CREATE TABLE q (\"select\" INT); INSERT INTO q VALUES (7);",
        "SELECT \"select\" FROM q",
        &["7"],
    );
}

#[test]
fn arithmetic_type_promotion() {
    check(
        "",
        "SELECT 1 + 2.5, 10 / 4, 10.0 / 4, 2 * 3.0",
        &["3.5|2|2.5|6.0"],
    );
}

#[test]
fn union_with_views_and_procedures_together() {
    let setup = "CREATE TABLE base (n INT PRIMARY KEY);
        INSERT INTO base VALUES (1), (2), (3);
        CREATE VIEW evens AS SELECT n FROM base WHERE n % 2 = 0;
        CREATE VIEW odds AS SELECT n FROM base WHERE n % 2 = 1;";
    check(
        setup,
        "SELECT n FROM evens UNION SELECT n FROM odds ORDER BY n",
        &["1", "2", "3"],
    );
}

#[test]
fn procedure_with_multiple_statements_returns_last_select() {
    let setup = "CREATE TABLE log (msg TEXT);
        CREATE PROCEDURE note(m) AS BEGIN
          INSERT INTO log VALUES (:m);
          INSERT INTO log VALUES (:m);
          SELECT COUNT(*) FROM log;
        END;";
    let db = Database::new("suite");
    db.connect().execute_script(setup).unwrap();
    let conn = db.connect();
    let rs = conn
        .execute("CALL note('hello')", &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rs.single_value().unwrap(), &Value::Int(2));
    let rs = conn
        .execute("CALL note('again')", &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rs.single_value().unwrap(), &Value::Int(4));
}

#[test]
fn procedure_statement_atomicity() {
    // A failing statement inside a CALL must undo the whole CALL
    // (statement-level atomicity at the outer statement).
    let setup = "CREATE TABLE log (id INT PRIMARY KEY);
        CREATE PROCEDURE bad() AS BEGIN
          INSERT INTO log VALUES (1);
          INSERT INTO log VALUES (1);
        END;";
    let db = Database::new("suite");
    db.connect().execute_script(setup).unwrap();
    let err = db.connect().execute("CALL bad()", &[]).unwrap_err();
    assert_eq!(err.class(), "constraint");
    assert_eq!(db.table_len("log").unwrap(), 0);
}

#[test]
fn string_functions_compose() {
    check(
        "",
        "SELECT REPLACE(UPPER(SUBSTR('workflow products', 1, 8)), 'WORK', 'NET')",
        &["NETFLOW"],
    );
}

#[test]
fn nextval_in_insert_generates_distinct_keys() {
    let setup = "CREATE SEQUENCE ids START WITH 100;
        CREATE TABLE k (id INT PRIMARY KEY, v TEXT);
        INSERT INTO k VALUES (NEXTVAL('ids'), 'a');
        INSERT INTO k VALUES (NEXTVAL('ids'), 'b');";
    check(setup, "SELECT id FROM k ORDER BY id", &["100", "101"]);
}

#[test]
fn nextval_draw_is_returned_when_the_statement_fails() {
    // The failing INSERT evaluates NEXTVAL before hitting the duplicate
    // key; statement atomicity must give the drawn value back so a
    // fault-retry loop regenerates the *same* key stream.
    let db = Database::new("suite");
    let conn = db.connect();
    conn.execute_script(
        "CREATE SEQUENCE ids START WITH 100;
         CREATE TABLE k (id INT PRIMARY KEY, seq INT);
         INSERT INTO k VALUES (1, NEXTVAL('ids'));",
    )
    .unwrap();
    let err = conn
        .execute("INSERT INTO k VALUES (1, NEXTVAL('ids'))", &[])
        .unwrap_err();
    assert_eq!(err.class(), "constraint");
    conn.execute("INSERT INTO k VALUES (2, NEXTVAL('ids'))", &[])
        .unwrap();
    let rs = conn.query("SELECT seq FROM k ORDER BY id", &[]).unwrap();
    assert_eq!(format!("{:?}", rs.rows), "[[Int(100)], [Int(101)]]");
}

#[test]
fn nextval_draw_is_returned_on_transaction_rollback() {
    let db = Database::new("suite");
    let conn = db.connect();
    conn.execute_script(
        "CREATE SEQUENCE ids START WITH 7;
         CREATE TABLE k (id INT PRIMARY KEY);",
    )
    .unwrap();
    conn.execute_script(
        "BEGIN;
         INSERT INTO k VALUES (NEXTVAL('ids'));
         ROLLBACK;",
    )
    .unwrap();
    conn.execute("INSERT INTO k VALUES (NEXTVAL('ids'))", &[])
        .unwrap();
    let rs = conn.query("SELECT id FROM k", &[]).unwrap();
    assert_eq!(format!("{:?}", rs.rows), "[[Int(7)]]");
}

#[test]
fn boolean_columns_and_literals() {
    let setup = "CREATE TABLE flags (id INT PRIMARY KEY, ok BOOL);
        INSERT INTO flags VALUES (1, TRUE), (2, FALSE), (3, NULL);";
    check(setup, "SELECT id FROM flags WHERE ok ORDER BY id", &["1"]);
    check(setup, "SELECT id FROM flags WHERE NOT ok", &["2"]);
    check(setup, "SELECT id FROM flags WHERE ok IS NULL", &["3"]);
}

#[test]
fn comments_anywhere() {
    check(
        NUMS,
        "SELECT /* block */ n -- tail\n FROM nums WHERE n = 1",
        &["1"],
    );
}
