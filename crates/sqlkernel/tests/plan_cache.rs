//! Compiled-plan integration tests.
//!
//! Three concerns, in order: the plan cache amortizes binds (the
//! `plan_binds` counter stays flat across repeats and re-binds on DDL,
//! including `CREATE INDEX`/`DROP INDEX`); the index range-scan and
//! top-K access paths fire when they should and honor boundary
//! semantics (inclusive/exclusive ends, NULL keys, DESC order); and —
//! the load-bearing property — compiled execution is *byte-identical*
//! to interpreted execution over a randomized SELECT/UPDATE/DELETE
//! corpus. The differential harness drives one database through
//! `Connection::execute` (compiled plans) and a twin database through
//! `parse_statement` + `Connection::execute_ast` (the interpreter) and
//! asserts equal results and equal end states.

use sqlkernel::parser::parse_statement;
use sqlkernel::{Connection, Database, QueryResult, StatementResult, Value};

fn setup() -> (Database, Connection) {
    let db = Database::new("plan");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE Orders (OrderId INT PRIMARY KEY, ItemId TEXT, \
         Quantity INT, Approved BOOL);
         INSERT INTO Orders VALUES
           (1, 'widget', 10, TRUE),
           (2, 'widget', 5, TRUE),
           (3, 'gadget', 7, FALSE),
           (4, 'gadget', 3, TRUE),
           (5, 'sprocket', 2, TRUE);",
    )
    .unwrap();
    (db, conn)
}

// ---------------------------------------------------------------- plan cache

#[test]
fn plan_binds_stay_flat_across_repeated_executions() {
    let (db, conn) = setup();
    let sql = "SELECT ItemId FROM Orders WHERE Quantity > ? ORDER BY OrderId";
    conn.query(sql, &[Value::Int(4)]).unwrap();
    let after_first = db.stats().plan_binds;
    for _ in 0..20 {
        conn.query(sql, &[Value::Int(4)]).unwrap();
    }
    assert_eq!(
        db.stats().plan_binds,
        after_first,
        "repeat executions must reuse the bound plan"
    );
}

#[test]
fn compiled_plans_evaluate_bound_expressions() {
    let (db, conn) = setup();
    let before = db.stats().bound_evals;
    conn.query("SELECT Quantity + 1 FROM Orders WHERE Approved = TRUE", &[])
        .unwrap();
    assert!(
        db.stats().bound_evals > before,
        "compiled SELECT must run through the bound evaluator"
    );
}

#[test]
fn ddl_rebinds_plans_and_results_are_stable() {
    let (db, conn) = setup();
    // ORDER BY the same unindexed-then-indexed column, so dropping the
    // index cannot fall back to an ORDER-BY walk over the primary key.
    let sql = "SELECT OrderId FROM Orders WHERE Quantity BETWEEN 3 AND 7 ORDER BY Quantity";
    let before_index = conn.query(sql, &[]).unwrap();
    let binds_no_index = db.stats().plan_binds;
    conn.query(sql, &[]).unwrap();
    assert_eq!(db.stats().plan_binds, binds_no_index);

    // CREATE INDEX bumps the schema epoch: same text re-binds (now to a
    // range scan) and must return identical rows.
    conn.execute("CREATE INDEX idx_qty ON Orders (Quantity)", &[])
        .unwrap();
    let range_before = db.stats().range_scans;
    let with_index = conn.query(sql, &[]).unwrap();
    assert_eq!(before_index, with_index);
    assert!(
        db.stats().plan_binds > binds_no_index,
        "CREATE INDEX re-binds"
    );
    assert!(
        db.stats().range_scans > range_before,
        "BETWEEN uses the index"
    );

    // DROP INDEX re-binds again and falls back to a full scan.
    let binds_with_index = db.stats().plan_binds;
    conn.execute("DROP INDEX idx_qty", &[]).unwrap();
    let full_before = db.stats().full_scans;
    let dropped = conn.query(sql, &[]).unwrap();
    assert_eq!(before_index, dropped);
    assert!(
        db.stats().plan_binds > binds_with_index,
        "DROP INDEX re-binds"
    );
    assert!(
        db.stats().range_scans == range_before + 1,
        "no range scan without index"
    );
    assert!(db.stats().full_scans > full_before);
}

#[test]
fn range_scan_serves_indexed_between() {
    let (db, conn) = setup();
    conn.execute("CREATE INDEX idx_qty ON Orders (Quantity)", &[])
        .unwrap();
    let before = db.stats().range_scans;
    let rs = conn
        .query(
            "SELECT OrderId FROM Orders WHERE Quantity BETWEEN 3 AND 7 ORDER BY Quantity",
            &[],
        )
        .unwrap();
    assert!(db.stats().range_scans > before);
    // 3 (qty 7? no: qty per row: 1→10, 2→5, 3→7, 4→3, 5→2) → qty in [3,7]:
    // orders 4 (3), 2 (5), 3 (7), in Quantity order.
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(4)],
            vec![Value::Int(2)],
            vec![Value::Int(3)]
        ]
    );
}

#[test]
fn topk_heap_serves_order_by_limit_without_index() {
    let (db, conn) = setup();
    let before = db.stats().topk_sorts;
    let rs = conn
        .query(
            "SELECT OrderId FROM Orders ORDER BY Quantity DESC LIMIT 2 OFFSET 1",
            &[],
        )
        .unwrap();
    assert!(
        db.stats().topk_sorts > before,
        "ORDER BY + LIMIT takes top-K"
    );
    assert_eq!(rs.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
}

#[test]
fn index_order_walk_skips_both_sort_and_topk() {
    let (db, conn) = setup();
    conn.execute("CREATE INDEX idx_qty ON Orders (Quantity)", &[])
        .unwrap();
    let before = db.stats();
    let rs = conn
        .query("SELECT OrderId FROM Orders ORDER BY Quantity LIMIT 3", &[])
        .unwrap();
    let after = db.stats();
    assert_eq!(
        after.topk_sorts, before.topk_sorts,
        "index order serves the sort"
    );
    assert!(after.range_scans > before.range_scans, "whole-index walk");
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(5)],
            vec![Value::Int(4)],
            vec![Value::Int(2)]
        ]
    );
}

// ---------------------------------------------------------------- range bounds

fn range_fixture() -> (Database, Connection) {
    let db = Database::new("range");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE t (id INT PRIMARY KEY, k INT);
         CREATE INDEX idx_k ON t (k);
         INSERT INTO t VALUES
           (1, 10), (2, 20), (3, 20), (4, 30), (5, NULL), (6, 40), (7, NULL);",
    )
    .unwrap();
    (db, conn)
}

fn ids(rs: &QueryResult) -> Vec<i64> {
    rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
}

#[test]
fn range_bounds_inclusive_and_exclusive() {
    let (db, conn) = range_fixture();
    let cases: &[(&str, &[i64])] = &[
        ("SELECT id FROM t WHERE k > 20 ORDER BY k", &[4, 6]),
        ("SELECT id FROM t WHERE k >= 20 ORDER BY k", &[2, 3, 4, 6]),
        ("SELECT id FROM t WHERE k < 20 ORDER BY k", &[1]),
        ("SELECT id FROM t WHERE k <= 20 ORDER BY k", &[1, 2, 3]),
        (
            "SELECT id FROM t WHERE k BETWEEN 20 AND 30 ORDER BY k",
            &[2, 3, 4],
        ),
        ("SELECT id FROM t WHERE k > 20 AND k < 40 ORDER BY k", &[4]),
        ("SELECT id FROM t WHERE 20 < k ORDER BY k", &[4, 6]),
        // Empty and inverted ranges.
        ("SELECT id FROM t WHERE k > 40 ORDER BY k", &[]),
        ("SELECT id FROM t WHERE k > 30 AND k < 20 ORDER BY k", &[]),
        ("SELECT id FROM t WHERE k > 20 AND k < 20 ORDER BY k", &[]),
    ];
    for (sql, want) in cases {
        let before = db.stats().range_scans;
        let rs = conn.query(sql, &[]).unwrap();
        assert_eq!(&ids(&rs), want, "{sql}");
        assert!(db.stats().range_scans > before, "{sql} should range-scan");
    }
}

#[test]
fn range_scans_exclude_null_keys() {
    let (_db, conn) = range_fixture();
    // An unbounded-below walk must not surface the NULL-keyed rows:
    // `k < x` is UNKNOWN for NULL k.
    let rs = conn
        .query("SELECT id FROM t WHERE k < 50 ORDER BY k", &[])
        .unwrap();
    assert_eq!(ids(&rs), vec![1, 2, 3, 4, 6]);
    // NULL bound → empty result, not an error.
    let rs = conn
        .query("SELECT id FROM t WHERE k < ?", &[Value::Null])
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn range_walk_desc_order_matches_sorted() {
    let (db, conn) = range_fixture();
    let before = db.stats();
    let rs = conn
        .query("SELECT id FROM t WHERE k >= 20 ORDER BY k DESC", &[])
        .unwrap();
    // Key order descending; equal keys (rows 2 and 3) keep rowid order,
    // exactly as the interpreter's stable sort would leave them.
    assert_eq!(ids(&rs), vec![6, 4, 2, 3]);
    let after = db.stats();
    assert!(after.range_scans > before.range_scans);
    assert_eq!(after.topk_sorts, before.topk_sorts);
}

#[test]
fn pure_order_by_walk_places_nulls() {
    let (_db, conn) = range_fixture();
    // Ascending: NULLs first (engine total order); descending: last.
    let rs = conn.query("SELECT id FROM t ORDER BY k", &[]).unwrap();
    assert_eq!(ids(&rs), vec![5, 7, 1, 2, 3, 4, 6]);
    let rs = conn.query("SELECT id FROM t ORDER BY k DESC", &[]).unwrap();
    assert_eq!(ids(&rs), vec![6, 4, 2, 3, 1, 5, 7]);
}

// ---------------------------------------------------------------- LIMIT

#[test]
fn negative_limit_and_offset_are_semantic_errors() {
    let (_db, conn) = setup();
    for sql in [
        "SELECT OrderId FROM Orders LIMIT -1",
        "SELECT OrderId FROM Orders OFFSET -2",
        "SELECT OrderId FROM Orders ORDER BY OrderId LIMIT 1 - 2",
        "SELECT OrderId FROM Orders UNION SELECT OrderId FROM Orders LIMIT -1",
    ] {
        let err = conn.query(sql, &[]).unwrap_err();
        assert_eq!(err.class(), "semantic", "{sql}");
    }
}

#[test]
fn limit_expression_evaluates_once_per_statement() {
    let (_db, conn) = setup();
    conn.execute("CREATE SEQUENCE lim START WITH 1", &[])
        .unwrap();
    // NEXTVAL in LIMIT: one advance per statement, not per row.
    let rs = conn
        .query(
            "SELECT OrderId FROM Orders ORDER BY OrderId LIMIT NEXTVAL('lim')",
            &[],
        )
        .unwrap();
    assert_eq!(rs.len(), 1, "first execution: LIMIT 1");
    let rs = conn
        .query(
            "SELECT OrderId FROM Orders ORDER BY OrderId LIMIT NEXTVAL('lim')",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.len(),
        2,
        "second execution: LIMIT 2 — one advance per statement"
    );
}

// ---------------------------------------------------------------- differential

/// SplitMix64, as in `tests/proptests.rs` — deterministic, dependency-free.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    fn irange(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.range(0, items.len())]
    }
}

/// Twin databases with identical schema and data; `case` varies row
/// count, NULL density, and which secondary indexes exist.
fn twin_dbs(rng: &mut Rng) -> (Database, Database) {
    let compiled = Database::new("diff_compiled");
    let interpreted = Database::new("diff_interpreted");
    let mut ddl = String::from("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, s TEXT);");
    if rng.bool() {
        ddl.push_str("CREATE INDEX idx_a ON t (a);");
    }
    if rng.bool() {
        ddl.push_str("CREATE INDEX idx_b ON t (b);");
    }
    let n_rows = rng.range(0, 30);
    for id in 0..n_rows {
        let a = if rng.range(0, 5) == 0 {
            "NULL".to_string()
        } else {
            rng.irange(-20, 80).to_string()
        };
        let b = if rng.range(0, 6) == 0 {
            "NULL".to_string()
        } else {
            rng.irange(0, 50).to_string()
        };
        let s = match rng.range(0, 4) {
            0 => "NULL".to_string(),
            1 => "'widget'".to_string(),
            2 => "'gadget'".to_string(),
            _ => format!("'item{}'", rng.range(0, 8)),
        };
        ddl.push_str(&format!("INSERT INTO t VALUES ({id}, {a}, {b}, {s});"));
    }
    compiled.connect().execute_script(&ddl).unwrap();
    interpreted.connect().execute_script(&ddl).unwrap();
    (compiled, interpreted)
}

fn gen_predicate(rng: &mut Rng) -> String {
    let atom = |rng: &mut Rng| -> String {
        let col = rng.pick(&["id", "a", "b"]);
        match rng.range(0, 6) {
            0 => format!("{col} = {}", rng.irange(-5, 60)),
            1 => format!(
                "{col} {} {}",
                rng.pick(&["<", "<=", ">", ">="]),
                rng.irange(-5, 60)
            ),
            2 => {
                let lo = rng.irange(-5, 40);
                format!("{col} BETWEEN {lo} AND {}", lo + rng.irange(0, 30))
            }
            3 => format!(
                "{} {} {col}",
                rng.irange(-5, 60),
                rng.pick(&["<", "<=", ">", ">="])
            ),
            4 => format!("{col} IS {}NULL", if rng.bool() { "NOT " } else { "" }),
            _ => format!("s {} 'widget'", rng.pick(&["=", "<>"])),
        }
    };
    let mut pred = atom(rng);
    for _ in 0..rng.range(0, 3) {
        pred = format!("{pred} {} {}", rng.pick(&["AND", "OR"]), atom(rng));
    }
    pred
}

fn gen_select(rng: &mut Rng) -> String {
    let projection = rng.pick(&[
        "*",
        "id, a",
        "id, a + b AS ab",
        "s, b",
        "id, CASE WHEN a IS NULL THEN -1 ELSE a END AS a2",
    ]);
    let distinct = if rng.range(0, 5) == 0 {
        "DISTINCT "
    } else {
        ""
    };
    let mut sql = format!("SELECT {distinct}{projection} FROM t");
    if rng.range(0, 4) != 0 {
        sql.push_str(&format!(" WHERE {}", gen_predicate(rng)));
    }
    if rng.range(0, 3) != 0 {
        let key = rng.pick(&["id", "a", "b", "1", "a DESC", "b DESC, id"]);
        sql.push_str(&format!(" ORDER BY {key}"));
    }
    if rng.range(0, 3) == 0 {
        sql.push_str(&format!(" LIMIT {}", rng.range(0, 12)));
        if rng.bool() {
            sql.push_str(&format!(" OFFSET {}", rng.range(0, 5)));
        }
    }
    sql
}

/// Run one statement both ways: compiled through `execute` (twice, so
/// the second run exercises the cached plan), interpreted through
/// `parse_statement` + `execute_ast`. Results must match exactly.
fn run_both(
    compiled: &Connection,
    interpreted: &Connection,
    sql: &str,
    case: u64,
) -> (StatementResult, StatementResult) {
    let c1 = compiled.execute(sql, &[]);
    let c2 = compiled.execute(sql, &[]);
    let stmt = parse_statement(sql).unwrap();
    let i1 = interpreted.execute_ast(&stmt, &[]);
    match (&c1, &c2, &i1) {
        (Ok(a), Ok(b), Ok(c)) => {
            assert_eq!(a, b, "case {case}: compiled not idempotent: {sql}");
            assert_eq!(a, c, "case {case}: compiled != interpreted: {sql}");
        }
        (Err(a), Err(b), Err(c)) => {
            assert_eq!(a.class(), b.class(), "case {case}: {sql}");
            assert_eq!(a.class(), c.class(), "case {case}: {sql}");
        }
        _ => panic!("case {case}: divergent outcomes for {sql}: {c1:?} / {c2:?} / {i1:?}"),
    }
    (
        c1.unwrap_or(StatementResult::Ddl),
        i1.unwrap_or(StatementResult::Ddl),
    )
}

/// Full-table snapshot through the *interpreter* on both databases, so
/// the comparison itself cannot mask a compiled-path bug.
fn assert_same_state(compiled: &Connection, interpreted: &Connection, case: u64, sql: &str) {
    let stmt = parse_statement("SELECT * FROM t ORDER BY id").unwrap();
    let a = compiled.execute_ast(&stmt, &[]).unwrap();
    let b = interpreted.execute_ast(&stmt, &[]).unwrap();
    assert_eq!(a, b, "case {case}: table state diverged after {sql}");
}

#[test]
fn differential_select_corpus() {
    for case in 0..48 {
        let mut rng = Rng::new(0xC0FFEE ^ case);
        let (cdb, idb) = twin_dbs(&mut rng);
        let (cc, ic) = (cdb.connect(), idb.connect());
        for _ in 0..8 {
            let sql = gen_select(&mut rng);
            run_both(&cc, &ic, &sql, case);
        }
    }
}

#[test]
fn differential_update_delete_corpus() {
    for case in 0..48 {
        let mut rng = Rng::new(0xD1FF ^ case);
        let (cdb, idb) = twin_dbs(&mut rng);
        let (cc, ic) = (cdb.connect(), idb.connect());
        for round in 0..6 {
            let sql = if rng.bool() {
                let set = rng.pick(&[
                    "b = b + 1",
                    "a = NULL",
                    "s = 'touched', b = a",
                    "a = b, b = a",
                ]);
                format!("UPDATE t SET {} WHERE {}", set, gen_predicate(&mut rng))
            } else {
                format!("DELETE FROM t WHERE {}", gen_predicate(&mut rng))
            };
            // DML mutates, so each side executes exactly once per round.
            // Later rounds reuse earlier statements' cached plans on the
            // compiled side whenever the generator repeats itself.
            let c = cc.execute(&sql, &[]).unwrap();
            let stmt = parse_statement(&sql).unwrap();
            let i = ic.execute_ast(&stmt, &[]).unwrap();
            assert_eq!(
                c.affected(),
                i.affected(),
                "case {case} round {round}: {sql}"
            );
            assert_same_state(&cc, &ic, case, &sql);
        }
    }
}

/// Random grouped SELECT: mixed inline-foldable aggregates (bare
/// columns, COUNT(*)), DISTINCT and computed-argument shapes that force
/// the member-list fallback, optional WHERE/HAVING/ORDER BY/LIMIT, and
/// single- and multi-column (and absent) group keys.
fn gen_aggregate(rng: &mut Rng) -> String {
    let group = rng.pick(&["", "a", "b", "s", "a, b"]);
    let aggs = [
        "COUNT(*)",
        "COUNT(b)",
        "SUM(a)",
        "AVG(b)",
        "MIN(s)",
        "MAX(a)",
        "SUM(DISTINCT a)",
        "COUNT(DISTINCT s)",
        "SUM(a + b)",
        "MIN(b * 2)",
    ];
    let mut proj: Vec<String> = Vec::new();
    if !group.is_empty() && rng.range(0, 4) != 0 {
        proj.push(group.to_string());
    }
    for _ in 0..rng.range(1, 4) {
        proj.push(rng.pick(&aggs).to_string());
    }
    let mut sql = format!("SELECT {} FROM t", proj.join(", "));
    if rng.range(0, 3) == 0 {
        sql.push_str(&format!(" WHERE {}", gen_predicate(rng)));
    }
    if !group.is_empty() {
        sql.push_str(&format!(" GROUP BY {group}"));
        if rng.range(0, 3) == 0 {
            let having = rng.pick(&[
                "COUNT(*) > 1",
                "SUM(a) > 10",
                "MIN(s) IS NOT NULL",
                "AVG(b) >= 5",
            ]);
            sql.push_str(&format!(" HAVING {having}"));
        }
    }
    if rng.range(0, 3) == 0 {
        sql.push_str(" ORDER BY 1");
        if rng.bool() {
            sql.push_str(&format!(" LIMIT {}", rng.range(0, 6)));
        }
    }
    sql
}

/// Aggregate corpus round: the hash aggregator (streamed, one-pass, and
/// member-list fallback alike) must be byte-identical to the
/// interpreter — including group emission order, NULL group keys,
/// empty-input behavior, and HAVING over completed groups.
#[test]
fn differential_aggregate_corpus() {
    for case in 0..48 {
        let mut rng = Rng::new(0xA66E ^ case);
        let (cdb, idb) = twin_dbs(&mut rng);
        let (cc, ic) = (cdb.connect(), idb.connect());
        for _ in 0..8 {
            let sql = gen_aggregate(&mut rng);
            run_both(&cc, &ic, &sql, case);
        }
    }
}

/// Hand-picked aggregate edges the random corpus reaches only rarely:
/// global aggregates over an empty table (one all-NULL/zero row), GROUP
/// BY over an empty table (zero rows), NULL group keys grouping
/// together, duplicate aggregate call sites, and overflow-adjacent SUMs
/// (both executors accumulate in f64, so the cast back must agree).
#[test]
fn aggregate_edge_cases_match_interpreter() {
    let cdb = Database::new("agg_edge_c");
    let idb = Database::new("agg_edge_i");
    let (cc, ic) = (cdb.connect(), idb.connect());
    let ddl = "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, s TEXT);";
    cc.execute_script(ddl).unwrap();
    ic.execute_script(ddl).unwrap();

    // Empty table first.
    for sql in [
        "SELECT COUNT(*), SUM(a), AVG(a), MIN(s), MAX(b) FROM t",
        "SELECT a, COUNT(*) FROM t GROUP BY a",
        "SELECT s, SUM(a) FROM t GROUP BY s HAVING COUNT(*) > 0",
    ] {
        run_both(&cc, &ic, sql, 0);
    }

    let rows = "INSERT INTO t VALUES
        (1, 9223372036854775806, 1, 'x'),
        (2, 1, 1, 'x'),
        (3, -9223372036854775807, NULL, 'y'),
        (4, NULL, NULL, 'y'),
        (5, 7, 2, NULL),
        (6, 7, 2, NULL),
        (7, 0, 3, 'x');";
    cc.execute_script(rows).unwrap();
    ic.execute_script(rows).unwrap();

    for sql in [
        // Overflow-adjacent SUM, globally and per group.
        "SELECT SUM(a), AVG(a) FROM t",
        "SELECT s, SUM(a) FROM t GROUP BY s",
        // NULL group keys form one group; NULL-only aggregate inputs.
        "SELECT b, COUNT(*), COUNT(b), SUM(a) FROM t GROUP BY b",
        "SELECT s, MIN(b), MAX(b) FROM t GROUP BY s",
        // Duplicate rows without DISTINCT vs the same with DISTINCT.
        "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 1",
        "SELECT COUNT(s), COUNT(DISTINCT s), SUM(a), SUM(DISTINCT a) FROM t",
        // Duplicate call sites share one synthetic slot.
        "SELECT SUM(a), SUM(a), COUNT(*) FROM t",
        // SUM over a non-numeric column errors identically.
        "SELECT SUM(s) FROM t",
        "SELECT b, AVG(s) FROM t GROUP BY b",
    ] {
        run_both(&cc, &ic, sql, 1);
    }
}

/// The corpus must actually exercise the batch executor: grouped
/// statements tick `hash_aggs`, and every compiled SELECT ticks
/// `batch_evals`/`batched_rows`. Guards against a silent fallback to
/// the interpreter making the differential tests vacuous.
#[test]
fn grouped_queries_engage_the_hash_aggregator() {
    let (db, conn) = setup();
    for _ in 0..2 {
        conn.query(
            "SELECT ItemId, SUM(Quantity), COUNT(*) FROM Orders \
             WHERE Approved = TRUE GROUP BY ItemId",
            &[],
        )
        .unwrap();
        conn.query(
            "SELECT ItemId, SUM(DISTINCT Quantity) FROM Orders GROUP BY ItemId",
            &[],
        )
        .unwrap();
    }
    let s = db.stats();
    assert!(
        s.hash_aggs >= 4,
        "grouped statements must run through the hash aggregator (got {})",
        s.hash_aggs
    );
    assert!(s.batch_evals > 0, "batched passes must be recorded");
    assert!(s.batched_rows > 0, "batched row traffic must be recorded");
}

#[test]
fn differential_parameterized_statements() {
    for case in 0..24 {
        let mut rng = Rng::new(0xBEEF ^ case);
        let (cdb, idb) = twin_dbs(&mut rng);
        let (cc, ic) = (cdb.connect(), idb.connect());
        for _ in 0..6 {
            let sql = rng.pick(&[
                "SELECT id, a FROM t WHERE a > ? ORDER BY id",
                "SELECT id FROM t WHERE a BETWEEN ? AND ? ORDER BY a, id",
                "SELECT id FROM t WHERE b = ? OR a < ? ORDER BY 1",
                "SELECT id, b FROM t WHERE ? <= b ORDER BY b DESC LIMIT 4",
            ]);
            let params: Vec<Value> = (0..sql.matches('?').count())
                .map(|_| {
                    if rng.range(0, 6) == 0 {
                        Value::Null
                    } else {
                        Value::Int(rng.irange(-10, 60))
                    }
                })
                .collect();
            let a = cc.execute(sql, &params).unwrap();
            let b = cc.execute(sql, &params).unwrap();
            let stmt = parse_statement(sql).unwrap();
            let c = ic.execute_ast(&stmt, &params).unwrap();
            assert_eq!(a, b, "case {case}: {sql}");
            assert_eq!(a, c, "case {case}: {sql}");
        }
    }
}
