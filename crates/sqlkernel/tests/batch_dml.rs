//! Set-oriented batch DML and WAL group commit.
//!
//! Covers the set-at-a-time write surface: multi-row `INSERT … VALUES`,
//! `Connection::execute_batch` (N parameter sets, one lock / one undo
//! scope / one WAL append, all-or-nothing), and the commit sequencer
//! that coalesces concurrently arriving commit records into shared log
//! appends.

use std::sync::Arc;

use sqlkernel::{Database, MemLogStore, Value};

fn orders_db(name: &str) -> Database {
    let db = Database::new(name);
    db.connect()
        .execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    db
}

// ---------------------------------------------------------------------------
// Multi-row INSERT … VALUES
// ---------------------------------------------------------------------------

#[test]
fn multi_row_values_inserts_all_rows() {
    let db = orders_db("mrv");
    let conn = db.connect();
    let r = conn
        .execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')", &[])
        .unwrap();
    assert_eq!(r.affected(), Some(3));
    assert_eq!(db.table_len("t").unwrap(), 3);
}

#[test]
fn multi_row_values_mixed_arity_is_rejected_atomically() {
    let db = orders_db("mrv_arity");
    let conn = db.connect();
    let err = conn
        .execute("INSERT INTO t (id, v) VALUES (1, 'a'), (2)", &[])
        .unwrap_err();
    assert_eq!(err.class(), "semantic");
    assert_eq!(db.table_len("t").unwrap(), 0, "no partial row survived");
}

#[test]
fn multi_row_values_duplicate_key_rolls_back_whole_statement() {
    let db = orders_db("mrv_dup");
    let conn = db.connect();
    conn.execute("INSERT INTO t VALUES (5, 'seed')", &[])
        .unwrap();
    let err = conn
        .execute("INSERT INTO t VALUES (1, 'a'), (5, 'dup'), (2, 'b')", &[])
        .unwrap_err();
    assert_eq!(err.class(), "constraint");
    assert_eq!(
        db.table_len("t").unwrap(),
        1,
        "statement atomicity: the rows before the duplicate vanished too"
    );
}

#[test]
fn multi_row_values_with_nulls_in_composite_index_keys() {
    let db = Database::new("mrv_null");
    let conn = db.connect();
    conn.execute("CREATE TABLE pairs (id INT PRIMARY KEY, a INT, b INT)", &[])
        .unwrap();
    conn.execute("CREATE INDEX pairs_ab ON pairs (a, b)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO pairs VALUES (1, 10, 20), (2, NULL, 20), (3, 10, NULL), (4, NULL, NULL)",
        &[],
    )
    .unwrap();
    let rs = conn
        .query("SELECT id FROM pairs WHERE a IS NULL ORDER BY id", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    let rs = conn
        .query("SELECT id FROM pairs WHERE a = 10 AND b = 20", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    // Deleting the NULL-keyed rows maintains the index.
    conn.execute("DELETE FROM pairs WHERE a IS NULL", &[])
        .unwrap();
    assert_eq!(db.table_len("pairs").unwrap(), 2);
    let rs = conn
        .query("SELECT id FROM pairs WHERE a = 10 ORDER BY id", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

// ---------------------------------------------------------------------------
// execute_batch
// ---------------------------------------------------------------------------

#[test]
fn empty_batch_is_rejected() {
    let db = orders_db("eb_empty");
    let err = db
        .connect()
        .execute_batch("INSERT INTO t VALUES (?, ?)", &[])
        .unwrap_err();
    assert_eq!(err.class(), "semantic");
}

#[test]
fn non_dml_batch_is_rejected() {
    let db = orders_db("eb_sel");
    let err = db
        .connect()
        .execute_batch("SELECT * FROM t", &[vec![]])
        .unwrap_err();
    assert_eq!(err.class(), "semantic");
}

#[test]
fn batch_insert_applies_every_parameter_set() {
    let db = orders_db("eb_ins");
    let conn = db.connect();
    let sets: Vec<Vec<Value>> = (0..50)
        .map(|i| vec![Value::Int(i), Value::text(format!("row{i}"))])
        .collect();
    let n = conn
        .execute_batch("INSERT INTO t VALUES (?, ?)", &sets)
        .unwrap();
    assert_eq!(n, 50);
    assert_eq!(db.table_len("t").unwrap(), 50);
}

#[test]
fn batch_is_one_wal_append_not_n() {
    let store = MemLogStore::new();
    let db = Database::with_wal("eb_wal", Arc::new(store.clone()));
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    let before = db.snapshot();
    let sets: Vec<Vec<Value>> = (0..20)
        .map(|i| vec![Value::Int(i), Value::text("x")])
        .collect();
    conn.execute_batch("INSERT INTO t VALUES (?, ?)", &sets)
        .unwrap();
    let after = db.snapshot();
    assert_eq!(
        after.wal_appends - before.wal_appends,
        1,
        "the whole batch shares one log append"
    );
    // And the append is durable: recovery sees every row.
    drop(conn);
    drop(db);
    let db2 = Database::recover("eb_wal", Arc::new(store)).unwrap();
    assert_eq!(db2.table_len("t").unwrap(), 20);
}

#[test]
fn failed_batch_rolls_back_every_set() {
    let db = orders_db("eb_atomic");
    let conn = db.connect();
    conn.execute("INSERT INTO t VALUES (7, 'seed')", &[])
        .unwrap();
    let sets: Vec<Vec<Value>> = vec![
        vec![Value::Int(1), Value::text("a")],
        vec![Value::Int(2), Value::text("b")],
        vec![Value::Int(7), Value::text("dup")], // constraint violation
        vec![Value::Int(3), Value::text("c")],
    ];
    let err = conn
        .execute_batch("INSERT INTO t VALUES (?, ?)", &sets)
        .unwrap_err();
    assert_eq!(err.class(), "constraint");
    assert_eq!(
        db.table_len("t").unwrap(),
        1,
        "sets applied before the failure rolled back with it"
    );
}

#[test]
fn batch_update_and_delete_match_looped_execution() {
    // Differential: the same workload through execute_batch and through
    // a plain statement loop must converge to identical table contents.
    fn run(name: &str, batched: bool) -> Vec<Vec<Value>> {
        let db = orders_db(name);
        let conn = db.connect();
        let ins: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Int(i), Value::text(format!("v{}", i % 5))])
            .collect();
        let upd: Vec<Vec<Value>> = (0..40)
            .step_by(3)
            .map(|i| vec![Value::text("bumped"), Value::Int(i)])
            .collect();
        let del: Vec<Vec<Value>> = (0..40).step_by(7).map(|i| vec![Value::Int(i)]).collect();
        if batched {
            conn.execute_batch("INSERT INTO t VALUES (?, ?)", &ins)
                .unwrap();
            conn.execute_batch("UPDATE t SET v = ? WHERE id = ?", &upd)
                .unwrap();
            conn.execute_batch("DELETE FROM t WHERE id = ?", &del)
                .unwrap();
        } else {
            for p in &ins {
                conn.execute("INSERT INTO t VALUES (?, ?)", p).unwrap();
            }
            for p in &upd {
                conn.execute("UPDATE t SET v = ? WHERE id = ?", p).unwrap();
            }
            for p in &del {
                conn.execute("DELETE FROM t WHERE id = ?", p).unwrap();
            }
        }
        conn.query("SELECT id, v FROM t ORDER BY id", &[])
            .unwrap()
            .rows
    }
    assert_eq!(run("eb_diff_b", true), run("eb_diff_l", false));
}

#[test]
fn batch_inside_transaction_rides_the_transaction() {
    let db = orders_db("eb_txn");
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    let sets: Vec<Vec<Value>> = (0..5)
        .map(|i| vec![Value::Int(i), Value::text("tx")])
        .collect();
    conn.execute_batch("INSERT INTO t VALUES (?, ?)", &sets)
        .unwrap();
    conn.execute("ROLLBACK", &[]).unwrap();
    assert_eq!(db.table_len("t").unwrap(), 0, "batch undone by ROLLBACK");
}

// ---------------------------------------------------------------------------
// Statement memo: repeat executions do not re-parse or re-bind
// ---------------------------------------------------------------------------

#[test]
fn repeat_execution_hits_the_memo_without_rebinding() {
    let db = orders_db("memo");
    let conn = db.connect();
    conn.execute("INSERT INTO t VALUES (1, 'a')", &[]).unwrap();
    // First parameterized execution: parse + plan bind.
    conn.execute(
        "UPDATE t SET v = ? WHERE id = ?",
        &[Value::text("b"), Value::Int(1)],
    )
    .unwrap();
    let before = db.snapshot();
    for i in 0..10 {
        conn.execute(
            "UPDATE t SET v = ? WHERE id = ?",
            &[Value::text(format!("x{i}")), Value::Int(1)],
        )
        .unwrap();
    }
    let after = db.snapshot();
    assert_eq!(after.parses, before.parses, "no re-parse on the hot path");
    assert_eq!(
        after.plan_binds, before.plan_binds,
        "no re-bind on the hot path"
    );
    assert_eq!(
        after.stmt_cache_hits - before.stmt_cache_hits,
        10,
        "every repeat counted as a cache hit"
    );
}

#[test]
fn memo_is_invalidated_by_ddl() {
    let db = orders_db("memo_ddl");
    let conn = db.connect();
    conn.execute("INSERT INTO t VALUES (1, 'a')", &[]).unwrap();
    conn.execute("SELECT * FROM t", &[]).unwrap();
    // DDL moves the cache generation; the memoized entry must re-bind
    // against the new schema epoch instead of serving a stale plan.
    conn.execute("CREATE INDEX t_v ON t (v)", &[]).unwrap();
    let rs = conn.query("SELECT * FROM t", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1);
    conn.execute("DROP INDEX t_v", &[]).unwrap();
    let rs = conn.query("SELECT * FROM t", &[]).unwrap();
    assert_eq!(rs.rows.len(), 1);
}

// ---------------------------------------------------------------------------
// WAL group commit
// ---------------------------------------------------------------------------

#[test]
fn window_zero_is_byte_identical_to_ungrouped_logging() {
    let run = |window: u64| {
        let store = MemLogStore::new();
        let db = Database::with_wal("gc0", Arc::new(store.clone()));
        db.set_group_commit_window(window);
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let base = db.snapshot();
        for i in 0..25i64 {
            conn.execute("INSERT INTO t VALUES (?, 'x')", &[Value::Int(i)])
                .unwrap();
        }
        let stats = db.snapshot();
        (
            stats.wal_appends - base.wal_appends,
            stats.wal_bytes - base.wal_bytes,
            stats.wal_commits - base.wal_commits,
        )
    };
    assert_eq!(run(0), run(0));
    let (appends, bytes, commits) = run(0);
    assert_eq!(commits, 25);
    assert!(appends >= 25, "one append per auto-commit statement");
    assert!(bytes > 0);
}

#[test]
fn group_commit_coalesces_concurrent_commits_into_fewer_appends() {
    let store = MemLogStore::new();
    let db = Database::with_wal("gc", Arc::new(store.clone()));
    {
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE a (id INT PRIMARY KEY, v INT);
             CREATE TABLE b (id INT PRIMARY KEY, v INT);
             CREATE TABLE c (id INT PRIMARY KEY, v INT);
             CREATE TABLE d (id INT PRIMARY KEY, v INT);",
        )
        .unwrap();
    }
    let before = db.snapshot();
    db.set_group_commit_window(4);

    const THREADS: usize = 8;
    const PER_THREAD: i64 = 100;
    std::thread::scope(|scope| {
        for w in 0..THREADS {
            let db = db.clone();
            scope.spawn(move || {
                let table = ["a", "b", "c", "d"][w % 4];
                let conn = db.connect();
                let stmt = conn
                    .prepare(&format!("INSERT INTO {table} VALUES (?, ?)"))
                    .unwrap();
                for i in 0..PER_THREAD {
                    conn.execute_prepared(
                        &stmt,
                        &[Value::Int((w as i64) * PER_THREAD + i), Value::Int(i)],
                    )
                    .unwrap();
                }
            });
        }
    });
    db.set_group_commit_window(0);

    let after = db.snapshot();
    let commits = after.wal_commits - before.wal_commits;
    let appends = after.wal_appends - before.wal_appends;
    assert_eq!(commits, (THREADS as u64) * (PER_THREAD as u64));
    assert!(
        appends < commits,
        "sequencer coalesced at least some commits ({appends} appends for {commits} commits)"
    );

    // Recovery replays the grouped log identically: all rows, no extras.
    drop(db);
    let db2 = Database::recover("gc", Arc::new(store)).unwrap();
    let total: usize = ["a", "b", "c", "d"]
        .iter()
        .map(|t| db2.table_len(t).unwrap())
        .sum();
    assert_eq!(total, THREADS * PER_THREAD as usize);
}

#[test]
fn group_commit_result_matches_sequential_fingerprint() {
    // The same disjoint-table workload, grouped-parallel vs sequential,
    // must produce identical table contents.
    fn run(name: &str, threads: usize, window: u64) -> Vec<(String, Vec<Vec<Value>>)> {
        let store = MemLogStore::new();
        let db = Database::with_wal(name, Arc::new(store));
        {
            let conn = db.connect();
            conn.execute_script(
                "CREATE TABLE w0 (id INT PRIMARY KEY, v INT);
                 CREATE TABLE w1 (id INT PRIMARY KEY, v INT);
                 CREATE TABLE w2 (id INT PRIMARY KEY, v INT);
                 CREATE TABLE w3 (id INT PRIMARY KEY, v INT);",
            )
            .unwrap();
        }
        db.set_group_commit_window(window);
        let work = |w: usize| {
            let conn = db.connect();
            let table = format!("w{w}");
            for i in 0..80i64 {
                conn.execute(
                    &format!("INSERT INTO {table} VALUES (?, ?)"),
                    &[Value::Int(i), Value::Int(i * 3 % 11)],
                )
                .unwrap();
                if i % 4 == 0 {
                    conn.execute(
                        &format!("UPDATE {table} SET v = v + 100 WHERE id = ?"),
                        &[Value::Int(i)],
                    )
                    .unwrap();
                }
            }
        };
        if threads > 1 {
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let work = &work;
                    scope.spawn(move || work(w));
                }
            });
        } else {
            for w in 0..4 {
                work(w);
            }
        }
        db.set_group_commit_window(0);
        let conn = db.connect();
        (0..4)
            .map(|w| {
                let t = format!("w{w}");
                let rows = conn
                    .query(&format!("SELECT id, v FROM {t} ORDER BY id"), &[])
                    .unwrap()
                    .rows;
                (t, rows)
            })
            .collect()
    }
    let sequential = run("gcseq", 1, 0);
    let parallel = run("gcpar", 4, 3);
    assert_eq!(sequential, parallel);
}
