//! Crash consistency of WAL group commit: a process death that tears a
//! grouped append mid-write must lose *only* the torn transaction.
//! Every statement the database acknowledged — including group members
//! whose bytes the crashing leader flushed on their behalf — survives
//! recovery, and nothing unacknowledged resurrects.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use sqlkernel::{CrashPoint, Database, Fault, FaultPlan, MemLogStore, Value};

const THREADS: usize = 4;
const INSERTS_PER_THREAD: i64 = 60;

type RowSet = HashSet<(usize, i64)>;

/// The repo's fixed schedule seeds, plus the CI-provided `CRASH_SEED`.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// Run the concurrent workload until `crash` fires, then recover from
/// the log bytes alone and return (acknowledged, recovered) row sets.
fn run_with_crash(seed: u64, crash: Fault) -> (RowSet, RowSet) {
    let store = MemLogStore::new();
    let db = Database::with_wal("gc_crash", Arc::new(store.clone()));
    let conn = db.connect();
    for t in 0..THREADS {
        conn.execute(&format!("CREATE TABLE t{t} (id INT PRIMARY KEY)"), &[])
            .unwrap();
    }
    db.set_group_commit_window(4);

    // Land the crash while all threads are mid-stream: every statement
    // before it succeeds, so the gated index is always reached.
    let crash_at = 40 + seed % 120;
    db.set_fault_plan(Some(FaultPlan::new(seed).fault_at(crash_at, crash)));

    let acked: Mutex<RowSet> = Mutex::new(HashSet::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let acked = &acked;
            s.spawn(move || {
                let conn = db.connect();
                for i in 0..INSERTS_PER_THREAD {
                    match conn.execute(&format!("INSERT INTO t{t} VALUES (?)"), &[Value::Int(i)]) {
                        Ok(_) => {
                            acked.lock().unwrap().insert((t, i));
                        }
                        // The crash itself, or the frozen injector
                        // refusing everything after it.
                        Err(_) => break,
                    }
                }
            });
        }
    });
    assert!(
        db.fault_injector().map(|i| i.frozen()).unwrap_or(false),
        "seed {seed}: the scheduled crash never fired"
    );
    let acked = acked.into_inner().unwrap();
    drop(db);

    let db = Database::recover("gc_crash", Arc::new(store)).unwrap();
    let conn = db.connect();
    let mut recovered = HashSet::new();
    for t in 0..THREADS {
        let rs = conn
            .query(&format!("SELECT id FROM t{t} ORDER BY id"), &[])
            .unwrap();
        for row in &rs.rows {
            if let Value::Int(n) = row[0] {
                recovered.insert((t, n));
            }
        }
    }
    (acked, recovered)
}

#[test]
fn torn_group_append_loses_only_the_torn_transaction() {
    for seed in seeds() {
        let (acked, recovered) = run_with_crash(seed, Fault::Crash(CrashPoint::MidApply));
        assert_eq!(
            recovered, acked,
            "seed {seed}: recovery must keep exactly the acknowledged inserts"
        );
    }
}

#[test]
fn crash_before_group_append_loses_nothing_acknowledged() {
    // BeforeLog kills the statement before any bytes reach the store:
    // previously acknowledged group members must all still be there.
    for seed in seeds() {
        let (acked, recovered) = run_with_crash(seed, Fault::Crash(CrashPoint::BeforeLog));
        assert_eq!(recovered, acked, "seed {seed}");
    }
}

#[test]
fn crash_after_group_append_makes_the_last_transaction_durable() {
    // AfterLog crashes once the frame is fully on the log: the dying
    // statement reports an error to its caller, but recovery must
    // replay it — along with every acknowledged member before it.
    for seed in seeds() {
        let (acked, recovered) = run_with_crash(seed, Fault::Crash(CrashPoint::AfterLog));
        assert!(
            recovered.is_superset(&acked),
            "seed {seed}: an acknowledged insert vanished"
        );
        let extras: Vec<_> = recovered.difference(&acked).collect();
        assert!(
            extras.len() <= 1,
            "seed {seed}: only the logged-then-crashed statement may exceed \
             the acknowledged set, got {extras:?}"
        );
    }
}
