//! Statement-cache integration tests: parse-once behavior for repeated
//! SQL text, sharing between `prepare` and plain `execute`, and cache
//! invalidation when DDL changes an object a cached plan references.

use sqlkernel::{Database, Value};

#[test]
fn repeated_execute_parses_once() {
    let db = Database::new("cache1");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 10), (2, 20)", &[])
        .unwrap();

    let base = db.stats();
    for _ in 0..50 {
        conn.query("SELECT v FROM t WHERE id = ?", &[Value::Int(1)])
            .unwrap();
    }
    let after = db.stats();
    assert_eq!(after.parses - base.parses, 1, "one parse for 50 executions");
    assert_eq!(after.stmt_cache_misses - base.stmt_cache_misses, 1);
    assert_eq!(after.stmt_cache_hits - base.stmt_cache_hits, 49);
}

#[test]
fn prepare_and_execute_share_one_parse() {
    let db = Database::new("cache2");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)", &[])
        .unwrap();

    let base = db.stats().parses;
    let prepared = conn.prepare("INSERT INTO t VALUES (?)").unwrap();
    for i in 0..10 {
        conn.execute_prepared(&prepared, &[Value::Int(i)]).unwrap();
    }
    // Plain execute of the identical text hits the same cached plan.
    conn.execute("INSERT INTO t VALUES (?)", &[Value::Int(100)])
        .unwrap();
    assert_eq!(db.stats().parses - base, 1);
    assert_eq!(db.table_len("t").unwrap(), 11);
}

#[test]
fn distinct_texts_parse_separately_but_cache_each() {
    let db = Database::new("cache3");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)", &[])
        .unwrap();
    let base = db.stats().parses;
    for _ in 0..3 {
        conn.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        conn.query("SELECT id FROM t", &[]).unwrap();
    }
    assert_eq!(db.stats().parses - base, 2, "one parse per distinct text");
}

#[test]
fn drop_table_evicts_cached_plans() {
    let db = Database::new("cache4");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 10)", &[]).unwrap();

    // Populate the cache with plans referencing t.
    conn.query("SELECT v FROM t", &[]).unwrap();
    conn.query("SELECT COUNT(*) FROM t", &[]).unwrap();
    let populated = db.stmt_cache_len();
    assert!(populated >= 2);

    conn.execute("DROP TABLE t", &[]).unwrap();
    assert!(
        db.stmt_cache_len() < populated,
        "DROP TABLE must evict plans referencing t"
    );

    // Re-create with a different shape; the old SELECT text must plan
    // against the new schema, not any stale cached artifact.
    conn.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, v TEXT, extra INT)",
        &[],
    )
    .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'x', 5)", &[])
        .unwrap();
    let rs = conn.query("SELECT v FROM t", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::text("x")]]);
    let rs = conn.query("SELECT extra FROM t", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn drop_and_recreate_under_prepared_statement_stays_correct() {
    // A held Prepared survives DDL on its table: plans resolve names at
    // execution time, so the re-created schema is what executes.
    let db = Database::new("cache5");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 10)", &[]).unwrap();
    let q = conn.prepare("SELECT v FROM t WHERE id = ?").unwrap();
    let rs = conn
        .execute_prepared(&q, &[Value::Int(1)])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(10)]]);

    conn.execute("DROP TABLE t", &[]).unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'fresh')", &[])
        .unwrap();
    let rs = conn
        .execute_prepared(&q, &[Value::Int(1)])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::text("fresh")]]);
}

#[test]
fn ddl_statements_are_never_cached() {
    let db = Database::new("cache6");
    let conn = db.connect();
    let before = db.stmt_cache_len();
    conn.execute("CREATE TABLE a (id INT PRIMARY KEY)", &[])
        .unwrap();
    conn.execute("CREATE INDEX ix ON a (id)", &[]).unwrap();
    conn.execute("DROP INDEX ix", &[]).unwrap();
    conn.execute("DROP TABLE a", &[]).unwrap();
    assert_eq!(db.stmt_cache_len(), before, "DDL must not occupy the cache");
}

#[test]
fn temp_table_drop_invalidates_plans() {
    let db = Database::new("cache7");
    {
        let conn = db.connect();
        conn.execute(
            "CREATE TEMP TABLE session_scratch (id INT PRIMARY KEY)",
            &[],
        )
        .unwrap();
        conn.execute("INSERT INTO session_scratch VALUES (1)", &[])
            .unwrap();
        conn.query("SELECT COUNT(*) FROM session_scratch", &[])
            .unwrap();
        // Connection drop removes the temp table and must also evict
        // plans referencing it.
    }
    let evicted = {
        let map_len = db.stmt_cache_len();
        // No cached entry may still reference the dropped temp table:
        // re-running the text must fail cleanly (unknown table), not
        // resurrect stale state.
        let err = db
            .connect()
            .query("SELECT COUNT(*) FROM session_scratch", &[])
            .unwrap_err();
        (map_len, err)
    };
    assert!(evicted
        .1
        .to_string()
        .to_lowercase()
        .contains("session_scratch"));
}

#[test]
fn cache_is_bounded_by_lru_eviction() {
    let db = Database::new("cache8");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)", &[])
        .unwrap();
    // Far more distinct texts than the cache holds.
    for i in 0..400 {
        conn.query(&format!("SELECT id FROM t WHERE id = {i}"), &[])
            .unwrap();
    }
    assert!(
        db.stmt_cache_len() <= 256,
        "cache grew past its capacity: {}",
        db.stmt_cache_len()
    );

    // Recently used entries survive; the engine still answers correctly
    // for evicted texts (they simply re-parse).
    let base = db.stats().parses;
    conn.query("SELECT id FROM t WHERE id = 399", &[]).unwrap();
    assert_eq!(db.stats().parses, base, "hot entry must still be cached");
}

#[test]
fn stats_expose_scan_kinds() {
    let db = Database::new("cache9");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE t (id INT PRIMARY KEY, v INT);
         INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);",
    )
    .unwrap();

    let base = db.stats();
    conn.query("SELECT v FROM t WHERE id = 2", &[]).unwrap();
    let after_point = db.stats();
    assert_eq!(after_point.index_scans - base.index_scans, 1);
    assert_eq!(after_point.full_scans, base.full_scans);

    conn.query("SELECT SUM(v) FROM t", &[]).unwrap();
    let after_scan = db.stats();
    assert_eq!(after_scan.full_scans - after_point.full_scans, 1);
    assert_eq!(after_scan.index_scans, after_point.index_scans);
}
